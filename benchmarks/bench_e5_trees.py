"""E5 -- Theorem 3 / Lemma 14 / Lemma 23 / Proposition 3: the tree case.

Regenerates: emptiness answers over regular tree languages (universal,
root-constrained, caterpillar), the measured blowup of pointer-closed
generated substructures of tree run databases (Lemma 14's ``c * n`` bound),
and a sampled check that actual runs satisfy the local characterisation of
Lemma 23 -- the ingredients behind the amalgamation argument of Prop. 3.
"""

import pytest

from repro.analysis import bench_once as run_once, measure_tree_blowup
from repro.fraisse.engine import EmptinessSolver
from repro.systems.dds import DatabaseDrivenSystem
from repro.trees import (
    TreeRunTheory,
    all_trees,
    caterpillar_automaton,
    root_label_automaton,
    run_of_tree,
    satisfies_local_condition,
    tree_schema,
    universal_automaton,
)


def descendant_system():
    schema = tree_schema(["a", "b"])
    return DatabaseDrivenSystem.build(
        schema=schema, registers=["x"], states=["p", "q"], initial="p", accepting="q",
        transitions=[(
            "p", "label_a(x_old) & label_b(x_new) & anc(x_old, x_new) & !(x_old = x_new)", "q",
        )],
    )


def cca_system():
    schema = tree_schema(["a", "b"])
    return DatabaseDrivenSystem.build(
        schema=schema, registers=["x", "y"], states=["p", "q"], initial="p", accepting="q",
        transitions=[(
            "p",
            "!(x_new = y_new) & label_b(cca(x_new, y_new)) & "
            "!(cca(x_new, y_new) = x_new) & !(cca(x_new, y_new) = y_new)",
            "q",
        )],
    )


@pytest.mark.parametrize(
    "automaton_name,builder",
    [
        ("universal", lambda: universal_automaton(["a", "b"])),
        ("root_a", lambda: root_label_automaton("a", ["b"])),
    ],
)
def test_e5_descendant_query(benchmark, automaton_name, builder):
    automaton = builder()
    result = run_once(benchmark, EmptinessSolver(TreeRunTheory(automaton)).check,
                      descendant_system())
    assert result.nonempty
    benchmark.extra_info["automaton"] = automaton_name
    benchmark.extra_info["witness_size"] = result.run.database.size


def test_e5_cca_query_universal(benchmark):
    automaton = universal_automaton(["a", "b"])
    result = run_once(benchmark, EmptinessSolver(TreeRunTheory(automaton)).check, cca_system())
    assert result.nonempty
    benchmark.extra_info["witness_size"] = result.run.database.size


def test_e5_caterpillar_walk(benchmark):
    schema = tree_schema(["a"])
    system = DatabaseDrivenSystem.build(
        schema=schema, registers=["x", "y"], states=["p", "q"], initial="p", accepting="q",
        transitions=[("p", "anc(x_new, y_new) & !(x_new = y_new)", "q")],
    )
    result = run_once(benchmark, EmptinessSolver(TreeRunTheory(caterpillar_automaton())).check,
                      system)
    assert result.nonempty
    benchmark.extra_info["witness_size"] = result.run.database.size


def test_e5_blowup_measurement(benchmark):
    automaton = universal_automaton(["a", "b"])
    trees = [t for t in all_trees(["a", "b"], 4) if t.size == 4]
    pre_run = run_of_tree(automaton, trees[0])
    measurement = run_once(
        benchmark, measure_tree_blowup, automaton, pre_run, [[0], [0, 3], [1, 2, 3]]
    )
    for generators, observed, theoretical in measurement.rows():
        assert observed <= theoretical
    benchmark.extra_info["rows"] = measurement.rows()


def test_e5_lemma23_on_sampled_runs(benchmark):
    automaton = root_label_automaton("a", ["b"])

    def check_all():
        checked = 0
        for tree in all_trees(["a", "b"], 4):
            pre_run = run_of_tree(automaton, tree)
            if pre_run is None:
                continue
            assert satisfies_local_condition(automaton, pre_run)
            checked += 1
        return checked

    checked = run_once(benchmark, check_all)
    assert checked > 0
    benchmark.extra_info["runs_checked"] = checked
