"""E1 -- Example 1 / Example 2: the paper's running example, both answers.

Regenerates: the claim of Example 1 (some database drives an accepting run --
the solver returns a concrete odd red cycle) and of Example 2 (no database in
HOM(H) does), plus the explicit run on the paper's five-node figure graph.
"""

import pytest

from repro.analysis import bench_once as run_once
from repro import AllDatabasesTheory, EmptinessSolver, HomTheory, odd_red_cycle_free_template
from repro.library import odd_red_cycle_system
from repro.relational.csp import COLORED_GRAPH_SCHEMA, example_graph_g
from repro.systems.simulate import find_accepting_run


def test_e1_example1_all_databases(benchmark):
    system = odd_red_cycle_system()
    solver = EmptinessSolver(AllDatabasesTheory(COLORED_GRAPH_SCHEMA))
    result = run_once(benchmark, solver.check, system)
    assert result.nonempty
    benchmark.extra_info["witness_size"] = result.run.database.size
    benchmark.extra_info["configurations"] = result.statistics.configurations_explored


def test_e1_example2_hom_template(benchmark):
    system = odd_red_cycle_system()
    solver = EmptinessSolver(HomTheory(odd_red_cycle_free_template()))
    result = run_once(benchmark, solver.check, system)
    assert result.empty and result.exhausted
    benchmark.extra_info["configurations"] = result.statistics.configurations_explored


def test_e1_figure_graph_run(benchmark):
    system = odd_red_cycle_system()
    graph = example_graph_g()
    run = run_once(benchmark, find_accepting_run, system, graph)
    assert run is not None and run.final_state == "end"
    benchmark.extra_info["run_length"] = run.length
