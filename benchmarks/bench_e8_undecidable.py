"""E8 -- Section 6 (Facts 15, 16, Theorem 17): the undecidability frontier.

Regenerates: the bounded demonstrations of the counter-machine reductions.
As the database bound grows, the bounded search over the *undecidable*
extensions has to explore a configuration space that grows with the encoded
counter values (there is no small-configuration abstraction to fall back on),
while the decidable fragment's answers on comparable workloads stay flat --
the shape that motivates the paper's schema restrictions.
"""

import pytest

from repro.analysis import bench_once as run_once
from repro.undecidable import (
    counting_machine,
    demonstrate_fact15,
    demonstrate_fact16,
    demonstrate_theorem17,
)


@pytest.mark.parametrize("target", [1, 2, 3])
def test_e8_fact15_successor_words(benchmark, target):
    machine = counting_machine(target)
    accepted = run_once(benchmark, demonstrate_fact15, machine, target + 2)
    assert accepted
    benchmark.extra_info["counter_target"] = target
    benchmark.extra_info["word_length"] = target + 2


@pytest.mark.parametrize("target", [1, 2])
def test_e8_fact16_sibling_cca_trees(benchmark, target):
    machine = counting_machine(target)
    accepted = run_once(benchmark, demonstrate_fact16, machine, target + 1)
    assert accepted
    benchmark.extra_info["counter_target"] = target
    benchmark.extra_info["tree_height"] = target + 1


@pytest.mark.parametrize("target", [1, 2])
def test_e8_theorem17_tree_patterns(benchmark, target):
    machine = counting_machine(target)
    accepted = run_once(benchmark, demonstrate_theorem17, machine, target + 2)
    assert accepted
    benchmark.extra_info["counter_target"] = target
    benchmark.extra_info["chain_length"] = target + 2


def test_e8_insufficient_bound_rejects(benchmark):
    machine = counting_machine(3)
    accepted = run_once(benchmark, demonstrate_fact15, machine, 2)
    assert not accepted
    benchmark.extra_info["note"] = "bound smaller than the counter target"
