#!/usr/bin/env python
"""Unified benchmark runner: the e1-e9 suite plus the engine fast-path record.

Two phases, both optional:

* **suite** -- runs the pytest-benchmark files ``bench_e1`` .. ``bench_e9``
  and stores pytest-benchmark's machine-readable output as
  ``BENCH_suite.json`` (``--smoke`` keeps only the quick files so CI can
  afford it).
* **engine** -- measures the fast-path engine core against the legacy
  (cache-free) path on the two workloads the refactor targeted: the HOM
  scaling instance of ``bench_e2`` and the tree exploration of ``bench_e5``.
  Both paths run on the same build; the legacy path disables every
  canonical-form cache via :mod:`repro.perf`, which restores the
  pre-refactor recompute-everything behaviour.  Results -- including the
  speedup and a cross-check that all three search strategies agree on the
  e1-e3 example systems -- are written to ``BENCH_engine.json``, the perf
  trajectory baseline for future PRs.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py            # everything
    PYTHONPATH=src python benchmarks/run_all.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/run_all.py --skip-suite
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import AllDatabasesTheory, EmptinessSolver, HomTheory, clique_template  # noqa: E402
from repro.fraisse.search import STRATEGY_NAMES  # noqa: E402
from repro.library import odd_red_cycle_system, triangle_system  # noqa: E402
from repro.perf import cache_stats_snapshot, caches_disabled, reset_cache_stats  # noqa: E402
from repro.relational.csp import COLORED_GRAPH_SCHEMA, GRAPH_SCHEMA  # noqa: E402
from repro.systems.dds import DatabaseDrivenSystem  # noqa: E402
from repro.trees import TreeRunTheory, tree_schema, universal_automaton  # noqa: E402

#: Quick benchmark files used by the ``--smoke`` suite phase.
SMOKE_SUITE = ["bench_e1_examples.py", "bench_e4_words.py", "bench_e7_existential.py"]


# -- engine workloads -----------------------------------------------------------


def _tree_exploration_system() -> DatabaseDrivenSystem:
    """An empty system over trees: two registers on a common ancestor cycle.

    Unsatisfiable (mutual proper ancestry), so the engine exhausts the whole
    abstract configuration space -- the representative worst case for the
    tree theory's successor enumeration that ``bench_e5`` scales along.
    """
    schema = tree_schema(["a", "b"])
    return DatabaseDrivenSystem.build(
        schema=schema,
        registers=["x", "y"],
        states=["p", "q"],
        initial="p",
        accepting="q",
        transitions=[
            ("p", "anc(x_new, y_new) & anc(y_new, x_new) & !(x_new = y_new)", "q")
        ],
    )


def engine_workloads(smoke: bool):
    """The named (bench, builder) workloads of the engine comparison."""
    e2_template = 2 if smoke else 3
    return {
        "bench_e2": {
            "description": (
                f"triangle system over HOM(K_{e2_template}) "
                "(Theorem 4 scaling instance)"
            ),
            "system": triangle_system,
            "theory": lambda: HomTheory(clique_template(e2_template)),
            "expected_nonempty": e2_template >= 3,
        },
        "bench_e5": {
            "description": "mutual-ancestor tree system over the universal "
            "tree language (full abstract-space exploration)",
            "system": _tree_exploration_system,
            "theory": lambda: TreeRunTheory(universal_automaton(["a", "b"])),
            "expected_nonempty": False,
        },
    }


def _time_check(theory_factory, system, legacy: bool) -> float:
    solver = EmptinessSolver(theory_factory())
    if legacy:
        with caches_disabled():
            start = time.perf_counter()
            solver.check(system)
            return time.perf_counter() - start
    start = time.perf_counter()
    solver.check(system)
    return time.perf_counter() - start


def run_engine_comparison(smoke: bool, rounds: int) -> dict:
    """Fast vs legacy timings (best of ``rounds``) for the target workloads."""
    results = {}
    for name, workload in engine_workloads(smoke).items():
        system = workload["system"]()
        fast_times = []
        legacy_times = []
        verdict = None
        for _ in range(rounds):
            fast_times.append(_time_check(workload["theory"], system, legacy=False))
            legacy_times.append(_time_check(workload["theory"], system, legacy=True))
        result = EmptinessSolver(workload["theory"]()).check(system)
        verdict = result.nonempty
        assert verdict == workload["expected_nonempty"], (
            f"{name}: engine verdict {verdict} does not match the expected "
            f"answer {workload['expected_nonempty']}"
        )
        fast = min(fast_times)
        legacy = min(legacy_times)
        results[name] = {
            "workload": workload["description"],
            "nonempty": verdict,
            "rounds": rounds,
            "fast_seconds": round(fast, 4),
            "legacy_seconds": round(legacy, 4),
            "speedup": round(legacy / fast, 3) if fast > 0 else None,
            "statistics": result.statistics.as_dict(),
        }
        print(
            f"  {name}: fast {fast:.3f}s  legacy {legacy:.3f}s  "
            f"speedup {legacy / fast:.2f}x"
        )
    return results


def run_strategy_agreement() -> dict:
    """All three strategies must return the same verdict on e1-e3 systems."""
    cases = {
        "e1_odd_red_cycle_all_databases": (
            odd_red_cycle_system(),
            lambda: AllDatabasesTheory(COLORED_GRAPH_SCHEMA),
        ),
        "e2_triangle_hom_k2": (
            triangle_system(),
            lambda: HomTheory(clique_template(2)),
        ),
        "e3_triangle_all_databases": (
            triangle_system(),
            lambda: AllDatabasesTheory(GRAPH_SCHEMA),
        ),
    }
    report = {}
    for name, (system, theory_factory) in cases.items():
        verdicts = {}
        for strategy in STRATEGY_NAMES:
            result = EmptinessSolver(theory_factory(), strategy=strategy).check(system)
            verdicts[strategy] = result.nonempty
        agree = len(set(verdicts.values())) == 1
        report[name] = {**verdicts, "agree": agree}
        status = "ok" if agree else "DISAGREE"
        print(f"  {name}: {verdicts} [{status}]")
    return report


# -- suite phase ----------------------------------------------------------------


def run_suite(smoke: bool, output_path: Path) -> int:
    """Run the pytest-benchmark files, exporting their JSON."""
    bench_dir = Path(__file__).resolve().parent
    if smoke:
        targets = [str(bench_dir / name) for name in SMOKE_SUITE]
    else:
        targets = [str(bench_dir)]
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    command = [
        sys.executable,
        "-m",
        "pytest",
        "-q",
        *targets,
        f"--benchmark-json={output_path}",
    ]
    print(f"running benchmark suite ({'smoke' if smoke else 'full'}) ...")
    completed = subprocess.run(command, cwd=REPO_ROOT, env=env)
    return completed.returncode


# -- entry point ----------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: quick suite files, smaller engine workloads",
    )
    parser.add_argument(
        "--skip-suite", action="store_true", help="skip the pytest-benchmark phase"
    )
    parser.add_argument(
        "--skip-engine", action="store_true", help="skip the engine comparison phase"
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="timing rounds per engine workload (best-of; default 3, smoke 2)",
    )
    parser.add_argument(
        "--output-dir",
        type=Path,
        default=REPO_ROOT,
        help="directory for BENCH_suite.json / BENCH_engine.json",
    )
    args = parser.parse_args(argv)
    args.output_dir.mkdir(parents=True, exist_ok=True)

    exit_code = 0
    if not args.skip_suite:
        suite_path = args.output_dir / "BENCH_suite.json"
        exit_code = run_suite(args.smoke, suite_path)
        if exit_code != 0:
            print(f"benchmark suite FAILED (exit {exit_code})", file=sys.stderr)

    if not args.skip_engine:
        rounds = args.rounds if args.rounds is not None else (2 if args.smoke else 3)
        print("running engine fast-path comparison ...")
        reset_cache_stats()
        engine = run_engine_comparison(args.smoke, rounds)
        print("checking strategy agreement ...")
        agreement = run_strategy_agreement()
        record = {
            "schema_version": 1,
            "mode": "smoke" if args.smoke else "full",
            "python": platform.python_version(),
            "platform": platform.platform(),
            "engine": engine,
            "strategy_agreement": agreement,
            "cache_stats": cache_stats_snapshot(),
        }
        engine_path = args.output_dir / "BENCH_engine.json"
        engine_path.write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {engine_path}")
        if not all(case["agree"] for case in agreement.values()):
            print("strategy disagreement detected", file=sys.stderr)
            exit_code = exit_code or 1

    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
