#!/usr/bin/env python
"""Unified benchmark runner: e1-e9 suite, engine fast-path, batch service.

Three phases, all optional:

* **suite** -- runs the pytest-benchmark files ``bench_e1`` .. ``bench_e9``
  and stores pytest-benchmark's machine-readable output as
  ``BENCH_suite.json`` (``--smoke`` keeps only the quick files so CI can
  afford it).
* **engine** -- measures the fast-path engine core (compiled transition
  plans + incremental candidate pruning) against the legacy (cache-free)
  path on the two workloads the refactor targeted: the HOM scaling instance
  of ``bench_e2`` and the tree exploration of ``bench_e5``.  Both paths run
  on the same build; the legacy path disables every canonical-form cache
  and all plan usage via :mod:`repro.perf`, which restores the pre-refactor
  recompute-everything behaviour.  Results -- including the speedup, the
  per-plan statistics (pre-materialization rejections, compiled-guard hits)
  and a cross-check that all three search strategies agree on the e1-e3
  example systems -- are written to ``BENCH_engine.json``, the perf
  trajectory baseline for future PRs.  The adversarial ``stress`` phase
  (deep HOM guard templates, wide tree branching; see
  :func:`repro.workloads.stress_workloads`) rides along in the same record.
  ``--profile WORKLOAD`` instead runs one engine/stress workload under
  ``cProfile`` and prints the top cumulative functions -- the hot-spot
  locator for future perf PRs.  A ``telemetry`` section measures the cost
  of opt-in solver tracing (:class:`repro.telemetry.TraceRecorder`) against
  the untraced default, pinning down that instrumentation is pay-as-you-go.
  A ``certify`` section does the same for opt-in witness certificates
  (:mod:`repro.certify`): the recording overhead of ``certificate=True``
  on a seeded batch (budget: <5%) and the cost of the engine-independent
  validator against re-running the engine on the same nonempty jobs.
* **service** -- measures the batch verification service
  (:mod:`repro.service`) on a seeded random workload batch
  (:mod:`repro.workloads`): serial vs parallel execution and cold vs
  warm-cache reruns against the fingerprinted result store, cross-checking
  that every mode returns identical verdicts, plus a concurrent load test
  of the HTTP front door (keep-alive vs close-per-request clients over a
  mixed cold/warm traffic shape, with tail-latency percentiles), and a
  fault-tolerance phase (retry-policy overhead on clean runs, recovery
  wall-clock under an injected worker crash).  Results go to
  ``BENCH_service.json``.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py            # everything
    PYTHONPATH=src python benchmarks/run_all.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/run_all.py --skip-suite
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import (  # noqa: E402
    AllDatabasesTheory,
    EmptinessSolver,
    HomTheory,
    TraceRecorder,
    clique_template,
)
from repro.fraisse.search import STRATEGY_NAMES  # noqa: E402
from repro.library import odd_red_cycle_system, triangle_system  # noqa: E402
from repro.perf import cache_stats_snapshot, caches_disabled, reset_cache_stats  # noqa: E402
from repro.relational.csp import COLORED_GRAPH_SCHEMA, GRAPH_SCHEMA  # noqa: E402
from repro.systems.dds import DatabaseDrivenSystem  # noqa: E402
from repro.trees import TreeRunTheory, tree_schema, universal_automaton  # noqa: E402

#: Quick benchmark files used by the ``--smoke`` suite phase.
SMOKE_SUITE = ["bench_e1_examples.py", "bench_e4_words.py", "bench_e7_existential.py"]


# -- engine workloads -----------------------------------------------------------


def _tree_exploration_system() -> DatabaseDrivenSystem:
    """An empty system over trees: two registers on a common ancestor cycle.

    Unsatisfiable (mutual proper ancestry), so the engine exhausts the whole
    abstract configuration space -- the representative worst case for the
    tree theory's successor enumeration that ``bench_e5`` scales along.
    """
    schema = tree_schema(["a", "b"])
    return DatabaseDrivenSystem.build(
        schema=schema,
        registers=["x", "y"],
        states=["p", "q"],
        initial="p",
        accepting="q",
        transitions=[
            ("p", "anc(x_new, y_new) & anc(y_new, x_new) & !(x_new = y_new)", "q")
        ],
    )


def engine_workloads(smoke: bool):
    """The named (bench, builder) workloads of the engine comparison."""
    e2_template = 2 if smoke else 3
    return {
        "bench_e2": {
            "description": (
                f"triangle system over HOM(K_{e2_template}) "
                "(Theorem 4 scaling instance)"
            ),
            "system": triangle_system,
            "theory": lambda: HomTheory(clique_template(e2_template)),
            "expected_nonempty": e2_template >= 3,
        },
        "bench_e5": {
            "description": "mutual-ancestor tree system over the universal "
            "tree language (full abstract-space exploration)",
            "system": _tree_exploration_system,
            "theory": lambda: TreeRunTheory(universal_automaton(["a", "b"])),
            "expected_nonempty": False,
        },
    }


def _time_check(
    theory_factory, system, legacy: bool, max_configurations: int = 200_000
) -> float:
    solver = EmptinessSolver(theory_factory(), max_configurations=max_configurations)
    if legacy:
        with caches_disabled():
            start = time.perf_counter()
            solver.check(system)
            return time.perf_counter() - start
    start = time.perf_counter()
    solver.check(system)
    return time.perf_counter() - start


def run_engine_comparison(smoke: bool, rounds: int) -> dict:
    """Fast vs legacy timings (best of ``rounds``) for the target workloads."""
    results = {}
    for name, workload in engine_workloads(smoke).items():
        system = workload["system"]()
        fast_times = []
        legacy_times = []
        verdict = None
        for _ in range(rounds):
            fast_times.append(_time_check(workload["theory"], system, legacy=False))
            legacy_times.append(_time_check(workload["theory"], system, legacy=True))
        result = EmptinessSolver(workload["theory"]()).check(system)
        verdict = result.nonempty
        assert verdict == workload["expected_nonempty"], (
            f"{name}: engine verdict {verdict} does not match the expected "
            f"answer {workload['expected_nonempty']}"
        )
        fast = min(fast_times)
        legacy = min(legacy_times)
        results[name] = {
            "workload": workload["description"],
            "nonempty": verdict,
            "rounds": rounds,
            "fast_seconds": round(fast, 4),
            "legacy_seconds": round(legacy, 4),
            "speedup": round(legacy / fast, 3) if fast > 0 else None,
            "statistics": result.statistics.as_dict(),
        }
        print(
            f"  {name}: fast {fast:.3f}s  legacy {legacy:.3f}s  "
            f"speedup {legacy / fast:.2f}x"
        )
    return results


def run_telemetry_overhead(smoke: bool, rounds: int) -> dict:
    """Measure the cost of opt-in solver tracing on the gated workload.

    The metrics registry itself is free on the solve path -- counters are
    plain integer bumps the engine made before telemetry existed, and every
    gauge/counter callback runs at scrape time, not solve time -- so the
    only per-job telemetry knob is the opt-in :class:`TraceRecorder`.  This
    phase times ``bench_e2`` untraced (exactly what every phase above runs,
    so the engine guard in ``check_regression.py`` already gates the
    telemetry-off path) and with a recorder attached, putting a measured
    number behind the "zero overhead when off, bounded cost when on" claim.
    """
    workload = engine_workloads(smoke)["bench_e2"]
    system = workload["system"]()
    untraced_times = []
    traced_times = []
    spans = 0
    events = 0
    for _ in range(rounds):
        untraced_times.append(_time_check(workload["theory"], system, legacy=False))
        solver = EmptinessSolver(workload["theory"](), max_configurations=200_000)
        recorder = TraceRecorder()
        start = time.perf_counter()
        traced_result = solver.check(system, trace=recorder)
        traced_times.append(time.perf_counter() - start)
        spans = len(recorder.spans)
        events = len(recorder.events)
        assert traced_result.nonempty == workload["expected_nonempty"], (
            f"telemetry phase: traced verdict {traced_result.nonempty} does "
            f"not match the expected answer {workload['expected_nonempty']}"
        )
    untraced = min(untraced_times)
    traced = min(traced_times)
    overhead = (traced / untraced - 1.0) if untraced > 0 else None
    print(
        f"  bench_e2 tracing: untraced {untraced:.3f}s  traced {traced:.3f}s  "
        f"overhead {overhead * 100:+.1f}%  ({spans} spans, {events} events)"
    )
    return {
        "workload": workload["description"],
        "rounds": rounds,
        "untraced_seconds": round(untraced, 4),
        "traced_seconds": round(traced, 4),
        "trace_overhead_percent": round(overhead * 100, 1) if overhead is not None else None,
        "trace_spans": spans,
        "trace_events": events,
    }


def run_certify_benchmark(smoke: bool, rounds: int) -> dict:
    """Measure the witness-certificate opt-in against the plain batch path.

    Two numbers back the certificate design claims.  First, the recording
    overhead: executing a seeded workload batch with ``certificate=True``
    (one spec serialization + zlib per nonempty verdict) must stay within a
    few percent of the plain run -- the committed full-mode record pins the
    <5% budget, and ``check_regression.py`` gates it with noise headroom.
    Second, the payoff: re-checking the resulting certificates with the
    engine-independent validator (:func:`repro.certify.validate_encoded`)
    is compared against re-running the engine on the same nonempty jobs,
    which is what a consumer without certificates would have to do.
    """
    import dataclasses

    from repro.certify import validate_encoded
    from repro.service.jobs import execute_job
    from repro.workloads import generate_jobs

    count = 20 if smoke else 40
    jobs = generate_jobs(count, seed=7)
    certified_jobs = [dataclasses.replace(job, certificate=True) for job in jobs]
    plain_times = []
    certified_times = []
    certified_results = []
    for _ in range(rounds):
        start = time.perf_counter()
        plain_results = [execute_job(job) for job in jobs]
        plain_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        certified_results = [execute_job(job) for job in certified_jobs]
        certified_times.append(time.perf_counter() - start)
        assert [r.nonempty for r in plain_results] == [
            r.nonempty for r in certified_results
        ], "certify phase: certified verdicts diverged from the plain run"
    encoded = [r.certificate for r in certified_results if r.nonempty]
    assert encoded and all(encoded), (
        "certify phase: a nonempty verdict came back without a certificate"
    )
    nonempty_jobs = [
        job for job, r in zip(jobs, certified_results) if r.nonempty
    ]
    validate_times = []
    reexecute_times = []
    kinds = None
    for _ in range(rounds):
        start = time.perf_counter()
        kinds = sorted({validate_encoded(cert)["theory_kind"] for cert in encoded})
        validate_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        for job in nonempty_jobs:
            execute_job(job)
        reexecute_times.append(time.perf_counter() - start)
    plain = min(plain_times)
    certified = min(certified_times)
    validate = min(validate_times)
    reexecute = min(reexecute_times)
    overhead = (certified / plain - 1.0) if plain > 0 else None
    print(
        f"  certify: batch plain {plain:.3f}s  certified {certified:.3f}s  "
        f"overhead {overhead * 100:+.1f}%  "
        f"({len(encoded)} certificates: {', '.join(kinds)})"
    )
    print(
        f"  certify: validate {validate:.4f}s vs engine re-run {reexecute:.3f}s  "
        f"({reexecute / validate:.1f}x faster)" if validate > 0 else ""
    )
    return {
        "workload": f"generate_jobs({count}, seed=7) executed serially",
        "rounds": rounds,
        "jobs": count,
        "nonempty": len(encoded),
        "theory_kinds": kinds,
        "plain_seconds": round(plain, 4),
        "certified_seconds": round(certified, 4),
        "certificate_overhead_percent": (
            round(overhead * 100, 1) if overhead is not None else None
        ),
        "validate_seconds": round(validate, 4),
        "reexecute_seconds": round(reexecute, 4),
        "validation_speedup": round(reexecute / validate, 1) if validate > 0 else None,
    }


def run_stress_comparison(smoke: bool, rounds: int) -> dict:
    """Fast vs legacy timings on the adversarial workload families.

    The ROADMAP's hostile inputs (deep HOM guard templates, wide tree
    branching) measure the compiled-plan pruning where guards are large or
    enumeration is wide; verdicts are cross-checked between the fast and
    legacy paths rather than against fixed expectations.
    """
    from repro.workloads import stress_workloads

    results = {}
    for name, workload in stress_workloads().items():
        system = workload["system"]()
        cap = workload[
            "smoke_max_configurations" if smoke else "max_configurations"
        ]
        fast_times = []
        legacy_times = []
        for _ in range(rounds):
            fast_times.append(
                _time_check(workload["theory"], system, legacy=False,
                            max_configurations=cap)
            )
            legacy_times.append(
                _time_check(workload["theory"], system, legacy=True,
                            max_configurations=cap)
            )
        fast_result = EmptinessSolver(
            workload["theory"](), max_configurations=cap
        ).check(system)
        with caches_disabled():
            legacy_result = EmptinessSolver(
                workload["theory"](), max_configurations=cap
            ).check(system)
        assert fast_result.nonempty == legacy_result.nonempty, (
            f"{name}: fast/legacy verdicts disagree on the stress workload"
        )
        fast = min(fast_times)
        legacy = min(legacy_times)
        results[name] = {
            "workload": workload["description"],
            "nonempty": fast_result.nonempty,
            "exhausted": fast_result.exhausted,
            "max_configurations": cap,
            "rounds": rounds,
            "fast_seconds": round(fast, 4),
            "legacy_seconds": round(legacy, 4),
            "speedup": round(legacy / fast, 3) if fast > 0 else None,
            "statistics": fast_result.statistics.as_dict(),
        }
        print(
            f"  {name}: fast {fast:.3f}s  legacy {legacy:.3f}s  "
            f"speedup {legacy / fast:.2f}x"
        )
    return results


def run_profile(workload_name: str, smoke: bool, top: int) -> int:
    """Run one engine/stress workload under cProfile, print top-N cumulative."""
    import cProfile
    import pstats

    named = dict(engine_workloads(smoke))
    from repro.workloads import stress_workloads

    named.update(stress_workloads())
    if workload_name not in named:
        print(
            f"unknown profile workload {workload_name!r}; available: "
            f"{', '.join(sorted(named))}",
            file=sys.stderr,
        )
        return 2
    workload = named[workload_name]
    system = workload["system"]()
    cap = workload.get(
        "smoke_max_configurations" if smoke else "max_configurations", 200_000
    )
    solver = EmptinessSolver(workload["theory"](), max_configurations=cap)
    profiler = cProfile.Profile()
    profiler.enable()
    result = solver.check(system)
    profiler.disable()
    print(
        f"{workload_name}: {'nonempty' if result.nonempty else 'empty'} "
        f"(explored {result.statistics.configurations_explored}, "
        f"{result.statistics.elapsed_seconds:.3f}s)"
    )
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(top)
    return 0


def run_strategy_agreement() -> dict:
    """All three strategies must return the same verdict on e1-e3 systems."""
    cases = {
        "e1_odd_red_cycle_all_databases": (
            odd_red_cycle_system(),
            lambda: AllDatabasesTheory(COLORED_GRAPH_SCHEMA),
        ),
        "e2_triangle_hom_k2": (
            triangle_system(),
            lambda: HomTheory(clique_template(2)),
        ),
        "e3_triangle_all_databases": (
            triangle_system(),
            lambda: AllDatabasesTheory(GRAPH_SCHEMA),
        ),
    }
    report = {}
    for name, (system, theory_factory) in cases.items():
        verdicts = {}
        for strategy in STRATEGY_NAMES:
            result = EmptinessSolver(theory_factory(), strategy=strategy).check(system)
            verdicts[strategy] = result.nonempty
        agree = len(set(verdicts.values())) == 1
        report[name] = {**verdicts, "agree": agree}
        status = "ok" if agree else "DISAGREE"
        print(f"  {name}: {verdicts} [{status}]")
    return report


# -- service phase ---------------------------------------------------------------


def _service_comparison(jobs, workers: int) -> dict:
    """Serial vs parallel vs warm-cache timings for one batch of jobs.

    The warm rerun hits the same store the parallel cold run populated, so
    it measures exactly the cache path a deployed service would take on
    repeat traffic; verdict lists are asserted identical across all modes.
    """
    import tempfile

    from repro.service import BatchRunner, ResultStore

    serial = BatchRunner(workers=1, timeout_seconds=300).run(jobs)
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(Path(tmp) / "service.sqlite")
        try:
            cold = BatchRunner(store=store, workers=workers, timeout_seconds=300).run(
                jobs
            )
            warm = BatchRunner(store=store, workers=workers, timeout_seconds=300).run(
                jobs
            )
        finally:
            store.close()

    verdicts_match = serial.verdicts == cold.verdicts == warm.verdicts
    assert verdicts_match, "parallel/warm verdicts differ from the serial run"
    assert warm.cache_hits == len(jobs), "warm rerun did not hit the store for every job"
    speedup = (
        cold.elapsed_seconds / warm.elapsed_seconds if warm.elapsed_seconds else None
    )
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cpus = os.cpu_count()
    return {
        "job_count": len(jobs),
        "workers": workers,
        # Worker processes are single-core; parallel fan-out can only beat
        # serial execution when this exceeds 1.
        "cpus_available": cpus,
        "verdict_counts": cold.verdict_counts(),
        "serial_seconds": round(serial.elapsed_seconds, 4),
        "parallel_cold_seconds": round(cold.elapsed_seconds, 4),
        "serial_vs_parallel_speedup": round(
            serial.elapsed_seconds / cold.elapsed_seconds, 2
        )
        if cold.elapsed_seconds
        else None,
        "warm_seconds": round(warm.elapsed_seconds, 4),
        "cold_vs_warm_speedup": round(speedup, 1) if speedup else None,
        "warm_cache_hits": warm.cache_hits,
        "serial_parallel_verdicts_match": verdicts_match,
        "errors": len(cold.errors),
    }


#: Worker counts of the scaling curve (the ROADMAP's multi-core record;
#: CI runs it on a 4-core runner, where 4 workers should approach 4x on
#: heavy jobs).
SCALING_WORKER_COUNTS = (1, 2, 4)


def run_worker_scaling(smoke: bool) -> dict:
    """Cold-run wall-clock of one heavy batch across worker counts.

    Uses the heavy profile (0.1-1s per job): pool fan-out only wins when
    per-job engine time dwarfs process overhead, so light jobs would just
    measure the pool.  No store -- each run is a pure cold execution of the
    same jobs, making the curve a direct serial-vs-parallel comparison.
    """
    from repro.service import BatchRunner
    from repro.workloads import generate_jobs

    jobs = generate_jobs(4 if smoke else 16, seed=2013, profile="heavy")
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cpus = os.cpu_count()
    curve = []
    serial_seconds = None
    baseline_verdicts = None
    for workers in SCALING_WORKER_COUNTS:
        report = BatchRunner(workers=workers, timeout_seconds=300).run(jobs)
        if baseline_verdicts is None:
            baseline_verdicts = report.verdicts
            serial_seconds = report.elapsed_seconds
        assert report.verdicts == baseline_verdicts, (
            f"scaling run with {workers} workers changed the verdicts"
        )
        point = {
            "workers": workers,
            "seconds": round(report.elapsed_seconds, 4),
            "speedup_vs_serial": round(serial_seconds / report.elapsed_seconds, 2)
            if report.elapsed_seconds
            else None,
            "errors": len(report.errors),
        }
        curve.append(point)
        speedup_text = (
            f"{point['speedup_vs_serial']:.2f}x vs serial"
            if point["speedup_vs_serial"] is not None
            else "speedup n/a (sub-resolution run)"
        )
        print(f"  scaling: {workers} worker(s)  {point['seconds']:.3f}s  {speedup_text}")
    return {"job_count": len(jobs), "cpus_available": cpus, "curve": curve}


def _load_percentile(ordered, q):
    """Nearest-rank percentile of an ascending-sorted non-empty list."""
    import math

    rank = max(0, math.ceil(q * len(ordered)) - 1)
    return ordered[min(rank, len(ordered) - 1)]


def _load_test_mode(keep_alive: bool, clients: int, requests_per_client: int) -> dict:
    """One load-test measurement: N concurrent clients against a fresh server.

    Each client issues ``requests_per_client`` single-job submissions over
    one :class:`ServiceClient`: mostly warm jobs rotating through a
    pre-populated pool (the store path) plus one job unique to that client
    (the cold engine path), so the traffic mixes both regimes mid-flight.
    Each mode gets its own server and in-memory store -- otherwise the
    first mode's cold jobs would arrive warm in the second and skew the
    keep-alive vs close-per-request comparison.
    """
    import threading

    from repro.service import ResultStore, ServerThread, ServiceClient, VerificationService
    from repro.workloads import generate_jobs

    warm_jobs = generate_jobs(8, seed=2015)
    cold_jobs = generate_jobs(clients, seed=2016)
    service = VerificationService(store=ResultStore.in_memory(), max_pending=None)
    with ServerThread(service=service) as server:
        with ServiceClient(server.base_url) as warmer:
            warmer.submit_batch(warm_jobs)
        latencies = []
        errors = []
        lock = threading.Lock()
        start_barrier = threading.Barrier(clients + 1)

        def run_client(client_index: int) -> None:
            mine = []
            try:
                with ServiceClient(server.base_url, keep_alive=keep_alive, timeout=120) as client:
                    start_barrier.wait()
                    for request_index in range(requests_per_client):
                        if request_index == 1:
                            job = cold_jobs[client_index]
                        else:
                            job = warm_jobs[(client_index + request_index) % len(warm_jobs)]
                        began = time.perf_counter()
                        client.submit_job(job)
                        mine.append(time.perf_counter() - began)
            except Exception as error:  # noqa: BLE001 - recorded, fails the phase
                with lock:
                    errors.append(f"client {client_index}: {type(error).__name__}: {error}")
            with lock:
                latencies.extend(mine)

        threads = [
            threading.Thread(target=run_client, args=(index,), daemon=True)
            for index in range(clients)
        ]
        for thread in threads:
            thread.start()
        start_barrier.wait()
        began = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - began
        stats = service.stats
        executed, connections = stats.executed, stats.connections_total

    assert not errors, f"load test had client errors: {errors[:3]}"
    total = clients * requests_per_client
    assert len(latencies) == total
    # Every cold job ran the engine exactly once (plus the warm-pool fill);
    # everything else was served from the store or an in-flight join.
    assert executed == len(warm_jobs) + clients, (
        f"expected {len(warm_jobs) + clients} engine runs, saw {executed}"
    )
    ordered = sorted(latencies)
    return {
        "keep_alive": keep_alive,
        "clients": clients,
        "requests_per_client": requests_per_client,
        "total_requests": total,
        "cold_requests": clients,
        "elapsed_seconds": round(elapsed, 4),
        "throughput_rps": round(total / elapsed, 2) if elapsed else None,
        "connections_total": connections,
        "p50_ms": round(1000 * _load_percentile(ordered, 0.5), 3),
        "p95_ms": round(1000 * _load_percentile(ordered, 0.95), 3),
        "p99_ms": round(1000 * _load_percentile(ordered, 0.99), 3),
    }


def run_load_test(smoke: bool) -> dict:
    """Hammer the HTTP front door with concurrent mixed cold/warm clients.

    Measures the whole serving stack -- connection handling, routing,
    store-first serving, in-flight dedup -- under the traffic shape the
    server is built for, once with keep-alive clients and once
    close-per-request.  Keep-alive must not lose to close-per-request:
    persistent connections skip the TCP handshake per request, so the ratio
    is the tentpole's acceptance number (guarded by check_regression.py).
    """
    clients = 24 if smoke else 200
    requests_per_client = 6 if smoke else 8
    keepalive = _load_test_mode(True, clients, requests_per_client)
    close = _load_test_mode(False, clients, requests_per_client)
    ratio = (
        round(keepalive["throughput_rps"] / close["throughput_rps"], 3)
        if keepalive["throughput_rps"] and close["throughput_rps"]
        else None
    )
    for name, mode in (("keepalive", keepalive), ("close-per-request", close)):
        print(
            f"  load({name}): {mode['clients']} clients x {mode['requests_per_client']}  "
            f"{mode['throughput_rps']:.0f} rps  p50 {mode['p50_ms']:.1f}ms  "
            f"p95 {mode['p95_ms']:.1f}ms  p99 {mode['p99_ms']:.1f}ms  "
            f"({mode['connections_total']} conns)"
        )
    print(f"  load: keepalive/close throughput ratio {ratio:.2f}x")
    return {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "keepalive": keepalive,
        "close_per_request": close,
        "keepalive_vs_close_throughput": ratio,
    }


def run_fault_tolerance_benchmark(smoke: bool) -> dict:
    """Cost of the retry machinery on clean runs, and recovery under faults.

    Two questions, both answered on the same seeded batch:

    * **overhead** -- a clean run with a retry policy armed must cost about
      the same as one without (the policy only spends time when a transient
      failure actually happens).  Target <2 percent; the regression guard
      allows more headroom for shared-runner noise.
    * **recovery** -- with a worker crash injected on one job's first
      attempt, the batch must still produce identical verdicts, and the
      extra wall-clock is the measured price of one supervised respawn and
      retry.
    """
    from repro import faults
    from repro.service import BatchRunner, RetryPolicy
    from repro.workloads import generate_jobs

    jobs = generate_jobs(12 if smoke else 48, seed=2017)
    workers = 2
    rounds = 2 if smoke else 3
    plain_times = []
    armed_times = []
    baseline_verdicts = None
    for _ in range(rounds):
        plain = BatchRunner(workers=workers, timeout_seconds=300).run(jobs)
        armed = BatchRunner(
            workers=workers,
            timeout_seconds=300,
            retry_policy=RetryPolicy.with_retries(2),
        ).run(jobs)
        if baseline_verdicts is None:
            baseline_verdicts = plain.verdicts
        assert plain.verdicts == armed.verdicts == baseline_verdicts, (
            "arming the retry policy changed the verdicts on a clean run"
        )
        assert armed.fault_tolerance["retries"] == 0, (
            "a clean run should never retry"
        )
        plain_times.append(plain.elapsed_seconds)
        armed_times.append(armed.elapsed_seconds)
    plain_best = min(plain_times)
    armed_best = min(armed_times)
    overhead = (armed_best / plain_best - 1.0) * 100 if plain_best > 0 else None

    # Recovery: crash the worker on one job's first attempt (the env var is
    # the only channel that reaches spawned workers) and time the rerun.
    previous = os.environ.get(faults.FAULTS_ENV_VAR)
    os.environ[faults.FAULTS_ENV_VAR] = (
        f"worker.crash:match={jobs[0].fingerprint[:12]},attempt=1"
    )
    try:
        recovery = BatchRunner(
            workers=workers,
            timeout_seconds=300,
            retry_policy=RetryPolicy.with_retries(1),
        ).run(jobs)
    finally:
        if previous is None:
            del os.environ[faults.FAULTS_ENV_VAR]
        else:
            os.environ[faults.FAULTS_ENV_VAR] = previous
    assert recovery.verdicts == baseline_verdicts, (
        "recovery from an injected worker crash changed the verdicts"
    )
    assert recovery.fault_tolerance["worker_crashes"] == 1
    assert recovery.fault_tolerance["retries"] == 1

    print(
        f"  fault tolerance: clean {plain_best:.3f}s  retry-armed "
        f"{armed_best:.3f}s  overhead {overhead:+.1f}%  "
        f"crash-recovery {recovery.elapsed_seconds:.3f}s"
    )
    return {
        "job_count": len(jobs),
        "workers": workers,
        "rounds": rounds,
        "clean_seconds": round(plain_best, 4),
        "retry_armed_seconds": round(armed_best, 4),
        "retry_overhead_percent": round(overhead, 2) if overhead is not None else None,
        "crash_recovery_seconds": round(recovery.elapsed_seconds, 4),
        "recovery_fault_counters": {
            key: value for key, value in recovery.fault_tolerance.items() if value
        },
        "verdicts_preserved": True,
    }


def run_cluster_benchmark(smoke: bool) -> dict:
    """Fleet throughput: coordinator + runners over one shared keyspace.

    Builds the full distributed topology in-process -- a ``repro store
    serve`` keyspace thread, two runner nodes whose stores point at it,
    and a fingerprint-sharded coordinator front door -- and measures:

    * **cold** -- one fan-out execution of the seeded batch across the
      runner fleet (verdicts asserted identical to a serial single-node
      run, the distributed tier's acceptance bar);
    * **warm serve** -- repeated reruns of the same batch through the
      coordinator, all answered from the shared keyspace.  Best-round
      throughput is the gated number (check_regression.py): it covers the
      coordinator's store-first path, the HTTP backend and the keyspace
      server in one figure.
    """
    from repro.service import (
        CoordinatorService,
        KeyspaceServerThread,
        ResultStore,
        ServerThread,
        ServiceClient,
        VerificationService,
    )
    from repro.service.runner import BatchRunner
    from repro.workloads import generate_jobs

    jobs = generate_jobs(12 if smoke else 48, seed=2019)
    serial = {}
    for _, result in BatchRunner(workers=1).execute_indexed(jobs):
        serial[result.fingerprint] = (result.nonempty, result.exhausted)
    rounds = 3 if smoke else 5
    with KeyspaceServerThread() as keyspace:
        runner_a = ServerThread(
            service=VerificationService(store=ResultStore.from_url(keyspace.base_url))
        )
        runner_b = ServerThread(
            service=VerificationService(store=ResultStore.from_url(keyspace.base_url))
        )
        with runner_a, runner_b:
            coordinator = ServerThread(
                service=CoordinatorService(
                    runners=[runner_a.base_url, runner_b.base_url],
                    store=ResultStore.from_url(keyspace.base_url),
                )
            )
            with coordinator:
                with ServiceClient(coordinator.base_url, timeout=300) as client:
                    began = time.perf_counter()
                    cold = client.submit_batch(jobs)
                    cold_seconds = time.perf_counter() - began
                    verdicts = {
                        entry["fingerprint"]: (entry["nonempty"], entry["exhausted"])
                        for entry in cold["results"]
                    }
                    assert verdicts == serial, (
                        "the sharded fleet changed verdicts vs a serial single-node run"
                    )
                    assert cold["executed"] == len(jobs)
                    warm_times = []
                    for _ in range(rounds):
                        began = time.perf_counter()
                        warm = client.submit_batch(jobs)
                        warm_times.append(time.perf_counter() - began)
                        assert warm["executed"] == 0, (
                            "a warm fleet rerun re-executed jobs instead of "
                            "serving them from the shared keyspace"
                        )
                executed_per_runner = [
                    runner_a.service.stats.executed,
                    runner_b.service.stats.executed,
                ]
    warm_best = min(warm_times)
    throughput = len(jobs) / warm_best if warm_best > 0 else None
    print(
        f"  cluster: {len(jobs)} jobs over 2 runners  cold {cold_seconds:.3f}s  "
        f"warm {warm_best:.4f}s  warm-serve {throughput:.0f} jobs/s  "
        f"shard split {executed_per_runner}"
    )
    return {
        "job_count": len(jobs),
        "runners": 2,
        "warm_rounds": rounds,
        "cold_seconds": round(cold_seconds, 4),
        "warm_best_seconds": round(warm_best, 4),
        "warm_throughput_jps": round(throughput, 2) if throughput else None,
        "shard_split": executed_per_runner,
        "verdicts_match_serial": True,
    }


def run_service_benchmark(smoke: bool) -> dict:
    """The batch-service record: store-focused, fan-out, and scaling phases.

    The light batch (many tiny heterogeneous jobs) measures the fingerprint
    store -- its warm rerun is the acceptance-gated >=10x path.  The heavy
    batch (0.1-1s relational jobs) is where parallel fan-out beats serial
    execution; it is skipped in smoke mode to keep CI cheap.  The worker
    scaling curve (1/2/4 workers over one heavy batch) runs in both modes --
    smaller in smoke -- so the CI artifact carries a multi-core record.
    """
    from repro.workloads import generate_jobs

    light_jobs = generate_jobs(10 if smoke else 60, seed=2013)
    light = _service_comparison(light_jobs, workers=2 if smoke else 4)
    print(
        f"  light: {light['job_count']} jobs  serial {light['serial_seconds']:.3f}s  "
        f"parallel({light['workers']}) {light['parallel_cold_seconds']:.3f}s  "
        f"warm {light['warm_seconds']:.4f}s  "
        f"cold/warm {light['cold_vs_warm_speedup']:.0f}x"
    )
    record = {"light": light}
    if not smoke:
        heavy_jobs = generate_jobs(16, seed=2013, profile="heavy")
        heavy = _service_comparison(heavy_jobs, workers=4)
        print(
            f"  heavy: {heavy['job_count']} jobs  serial {heavy['serial_seconds']:.3f}s  "
            f"parallel({heavy['workers']}) {heavy['parallel_cold_seconds']:.3f}s  "
            f"({heavy['serial_vs_parallel_speedup']:.2f}x)  "
            f"warm {heavy['warm_seconds']:.4f}s"
        )
        record["heavy"] = heavy
    record["scaling"] = run_worker_scaling(smoke)
    record["load_test"] = run_load_test(smoke)
    record["fault_tolerance"] = run_fault_tolerance_benchmark(smoke)
    record["cluster"] = run_cluster_benchmark(smoke)
    return record


# -- suite phase ----------------------------------------------------------------


def run_suite(smoke: bool, output_path: Path) -> int:
    """Run the pytest-benchmark files, exporting their JSON."""
    bench_dir = Path(__file__).resolve().parent
    if smoke:
        targets = [str(bench_dir / name) for name in SMOKE_SUITE]
    else:
        targets = [str(bench_dir)]
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    command = [
        sys.executable,
        "-m",
        "pytest",
        "-q",
        *targets,
        f"--benchmark-json={output_path}",
    ]
    print(f"running benchmark suite ({'smoke' if smoke else 'full'}) ...")
    completed = subprocess.run(command, cwd=REPO_ROOT, env=env)
    return completed.returncode


# -- entry point ----------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: quick suite files, smaller engine workloads",
    )
    parser.add_argument(
        "--skip-suite", action="store_true", help="skip the pytest-benchmark phase"
    )
    parser.add_argument(
        "--skip-engine", action="store_true", help="skip the engine comparison phase"
    )
    parser.add_argument(
        "--skip-service", action="store_true", help="skip the batch service phase"
    )
    parser.add_argument(
        "--skip-stress", action="store_true", help="skip the adversarial stress phase"
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="timing rounds per engine workload (best-of; default 3, smoke 2)",
    )
    parser.add_argument(
        "--profile",
        metavar="WORKLOAD",
        default=None,
        help="run one engine/stress workload under cProfile and exit "
        "(e.g. bench_e2, stress_hom_deep)",
    )
    parser.add_argument(
        "--profile-top",
        type=int,
        default=20,
        help="number of cumulative-time entries to print with --profile",
    )
    parser.add_argument(
        "--output-dir",
        type=Path,
        default=REPO_ROOT,
        help="directory for BENCH_suite.json / BENCH_engine.json",
    )
    args = parser.parse_args(argv)
    args.output_dir.mkdir(parents=True, exist_ok=True)

    if args.profile:
        return run_profile(args.profile, args.smoke, args.profile_top)

    exit_code = 0
    if not args.skip_suite:
        suite_path = args.output_dir / "BENCH_suite.json"
        exit_code = run_suite(args.smoke, suite_path)
        if exit_code != 0:
            print(f"benchmark suite FAILED (exit {exit_code})", file=sys.stderr)

    if not args.skip_engine:
        rounds = args.rounds if args.rounds is not None else (2 if args.smoke else 3)
        print("running engine fast-path comparison ...")
        reset_cache_stats()
        engine = run_engine_comparison(args.smoke, rounds)
        stress = {}
        if not args.skip_stress:
            print("running adversarial stress phase ...")
            stress = run_stress_comparison(args.smoke, rounds)
        print("measuring telemetry/tracing overhead ...")
        telemetry_overhead = run_telemetry_overhead(args.smoke, rounds)
        print("measuring witness-certificate overhead and validator payoff ...")
        certify = run_certify_benchmark(args.smoke, rounds)
        print("checking strategy agreement ...")
        agreement = run_strategy_agreement()
        record = {
            "schema_version": 4,
            "mode": "smoke" if args.smoke else "full",
            "python": platform.python_version(),
            "platform": platform.platform(),
            "engine": engine,
            "stress": stress,
            "telemetry": telemetry_overhead,
            "certify": certify,
            "strategy_agreement": agreement,
            "cache_stats": cache_stats_snapshot(),
        }
        engine_path = args.output_dir / "BENCH_engine.json"
        engine_path.write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {engine_path}")
        if not all(case["agree"] for case in agreement.values()):
            print("strategy disagreement detected", file=sys.stderr)
            exit_code = exit_code or 1

    if not args.skip_service:
        print("running batch service benchmark ...")
        try:
            service = run_service_benchmark(args.smoke)
        except AssertionError as error:
            print(f"service benchmark FAILED: {error}", file=sys.stderr)
            exit_code = exit_code or 1
        else:
            service_record = {
                "schema_version": 1,
                "mode": "smoke" if args.smoke else "full",
                "python": platform.python_version(),
                "platform": platform.platform(),
                "service": service,
            }
            service_path = args.output_dir / "BENCH_service.json"
            service_path.write_text(json.dumps(service_record, indent=2) + "\n")
            print(f"wrote {service_path}")

    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
