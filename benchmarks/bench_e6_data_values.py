"""E6 -- Section 4.4 / Proposition 1 / Corollary 8 / Theorem 9: data values.

Regenerates: the claim that adding data values (⊗/⊙ with ⟨N,~⟩ or ⟨Q,<⟩)
keeps the decision procedure's blowup unchanged -- the same workload is run
without values, with equality values and with ordered values, and the
reported abstract-configuration counts stay in the same ballpark while the
answers flip exactly where the paper says they should (shared values are
impossible under the injective ⊙ product).
"""

import pytest

from repro.analysis import bench_once as run_once
from repro.datavalues import NATURALS_WITH_EQUALITY, RATIONALS_WITH_ORDER, with_data_values
from repro.fraisse.engine import EmptinessSolver
from repro.relational import AllDatabasesTheory
from repro.relational.csp import GRAPH_SCHEMA
from repro.systems.dds import DatabaseDrivenSystem
from repro.trees import TreeRunTheory, tree_schema, universal_automaton


def edge_system(schema, extra_guard=""):
    guard = "x_old = x_new & y_old = y_new & E(x_new, y_new)"
    if extra_guard:
        guard = guard + " & " + extra_guard
    return DatabaseDrivenSystem.build(
        schema=schema, registers=["x", "y"], states=["a", "b"], initial="a", accepting="b",
        transitions=[("a", guard, "b")],
    )


def test_e6_baseline_without_values(benchmark):
    system = edge_system(GRAPH_SCHEMA)
    result = run_once(benchmark, EmptinessSolver(AllDatabasesTheory(GRAPH_SCHEMA)).check, system)
    assert result.nonempty
    benchmark.extra_info["configurations"] = result.statistics.configurations_explored


@pytest.mark.parametrize("injective,expected", [(False, True), (True, False)])
def test_e6_equality_values(benchmark, injective, expected):
    schema = GRAPH_SCHEMA.union(NATURALS_WITH_EQUALITY.schema)
    system = edge_system(schema, "sim(x_new, y_new) & !(x_new = y_new)")
    theory = with_data_values(AllDatabasesTheory(GRAPH_SCHEMA), NATURALS_WITH_EQUALITY, injective)
    result = run_once(benchmark, EmptinessSolver(theory).check, system)
    assert result.nonempty == expected
    benchmark.extra_info["product"] = "odot" if injective else "tensor"
    benchmark.extra_info["configurations"] = result.statistics.configurations_explored


def test_e6_ordered_values(benchmark):
    schema = GRAPH_SCHEMA.union(RATIONALS_WITH_ORDER.schema)
    system = edge_system(schema, "lt(x_new, y_new)")
    theory = with_data_values(AllDatabasesTheory(GRAPH_SCHEMA), RATIONALS_WITH_ORDER, True)
    result = run_once(benchmark, EmptinessSolver(theory).check, system)
    assert result.nonempty
    benchmark.extra_info["configurations"] = result.statistics.configurations_explored


def test_e6_data_trees_theorem9(benchmark):
    automaton = universal_automaton(["a"])
    schema = tree_schema(["a"]).union(NATURALS_WITH_EQUALITY.schema)
    system = DatabaseDrivenSystem.build(
        schema=schema, registers=["x"], states=["r", "s", "t"], initial="r", accepting="t",
        transitions=[
            ("r", "label_a(x_new)", "s"),
            ("s", "anc(x_old, x_new) & !(x_old = x_new) & sim(x_old, x_new)", "t"),
        ],
    )
    theory = with_data_values(TreeRunTheory(automaton), NATURALS_WITH_EQUALITY)
    result = run_once(benchmark, EmptinessSolver(theory).check, system)
    assert result.nonempty
    benchmark.extra_info["witness_size"] = result.run.database.size
