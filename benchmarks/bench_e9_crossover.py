"""E9 -- abstraction vs enumeration: the crossover that motivates the paper.

Regenerates: the comparison between the small-configuration engine of
Theorem 5 and the brute-force baseline (enumerate all databases up to a size
bound, simulate on each).  The workload is the red-path family, whose
smallest witness grows with the path length: the baseline's work explodes
doubly exponentially with the required witness size while the abstraction
engine grows mildly -- "who wins" flips as soon as witnesses need more than
about three elements.
"""

import pytest

from repro.analysis import bench_once as run_once
from repro.baselines import BruteForceSolver
from repro.fraisse.engine import EmptinessSolver
from repro.library import red_path_system
from repro.relational import AllDatabasesTheory
from repro.relational.csp import COLORED_GRAPH_SCHEMA


@pytest.mark.parametrize("length", [1, 2, 3])
def test_e9_engine_side(benchmark, length):
    system = red_path_system(length)
    solver = EmptinessSolver(AllDatabasesTheory(COLORED_GRAPH_SCHEMA))
    result = run_once(benchmark, solver.check, system)
    assert result.nonempty
    benchmark.extra_info["path_length"] = length
    benchmark.extra_info["configurations"] = result.statistics.configurations_explored


@pytest.mark.parametrize("length", [1, 2, 3])
def test_e9_brute_force_side(benchmark, length):
    system = red_path_system(length)
    solver = BruteForceSolver()
    # A red path of `length` edges fits into a database with 1 element (a red
    # self loop satisfies every E step), so the baseline needs size >= 1; we
    # give it the size bound matching the engine's witness to keep the
    # comparison honest, which is where its doubly exponential enumeration
    # cost shows.
    result = run_once(benchmark, solver.check, system, max(2, length))
    assert result.nonempty
    benchmark.extra_info["path_length"] = length
    benchmark.extra_info["databases_checked"] = result.databases_checked
