"""E2 -- Theorem 4: PSpace emptiness over HOM templates, scaling shape.

Regenerates: the scaling of the decision procedure with the template size
(clique templates K_2 .. K_4) on the clique-finding workload.  The expected
shape: K_n templates make the n-clique system nonempty exactly when the
sought clique fits (crossover at template size = clique size), and the work
grows with the number of colours but stays far below database enumeration.
"""

import pytest

from repro.analysis import bench_once as run_once
from repro import EmptinessSolver, HomTheory, clique_template
from repro.library import triangle_system


@pytest.mark.parametrize("template_size", [2, 3])
def test_e2_triangle_over_clique_templates(benchmark, template_size):
    system = triangle_system()
    solver = EmptinessSolver(HomTheory(clique_template(template_size)))
    result = run_once(benchmark, solver.check, system)
    assert result.nonempty == (template_size >= 3)
    benchmark.extra_info["template_size"] = template_size
    benchmark.extra_info["nonempty"] = result.nonempty
    benchmark.extra_info["configurations"] = result.statistics.configurations_explored
    benchmark.extra_info["candidates"] = result.statistics.candidates_generated
