"""E4 -- Theorem 10 / Lemma 12 / Proposition 2: the word case.

Regenerates: emptiness answers over a regular word language for a nonempty
and an empty workload, the scaling with NFA size (one-b languages over
growing alphabets), and the measured blowup of pointer-closed generated
substructures against the ``2 |Q| n`` bound of Section 5.1.
"""

import pytest

from repro.analysis import bench_once as run_once, measure_word_blowup
from repro.fraisse.engine import EmptinessSolver
from repro.systems.dds import DatabaseDrivenSystem
from repro.words import NFA, PositionAutomaton, WordRunTheory, pre_run_of_word, word_schema


def one_b_nfa(extra_letters=0):
    letters = ["a", "b"] + [f"c{i}" for i in range(extra_letters)]
    transitions = [("s0", "a", "s0"), ("s0", "b", "s1"), ("s1", "a", "s1")]
    for i in range(extra_letters):
        transitions.append(("s0", f"c{i}", "s0"))
        transitions.append(("s1", f"c{i}", "s1"))
    return NFA.make(["s0", "s1"], letters, transitions, ["s0"], ["s1"])


def a_before_b_system(alphabet):
    schema = word_schema(alphabet)
    return DatabaseDrivenSystem.build(
        schema=schema, registers=["x"], states=["p", "q"], initial="p", accepting="q",
        transitions=[("p", "label_a(x_old) & label_b(x_new) & before(x_old, x_new)", "q")],
    )


def two_bs_system(alphabet):
    schema = word_schema(alphabet)
    return DatabaseDrivenSystem.build(
        schema=schema, registers=["x", "y"], states=["p", "q"], initial="p", accepting="q",
        transitions=[("p", "label_b(x_new) & label_b(y_new) & !(x_new = y_new)", "q")],
    )


@pytest.mark.parametrize("extra_letters", [0, 1, 2])
def test_e4_nonempty_scaling_with_alphabet(benchmark, extra_letters):
    nfa = one_b_nfa(extra_letters)
    system = a_before_b_system(sorted(nfa.alphabet))
    result = run_once(benchmark, EmptinessSolver(WordRunTheory(nfa)).check, system)
    assert result.nonempty
    benchmark.extra_info["alphabet"] = len(nfa.alphabet)
    benchmark.extra_info["configurations"] = result.statistics.configurations_explored


@pytest.mark.parametrize("extra_letters", [0, 1])
def test_e4_empty_scaling_with_alphabet(benchmark, extra_letters):
    nfa = one_b_nfa(extra_letters)
    system = two_bs_system(sorted(nfa.alphabet))
    result = run_once(benchmark, EmptinessSolver(WordRunTheory(nfa)).check, system)
    assert result.empty and result.exhausted
    benchmark.extra_info["alphabet"] = len(nfa.alphabet)
    benchmark.extra_info["configurations"] = result.statistics.configurations_explored


def test_e4_blowup_measurement(benchmark):
    automaton = PositionAutomaton.from_nfa(one_b_nfa())
    pre_run = pre_run_of_word(automaton, ("a", "a", "b", "a", "a"))
    measurement = run_once(
        benchmark,
        measure_word_blowup,
        automaton,
        pre_run,
        [[0], [0, 4], [1, 2, 3]],
    )
    for generators, observed, theoretical in measurement.rows():
        assert observed <= theoretical
    benchmark.extra_info["rows"] = measurement.rows()
