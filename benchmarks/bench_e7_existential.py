"""E7 -- Fact 2: compiling existential guards is linear and preserves answers.

Regenerates: the compilation size/time grows linearly with the number of
quantified variables, and the compiled quantifier-free system gives the same
emptiness answer as direct (existential-aware) simulation.
"""

import pytest

from repro.analysis import bench_once as run_once
from repro.fraisse.engine import EmptinessSolver
from repro.relational import AllDatabasesTheory
from repro.relational.csp import COLORED_GRAPH_SCHEMA
from repro.systems.dds import DatabaseDrivenSystem
from repro.systems.existential import compile_existential_guards


def existential_system(width: int) -> DatabaseDrivenSystem:
    """A guard asking for a red out-neighbourhood of ``width`` fresh witnesses."""
    names = [f"w{i}" for i in range(width)]
    body = " & ".join(f"E(x_old, {n}) & red({n})" for n in names)
    guard = f"x_old = x_new & (exists {', '.join(names)} . {body})"
    return DatabaseDrivenSystem.build(
        schema=COLORED_GRAPH_SCHEMA, registers=["x"], states=["a", "b"],
        initial="a", accepting="b", transitions=[("a", guard, "b")],
        allow_existential_guards=True,
    )


@pytest.mark.parametrize("width", [1, 2, 3, 4])
def test_e7_compilation_is_linear(benchmark, width):
    system = existential_system(width)
    compiled = run_once(benchmark, compile_existential_guards, system)
    assert len(compiled.registers) == 1 + width
    assert all(t.guard.is_quantifier_free() for t in compiled.transitions)
    benchmark.extra_info["quantified_variables"] = width
    benchmark.extra_info["compiled_registers"] = len(compiled.registers)


@pytest.mark.parametrize("width", [1, 2])
def test_e7_compiled_system_same_answer(benchmark, width):
    system = existential_system(width)
    compiled = compile_existential_guards(system)
    result = run_once(
        benchmark, EmptinessSolver(AllDatabasesTheory(COLORED_GRAPH_SCHEMA)).check, compiled
    )
    assert result.nonempty
    benchmark.extra_info["quantified_variables"] = width
