"""E3 -- Theorem 5 and Lemma 1: generic-engine scaling with control states and registers.

Regenerates: the ``log(n) * poly(blowup(2k))`` shape of Theorem 5 -- the
abstract configuration space grows mildly with the number of control states
(the red-path family) and sharply with the number of registers (Lemma 1's
PSpace-hardness is driven by registers, not states).
"""

import pytest

from repro.analysis import bench_once as run_once
from repro import AllDatabasesTheory, EmptinessSolver
from repro.library import clique_system, red_path_system
from repro.relational.csp import COLORED_GRAPH_SCHEMA, GRAPH_SCHEMA


@pytest.mark.parametrize("length", [2, 4, 6, 8])
def test_e3_states_scaling_red_path(benchmark, length):
    system = red_path_system(length)
    solver = EmptinessSolver(AllDatabasesTheory(COLORED_GRAPH_SCHEMA))
    result = run_once(benchmark, solver.check, system)
    assert result.nonempty
    benchmark.extra_info["control_states"] = len(system.states)
    benchmark.extra_info["configurations"] = result.statistics.configurations_explored


@pytest.mark.parametrize("registers", [1, 2, 3])
def test_e3_register_scaling_cliques(benchmark, registers):
    system = clique_system(registers)
    solver = EmptinessSolver(AllDatabasesTheory(GRAPH_SCHEMA))
    result = run_once(benchmark, solver.check, system)
    assert result.nonempty
    benchmark.extra_info["registers"] = registers
    benchmark.extra_info["candidates"] = result.statistics.candidates_generated
