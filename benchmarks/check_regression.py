#!/usr/bin/env python
"""Benchmark regression guard: fail CI when a gated benchmark collapses.

Two guarded records, selected with ``--kind``:

* ``engine`` (the default) compares a freshly produced ``BENCH_engine.json``
  (typically the ``--smoke`` variant from the CI benchmark job) against the
  committed record.  The check fails when

      current_speedup < max(min_floor, committed_speedup * tolerance)

  for the gated workload (``bench_e2``, the HOM scaling instance the
  compiled transition plans target).  It also gates the witness-certificate
  phase: recording certificates on the seeded batch must stay within
  ``--max-certify-overhead`` percent of the plain run (the design target
  is <5%; the gate leaves headroom for noisy runners).

* ``service`` gates the HTTP front door's load test in
  ``BENCH_service.json``: keep-alive throughput must not lose to the
  close-per-request baseline measured in the same fresh run
  (``--min-ratio``), and must retain a fraction of the committed record's
  keep-alive throughput (``--tolerance`` with an absolute rps floor).  It
  also gates the fault-tolerance phase: arming the retry policy on a clean
  run must stay within ``--max-retry-overhead`` percent of the plain run
  (the design target is <2%; the gate leaves headroom for noisy runners).
  Finally it gates the cluster phase: the sharded fleet's warm-serve
  throughput (coordinator + runners over one shared keyspace) must retain
  a fraction of the committed number (``--cluster-tolerance`` with an
  absolute jobs/second floor), and the fresh record must assert verdict
  parity with a serial single-node run.

Both guards are tolerance-based: the committed records are produced in
``full`` mode on a quiet machine while CI runs the smaller smoke workload
on noisy shared runners, so floors are fractions of the committed numbers,
never exact matches.

Usage::

    python benchmarks/check_regression.py \
        --baseline BENCH_engine.json \
        --current bench-artifacts/BENCH_engine.json

    python benchmarks/check_regression.py --kind service \
        --baseline BENCH_service.json \
        --current bench-artifacts/BENCH_service.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Fraction of the committed speedup the fresh run must retain.
DEFAULT_TOLERANCE = 0.25

#: Absolute floor: regardless of the committed record, the fast path must
#: beat the legacy path by at least this factor on bench_e2.
DEFAULT_MIN_FLOOR = 1.5

#: Keep-alive vs close-per-request: persistent connections must at least
#: break even (a little slack for scheduling noise on shared runners).
DEFAULT_MIN_KEEPALIVE_RATIO = 0.9

#: Absolute keep-alive throughput floor in requests/second.  Deliberately
#: tiny: CI smoke runs a fraction of the committed full-mode load on shared
#: hardware, so this only catches a server that stopped serving.
DEFAULT_MIN_RPS_FLOOR = 10.0

#: Fraction of the committed keep-alive throughput the fresh run must
#: retain.  Looser than the engine tolerance: throughput is wall-clock on
#: shared runners and the smoke load differs from the committed full run.
DEFAULT_SERVICE_TOLERANCE = 0.1

#: Maximum percent the witness-certificate opt-in may slow the seeded
#: batch down.  The design target is <5% (pinned by the committed
#: full-mode record); CI smoke batches finish in fractions of a second on
#: shared runners, so the gate leaves headroom for scheduling jitter and
#: only catches certificate recording growing a real per-job cost.
DEFAULT_MAX_CERTIFY_OVERHEAD_PERCENT = 25.0

#: Maximum percent a clean run may slow down with a retry policy armed.
#: The design target is <2%; CI smoke batches are tiny (seconds of work on
#: shared runners), so the gate only catches the policy growing a real
#: per-job cost, not scheduling jitter.
DEFAULT_MAX_RETRY_OVERHEAD_PERCENT = 25.0

#: Absolute fleet warm-serve throughput floor in jobs/second.  The warm
#: path is three HTTP hops per job (client -> coordinator -> keyspace), so
#: this only catches the distributed tier falling over, not noise.
DEFAULT_MIN_CLUSTER_JPS_FLOOR = 5.0

#: Fraction of the committed fleet warm-serve throughput the fresh run
#: must retain.  As loose as the front-door tolerance and for the same
#: reason: wall-clock over real sockets on shared CI runners.
DEFAULT_CLUSTER_TOLERANCE = 0.1


class GuardDataError(Exception):
    """A benchmark record cannot answer the guarded question."""


def _speedup_of(record: dict, record_name: str, workload: str) -> float:
    """The recorded speedup for ``workload``, or a hard, explicit failure.

    A missing or renamed workload key must never pass silently: a guard
    that cannot find its bench is a guard that checks nothing, so this is
    a configuration failure (exit 2), distinct from a measured regression.
    """
    engine = record.get("engine")
    if not isinstance(engine, dict) or not engine:
        raise GuardDataError(
            f"{record_name} record has no 'engine' section; was the engine "
            "phase skipped when it was produced?"
        )
    if workload not in engine:
        raise GuardDataError(
            f"{record_name} record has no entry for workload {workload!r}; "
            f"available: {', '.join(sorted(engine))}. If the bench was "
            "renamed, update --workload and the committed baseline together."
        )
    entry = engine[workload]
    if not isinstance(entry, dict):
        raise GuardDataError(
            f"{record_name} record entry for {workload!r} is not an object "
            f"(got {entry!r})"
        )
    speedup = entry.get("speedup")
    if not isinstance(speedup, (int, float)):
        raise GuardDataError(
            f"{record_name} record has no usable speedup for {workload!r} "
            f"(got {speedup!r})"
        )
    return speedup


def _certify_of(record: dict, record_name: str) -> dict:
    """The certify section of an engine record, or an explicit failure."""
    certify = record.get("certify")
    if not isinstance(certify, dict):
        raise GuardDataError(
            f"{record_name} record has no 'certify' entry; it predates the "
            "witness-certificate phase -- regenerate it with "
            "benchmarks/run_all.py"
        )
    overhead = certify.get("certificate_overhead_percent")
    if not isinstance(overhead, (int, float)):
        raise GuardDataError(
            f"{record_name} record has no usable "
            f"certificate_overhead_percent (got {overhead!r})"
        )
    if not certify.get("nonempty"):
        raise GuardDataError(
            f"{record_name} certify phase validated no certificates "
            f"(nonempty is {certify.get('nonempty')!r}) -- the seeded "
            "workload must produce nonempty verdicts for the gate to mean "
            "anything"
        )
    return certify


def check(
    baseline_path: Path,
    current_path: Path,
    workload: str = "bench_e2",
    tolerance: float = DEFAULT_TOLERANCE,
    min_floor: float = DEFAULT_MIN_FLOOR,
    max_certify_overhead: float = DEFAULT_MAX_CERTIFY_OVERHEAD_PERCENT,
) -> int:
    try:
        baseline = json.loads(baseline_path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"GUARD FAILURE: cannot read baseline {baseline_path}: {error}", file=sys.stderr)
        return 2
    try:
        current = json.loads(current_path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"GUARD FAILURE: cannot read current record {current_path}: {error}", file=sys.stderr)
        return 2
    try:
        committed = _speedup_of(baseline, "baseline", workload)
        fresh = _speedup_of(current, "current", workload)
        fresh_certify = _certify_of(current, "current")
    except GuardDataError as error:
        print(f"GUARD FAILURE: {error}", file=sys.stderr)
        return 2
    floor = max(min_floor, committed * tolerance)
    print(
        f"{workload}: committed {committed:.2f}x "
        f"({baseline.get('mode', '?')} mode), fresh {fresh:.2f}x "
        f"({current.get('mode', '?')} mode), floor {floor:.2f}x"
    )
    failed = False
    if fresh < floor:
        print(
            f"REGRESSION: {workload} fast-path speedup {fresh:.2f}x dropped "
            f"below the floor {floor:.2f}x "
            f"(committed {committed:.2f}x, tolerance {tolerance})",
            file=sys.stderr,
        )
        failed = True
    certify_overhead = fresh_certify["certificate_overhead_percent"]
    print(
        f"certify: opt-in overhead {certify_overhead:+.1f}% over "
        f"{fresh_certify['nonempty']} nonempty verdicts "
        f"(allowed <= {max_certify_overhead:.0f}%)"
    )
    if certify_overhead > max_certify_overhead:
        print(
            f"REGRESSION: recording witness certificates slows the seeded "
            f"batch by {certify_overhead:.1f}% "
            f"(allowed <= {max_certify_overhead:.0f}%)",
            file=sys.stderr,
        )
        failed = True
    if failed:
        return 1
    print("benchmark regression guard passed")
    return 0


def _load_test_of(record: dict, record_name: str) -> dict:
    """The load-test section of a service record, or an explicit failure."""
    service = record.get("service")
    if not isinstance(service, dict) or not service:
        raise GuardDataError(
            f"{record_name} record has no 'service' section; was the service "
            "phase skipped when it was produced?"
        )
    load_test = service.get("load_test")
    if not isinstance(load_test, dict):
        raise GuardDataError(
            f"{record_name} record has no 'load_test' entry; it predates the "
            "front-door load test -- regenerate it with benchmarks/run_all.py"
        )
    return load_test


def _throughput_of(load_test: dict, record_name: str, mode: str) -> float:
    entry = load_test.get(mode)
    throughput = entry.get("throughput_rps") if isinstance(entry, dict) else None
    if not isinstance(throughput, (int, float)) or throughput <= 0:
        raise GuardDataError(
            f"{record_name} load test has no usable throughput for {mode!r} "
            f"(got {throughput!r})"
        )
    return throughput


def _retry_overhead_of(record: dict, record_name: str) -> float:
    """The clean-run retry-policy overhead percent, or an explicit failure."""
    service = record.get("service")
    if not isinstance(service, dict) or not service:
        raise GuardDataError(
            f"{record_name} record has no 'service' section; was the service "
            "phase skipped when it was produced?"
        )
    fault_tolerance = service.get("fault_tolerance")
    if not isinstance(fault_tolerance, dict):
        raise GuardDataError(
            f"{record_name} record has no 'fault_tolerance' entry; it "
            "predates the fault-tolerance phase -- regenerate it with "
            "benchmarks/run_all.py"
        )
    overhead = fault_tolerance.get("retry_overhead_percent")
    if not isinstance(overhead, (int, float)):
        raise GuardDataError(
            f"{record_name} record has no usable retry_overhead_percent "
            f"(got {overhead!r})"
        )
    return overhead


def _cluster_of(record: dict, record_name: str) -> dict:
    """The cluster section of a service record, or an explicit failure."""
    service = record.get("service")
    if not isinstance(service, dict) or not service:
        raise GuardDataError(
            f"{record_name} record has no 'service' section; was the service "
            "phase skipped when it was produced?"
        )
    cluster = service.get("cluster")
    if not isinstance(cluster, dict):
        raise GuardDataError(
            f"{record_name} record has no 'cluster' entry; it predates the "
            "distributed verdict cluster -- regenerate it with "
            "benchmarks/run_all.py"
        )
    return cluster


def _cluster_throughput_of(cluster: dict, record_name: str) -> float:
    throughput = cluster.get("warm_throughput_jps")
    if not isinstance(throughput, (int, float)) or throughput <= 0:
        raise GuardDataError(
            f"{record_name} cluster phase has no usable warm_throughput_jps "
            f"(got {throughput!r})"
        )
    if cluster.get("verdicts_match_serial") is not True:
        raise GuardDataError(
            f"{record_name} cluster phase did not assert verdict parity with "
            "a serial run (verdicts_match_serial is "
            f"{cluster.get('verdicts_match_serial')!r})"
        )
    return throughput


def check_service(
    baseline_path: Path,
    current_path: Path,
    tolerance: float = DEFAULT_SERVICE_TOLERANCE,
    min_rps_floor: float = DEFAULT_MIN_RPS_FLOOR,
    min_ratio: float = DEFAULT_MIN_KEEPALIVE_RATIO,
    max_retry_overhead: float = DEFAULT_MAX_RETRY_OVERHEAD_PERCENT,
    min_cluster_jps_floor: float = DEFAULT_MIN_CLUSTER_JPS_FLOOR,
    cluster_tolerance: float = DEFAULT_CLUSTER_TOLERANCE,
) -> int:
    try:
        baseline = json.loads(baseline_path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"GUARD FAILURE: cannot read baseline {baseline_path}: {error}", file=sys.stderr)
        return 2
    try:
        current = json.loads(current_path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"GUARD FAILURE: cannot read current record {current_path}: {error}", file=sys.stderr)
        return 2
    try:
        committed = _throughput_of(_load_test_of(baseline, "baseline"), "baseline", "keepalive")
        fresh_load = _load_test_of(current, "current")
        fresh_keepalive = _throughput_of(fresh_load, "current", "keepalive")
        fresh_close = _throughput_of(fresh_load, "current", "close_per_request")
        fresh_overhead = _retry_overhead_of(current, "current")
        committed_cluster = _cluster_throughput_of(
            _cluster_of(baseline, "baseline"), "baseline"
        )
        fresh_cluster = _cluster_throughput_of(
            _cluster_of(current, "current"), "current"
        )
    except GuardDataError as error:
        print(f"GUARD FAILURE: {error}", file=sys.stderr)
        return 2
    ratio = fresh_keepalive / fresh_close
    floor = max(min_rps_floor, committed * tolerance)
    print(
        f"front-door load test: committed keepalive {committed:.0f} rps "
        f"({baseline.get('mode', '?')} mode), fresh keepalive "
        f"{fresh_keepalive:.0f} rps / close {fresh_close:.0f} rps "
        f"({current.get('mode', '?')} mode), ratio {ratio:.2f}x, "
        f"floor {floor:.0f} rps"
    )
    failed = False
    if ratio < min_ratio:
        print(
            f"REGRESSION: keep-alive throughput is {ratio:.2f}x the "
            f"close-per-request baseline (required >= {min_ratio})",
            file=sys.stderr,
        )
        failed = True
    if fresh_keepalive < floor:
        print(
            f"REGRESSION: keep-alive throughput {fresh_keepalive:.0f} rps "
            f"dropped below the floor {floor:.0f} rps "
            f"(committed {committed:.0f} rps, tolerance {tolerance})",
            file=sys.stderr,
        )
        failed = True
    print(
        f"fault tolerance: retry-armed clean-run overhead "
        f"{fresh_overhead:+.1f}% (allowed <= {max_retry_overhead:.0f}%)"
    )
    if fresh_overhead > max_retry_overhead:
        print(
            f"REGRESSION: arming the retry policy slows a clean run by "
            f"{fresh_overhead:.1f}% (allowed <= {max_retry_overhead:.0f}%)",
            file=sys.stderr,
        )
        failed = True
    cluster_floor = max(min_cluster_jps_floor, committed_cluster * cluster_tolerance)
    print(
        f"cluster: committed fleet warm-serve {committed_cluster:.0f} jobs/s "
        f"({baseline.get('mode', '?')} mode), fresh {fresh_cluster:.0f} jobs/s "
        f"({current.get('mode', '?')} mode), floor {cluster_floor:.0f} jobs/s"
    )
    if fresh_cluster < cluster_floor:
        print(
            f"REGRESSION: fleet warm-serve throughput {fresh_cluster:.0f} "
            f"jobs/s dropped below the floor {cluster_floor:.0f} jobs/s "
            f"(committed {committed_cluster:.0f} jobs/s, tolerance "
            f"{cluster_tolerance})",
            file=sys.stderr,
        )
        failed = True
    if failed:
        return 1
    print("service regression guard passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--kind", choices=["engine", "service"], default="engine",
                        help="which record to gate (default: engine)")
    parser.add_argument("--baseline", type=Path, required=True,
                        help="committed BENCH_engine.json / BENCH_service.json")
    parser.add_argument("--current", type=Path, required=True,
                        help="freshly produced record of the same kind")
    parser.add_argument("--workload", default="bench_e2",
                        help="gated engine workload (default: bench_e2)")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="fraction of the committed number to require")
    parser.add_argument("--min-floor", type=float, default=DEFAULT_MIN_FLOOR,
                        help="absolute minimum acceptable engine speedup")
    parser.add_argument("--max-certify-overhead", type=float,
                        default=DEFAULT_MAX_CERTIFY_OVERHEAD_PERCENT,
                        help="maximum seeded-batch slowdown percent with "
                        "certificate recording on (engine)")
    parser.add_argument("--min-rps-floor", type=float, default=DEFAULT_MIN_RPS_FLOOR,
                        help="absolute minimum keep-alive throughput (service)")
    parser.add_argument("--min-ratio", type=float, default=DEFAULT_MIN_KEEPALIVE_RATIO,
                        help="minimum keepalive/close throughput ratio (service)")
    parser.add_argument("--max-retry-overhead", type=float,
                        default=DEFAULT_MAX_RETRY_OVERHEAD_PERCENT,
                        help="maximum clean-run slowdown percent with a retry "
                        "policy armed (service)")
    parser.add_argument("--min-cluster-jps-floor", type=float,
                        default=DEFAULT_MIN_CLUSTER_JPS_FLOOR,
                        help="absolute minimum fleet warm-serve throughput in "
                        "jobs/second (service)")
    parser.add_argument("--cluster-tolerance", type=float,
                        default=DEFAULT_CLUSTER_TOLERANCE,
                        help="fraction of the committed fleet warm-serve "
                        "throughput to require (service)")
    args = parser.parse_args(argv)
    if args.kind == "service":
        tolerance = args.tolerance if args.tolerance is not None else DEFAULT_SERVICE_TOLERANCE
        return check_service(
            args.baseline, args.current, tolerance, args.min_rps_floor,
            args.min_ratio, args.max_retry_overhead,
            args.min_cluster_jps_floor, args.cluster_tolerance,
        )
    tolerance = args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
    return check(
        args.baseline, args.current, args.workload, tolerance, args.min_floor,
        args.max_certify_overhead,
    )


if __name__ == "__main__":
    raise SystemExit(main())
