#!/usr/bin/env python
"""Benchmark regression guard: fail CI when the bench_e2 speedup collapses.

Compares a freshly produced ``BENCH_engine.json`` (typically the ``--smoke``
variant from the CI benchmark job) against the committed record.  The guard
is tolerance-based: the committed record is produced in ``full`` mode on a
quiet machine while CI runs the smaller smoke workload on noisy shared
runners, so the floor is a fraction of the committed speedup, never an exact
match.  The check fails when

    current_speedup < max(min_floor, committed_speedup * tolerance)

for the gated workload (``bench_e2``, the HOM scaling instance the compiled
transition plans target).

Usage::

    python benchmarks/check_regression.py \
        --baseline BENCH_engine.json \
        --current bench-artifacts/BENCH_engine.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Fraction of the committed speedup the fresh run must retain.
DEFAULT_TOLERANCE = 0.25

#: Absolute floor: regardless of the committed record, the fast path must
#: beat the legacy path by at least this factor on bench_e2.
DEFAULT_MIN_FLOOR = 1.5


def check(
    baseline_path: Path,
    current_path: Path,
    workload: str = "bench_e2",
    tolerance: float = DEFAULT_TOLERANCE,
    min_floor: float = DEFAULT_MIN_FLOOR,
) -> int:
    baseline = json.loads(baseline_path.read_text())
    current = json.loads(current_path.read_text())
    try:
        committed = baseline["engine"][workload]["speedup"]
    except KeyError:
        print(f"baseline record has no speedup for {workload!r}", file=sys.stderr)
        return 2
    try:
        fresh = current["engine"][workload]["speedup"]
    except KeyError:
        print(f"current record has no speedup for {workload!r}", file=sys.stderr)
        return 2
    if committed is None or fresh is None:
        print("speedup missing from one of the records", file=sys.stderr)
        return 2
    floor = max(min_floor, committed * tolerance)
    print(
        f"{workload}: committed {committed:.2f}x "
        f"({baseline.get('mode', '?')} mode), fresh {fresh:.2f}x "
        f"({current.get('mode', '?')} mode), floor {floor:.2f}x"
    )
    if fresh < floor:
        print(
            f"REGRESSION: {workload} fast-path speedup {fresh:.2f}x dropped "
            f"below the floor {floor:.2f}x "
            f"(committed {committed:.2f}x, tolerance {tolerance})",
            file=sys.stderr,
        )
        return 1
    print("benchmark regression guard passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--baseline", type=Path, required=True,
                        help="committed BENCH_engine.json")
    parser.add_argument("--current", type=Path, required=True,
                        help="freshly produced BENCH_engine.json")
    parser.add_argument("--workload", default="bench_e2",
                        help="gated engine workload (default: bench_e2)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="fraction of the committed speedup to require")
    parser.add_argument("--min-floor", type=float, default=DEFAULT_MIN_FLOOR,
                        help="absolute minimum acceptable speedup")
    args = parser.parse_args(argv)
    return check(
        args.baseline, args.current, args.workload, args.tolerance, args.min_floor
    )


if __name__ == "__main__":
    raise SystemExit(main())
