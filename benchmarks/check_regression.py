#!/usr/bin/env python
"""Benchmark regression guard: fail CI when the bench_e2 speedup collapses.

Compares a freshly produced ``BENCH_engine.json`` (typically the ``--smoke``
variant from the CI benchmark job) against the committed record.  The guard
is tolerance-based: the committed record is produced in ``full`` mode on a
quiet machine while CI runs the smaller smoke workload on noisy shared
runners, so the floor is a fraction of the committed speedup, never an exact
match.  The check fails when

    current_speedup < max(min_floor, committed_speedup * tolerance)

for the gated workload (``bench_e2``, the HOM scaling instance the compiled
transition plans target).

Usage::

    python benchmarks/check_regression.py \
        --baseline BENCH_engine.json \
        --current bench-artifacts/BENCH_engine.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Fraction of the committed speedup the fresh run must retain.
DEFAULT_TOLERANCE = 0.25

#: Absolute floor: regardless of the committed record, the fast path must
#: beat the legacy path by at least this factor on bench_e2.
DEFAULT_MIN_FLOOR = 1.5


class GuardDataError(Exception):
    """A benchmark record cannot answer the guarded question."""


def _speedup_of(record: dict, record_name: str, workload: str) -> float:
    """The recorded speedup for ``workload``, or a hard, explicit failure.

    A missing or renamed workload key must never pass silently: a guard
    that cannot find its bench is a guard that checks nothing, so this is
    a configuration failure (exit 2), distinct from a measured regression.
    """
    engine = record.get("engine")
    if not isinstance(engine, dict) or not engine:
        raise GuardDataError(
            f"{record_name} record has no 'engine' section; was the engine "
            "phase skipped when it was produced?"
        )
    if workload not in engine:
        raise GuardDataError(
            f"{record_name} record has no entry for workload {workload!r}; "
            f"available: {', '.join(sorted(engine))}. If the bench was "
            "renamed, update --workload and the committed baseline together."
        )
    entry = engine[workload]
    if not isinstance(entry, dict):
        raise GuardDataError(
            f"{record_name} record entry for {workload!r} is not an object "
            f"(got {entry!r})"
        )
    speedup = entry.get("speedup")
    if not isinstance(speedup, (int, float)):
        raise GuardDataError(
            f"{record_name} record has no usable speedup for {workload!r} "
            f"(got {speedup!r})"
        )
    return speedup


def check(
    baseline_path: Path,
    current_path: Path,
    workload: str = "bench_e2",
    tolerance: float = DEFAULT_TOLERANCE,
    min_floor: float = DEFAULT_MIN_FLOOR,
) -> int:
    try:
        baseline = json.loads(baseline_path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"GUARD FAILURE: cannot read baseline {baseline_path}: {error}", file=sys.stderr)
        return 2
    try:
        current = json.loads(current_path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"GUARD FAILURE: cannot read current record {current_path}: {error}", file=sys.stderr)
        return 2
    try:
        committed = _speedup_of(baseline, "baseline", workload)
        fresh = _speedup_of(current, "current", workload)
    except GuardDataError as error:
        print(f"GUARD FAILURE: {error}", file=sys.stderr)
        return 2
    floor = max(min_floor, committed * tolerance)
    print(
        f"{workload}: committed {committed:.2f}x "
        f"({baseline.get('mode', '?')} mode), fresh {fresh:.2f}x "
        f"({current.get('mode', '?')} mode), floor {floor:.2f}x"
    )
    if fresh < floor:
        print(
            f"REGRESSION: {workload} fast-path speedup {fresh:.2f}x dropped "
            f"below the floor {floor:.2f}x "
            f"(committed {committed:.2f}x, tolerance {tolerance})",
            file=sys.stderr,
        )
        return 1
    print("benchmark regression guard passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--baseline", type=Path, required=True,
                        help="committed BENCH_engine.json")
    parser.add_argument("--current", type=Path, required=True,
                        help="freshly produced BENCH_engine.json")
    parser.add_argument("--workload", default="bench_e2",
                        help="gated engine workload (default: bench_e2)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="fraction of the committed speedup to require")
    parser.add_argument("--min-floor", type=float, default=DEFAULT_MIN_FLOOR,
                        help="absolute minimum acceptable speedup")
    args = parser.parse_args(argv)
    return check(
        args.baseline, args.current, args.workload, args.tolerance, args.min_floor
    )


if __name__ == "__main__":
    raise SystemExit(main())
