"""A small library of ready-made database-driven systems used throughout.

These are the systems that appear in the paper (Example 1's odd-red-cycle
tracer, the XML navigation system of the introduction, the counter-machine
encodings of Section 6) plus a few natural workloads used by the examples and
benchmarks (a data-centric order-processing workflow, reachability tracers).
Each builder returns a fully validated :class:`DatabaseDrivenSystem`.
"""

from __future__ import annotations

from typing import Sequence

from repro.logic.schema import Schema
from repro.relational.csp import COLORED_GRAPH_SCHEMA, GRAPH_SCHEMA
from repro.systems.dds import DatabaseDrivenSystem


def odd_red_cycle_system(schema: Schema = COLORED_GRAPH_SCHEMA) -> DatabaseDrivenSystem:
    """Example 1: accepting runs trace odd-length cycles of red nodes.

    The system alternates between states ``q0`` and ``q1``, each time moving
    register ``y`` along an edge to a red node while register ``x`` stays
    put; entering and leaving requires ``x = y``, so an accepting run closes
    a red cycle whose length is odd because it ends in ``q1``.
    """
    move = "x_old = x_new & E(y_old, y_new) & red(y_new)"
    stay = "x_old = x_new & x_new = y_old & y_old = y_new"
    return DatabaseDrivenSystem.build(
        schema=schema,
        registers=["x", "y"],
        states=["start", "q0", "q1", "end"],
        initial="start",
        accepting="end",
        transitions=[
            ("start", stay, "q0"),
            ("q0", move, "q1"),
            ("q1", move, "q0"),
            ("q1", stay, "end"),
        ],
    )


def red_path_system(length: int, schema: Schema = COLORED_GRAPH_SCHEMA) -> DatabaseDrivenSystem:
    """Accepting runs trace a directed path of ``length`` red edges.

    A simple scalable family used by the benchmarks: the number of control
    states grows linearly with ``length`` while the register count stays at
    one, so the size of the abstract configuration space isolates the effect
    of control-state growth (the ``log(n)`` factor of Theorem 5).
    """
    states = ["start"] + [f"step_{i}" for i in range(length + 1)]
    transitions = [("start", "x_old = x_new & red(x_new)", "step_0")]
    for i in range(length):
        transitions.append((f"step_{i}", "E(x_old, x_new) & red(x_new)", f"step_{i + 1}"))
    return DatabaseDrivenSystem.build(
        schema=schema,
        registers=["x"],
        states=states,
        initial="start",
        accepting=f"step_{length}",
        transitions=transitions,
    )


def self_loop_required_system(schema: Schema = GRAPH_SCHEMA) -> DatabaseDrivenSystem:
    """A two-step system whose second guard needs an edge guessed at seed time.

    Step one only moves the register; step two requires a self-loop on the
    element chosen at step one.  It exercises the completeness subtlety of
    the small-configuration search: relational structure on elements must be
    guessed when the elements first appear, not when a guard first needs it.
    """
    return DatabaseDrivenSystem.build(
        schema=schema,
        registers=["x"],
        states=["a", "b", "c"],
        initial="a",
        accepting="c",
        transitions=[("a", "x_old = x_new", "b"), ("b", "x_old = x_new & E(x_old, x_new)", "c")],
    )


def triangle_system(schema: Schema = GRAPH_SCHEMA) -> DatabaseDrivenSystem:
    """Accepting runs require a directed triangle in the database.

    Nonempty over all graphs, empty over HOM(K_2) (bipartite graphs have no
    triangle) -- one of the sanity checks of Theorem 4.
    """
    return DatabaseDrivenSystem.build(
        schema=schema,
        registers=["x", "y", "z"],
        states=["init", "picked", "done"],
        initial="init",
        accepting="done",
        transitions=[
            (
                "init",
                "x_old = x_new & y_old = y_new & z_old = z_new & "
                "E(x_new, y_new) & E(y_new, z_new) & E(z_new, x_new)",
                "picked",
            ),
            ("picked", "x_old = x_new & y_old = y_new & z_old = z_new", "done"),
        ],
    )


def clique_system(size: int, schema: Schema = GRAPH_SCHEMA) -> DatabaseDrivenSystem:
    """Accepting runs require a directed ``size``-clique to be discovered edge by edge.

    The system keeps one register per clique vertex and adds vertices one at
    a time, each time checking edges in both directions against all
    previously chosen vertices.  Nonempty over all graphs; empty over
    HOM(K_n) whenever ``size > n``.  Used by the scaling benchmarks.
    """
    registers = [f"v{i}" for i in range(size)]
    states = ["init"] + [f"have_{i}" for i in range(1, size + 1)] + ["done"]
    keep_all = " & ".join(f"{r}_old = {r}_new" for r in registers)
    transitions = [("init", keep_all.replace("_old = ", "_old = ").__str__(), "have_1")]
    transitions = [("init", keep_all, "have_1")]
    for i in range(1, size):
        edge_checks = []
        for j in range(i):
            edge_checks.append(f"E(v{j}_new, v{i}_new)")
            edge_checks.append(f"E(v{i}_new, v{j}_new)")
        guard = " & ".join(
            [keep_all.replace(f"v{i}_old = v{i}_new", f"v{i}_new = v{i}_new")] + edge_checks
        )
        transitions.append((f"have_{i}", guard, f"have_{i + 1}"))
    transitions.append((f"have_{size}", keep_all, "done"))
    return DatabaseDrivenSystem.build(
        schema=schema,
        registers=registers,
        states=states,
        initial="init",
        accepting="done",
        transitions=transitions,
    )


def order_workflow_system() -> DatabaseDrivenSystem:
    """A miniature data-centric business process (the motivation of Section 1).

    The database holds a catalogue: ``offered(p)`` marks products that are on
    offer, ``requires(p, q)`` says product ``p`` requires accessory ``q`` and
    ``conflict(p, q)`` marks incompatible pairs.  The workflow picks a main
    product, adds an accessory required by it, checks compatibility, and
    ships.  Emptiness over HOM templates answers questions such as "can the
    workflow ever ship an order under a catalogue policy?".
    """
    schema = Schema.relational(offered=1, requires=2, conflict=2)
    keep = "main_old = main_new & acc_old = acc_new"
    return DatabaseDrivenSystem.build(
        schema=schema,
        registers=["main", "acc"],
        states=["browse", "picked", "accessorised", "checked", "shipped"],
        initial="browse",
        accepting="shipped",
        transitions=[
            ("browse", "main_new = acc_new & offered(main_new)", "picked"),
            ("picked", "main_old = main_new & requires(main_old, acc_new)", "accessorised"),
            ("accessorised", keep + " & !(conflict(main_old, acc_old))", "checked"),
            ("checked", keep, "shipped"),
        ],
    )


def register_swap_system(
    registers: Sequence[str] = ("x", "y"), schema: Schema = GRAPH_SCHEMA
) -> DatabaseDrivenSystem:
    """A tiny two-state system that swaps two registers along an edge forever."""
    x, y = registers
    return DatabaseDrivenSystem.build(
        schema=schema,
        registers=list(registers),
        states=["p", "q"],
        initial="p",
        accepting="q",
        transitions=[
            ("p", f"E({x}_old, {y}_old) & {x}_new = {y}_old & {y}_new = {x}_old", "q"),
            ("q", f"E({x}_old, {y}_old) & {x}_new = {y}_old & {y}_new = {x}_old", "p"),
        ],
    )
