"""Pluggable exploration strategies for the emptiness engine.

The decision procedure of Theorem 5 is agnostic to the order in which small
configurations are explored: soundness comes from witness re-validation and
completeness from the abstraction-key pruning, neither of which depends on
the frontier discipline.  The engine therefore delegates frontier management
to a :class:`SearchStrategy`:

* :class:`BreadthFirstStrategy` -- the seed engine's behaviour; finds a
  shortest accepting run and gives the most predictable memory profile;
* :class:`DepthFirstStrategy` -- commits to one witness-growth path at a
  time; often reaches an accepting state with far fewer explored
  configurations on nonempty instances;
* :class:`BestFirstStrategy` -- a priority queue scored by the size of the
  abstraction key, preferring small register-generated substructures; this
  biases the search towards configurations with few distinguishable
  elements, which is where accepting runs of the paper's example systems
  tend to live.

All strategies are exhaustive: on empty instances each eventually drains the
same abstract configuration space, so the three verdicts always agree (a
property pinned down by ``tests/test_search_strategies.py`` and re-checked
by the benchmark runner).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Iterable, List, Optional, Protocol, Tuple, Union

from repro.errors import SolverError


class SearchStrategy(Protocol):
    """Frontier discipline used by :class:`~repro.fraisse.engine.EmptinessSolver`.

    ``push`` receives the engine's search node together with a numeric score
    (the size of the node's abstraction key); ``pop`` returns the next node
    to expand.  ``clear`` empties the frontier (used when a goal is found).
    ``needs_scores`` tells the engine whether to compute scores at all --
    order-insensitive frontiers set it False so the hot enqueue path skips
    the key walk.
    """

    name: str
    needs_scores: bool

    def push(self, node: Any, score: int) -> None: ...

    def pop(self) -> Any: ...

    def clear(self) -> None: ...

    def __len__(self) -> int: ...


class BreadthFirstStrategy:
    """FIFO frontier: explore configurations in discovery order."""

    name = "bfs"
    needs_scores = False

    def __init__(self) -> None:
        self._queue: deque = deque()

    def push(self, node: Any, score: int) -> None:
        self._queue.append(node)

    def pop(self) -> Any:
        return self._queue.popleft()

    def clear(self) -> None:
        self._queue.clear()

    def __len__(self) -> int:
        return len(self._queue)


class DepthFirstStrategy:
    """LIFO frontier: follow one growth path of the witness at a time."""

    name = "dfs"
    needs_scores = False

    def __init__(self) -> None:
        self._stack: List[Any] = []

    def push(self, node: Any, score: int) -> None:
        self._stack.append(node)

    def pop(self) -> Any:
        return self._stack.pop()

    def clear(self) -> None:
        self._stack.clear()

    def __len__(self) -> int:
        return len(self._stack)


class BestFirstStrategy:
    """Priority frontier ordered by abstraction-key size (small keys first).

    Ties break by insertion order, so with constant scores this degrades
    gracefully to breadth-first exploration.
    """

    name = "priority"
    needs_scores = True

    def __init__(self, score_of: Optional[Callable[[Any], int]] = None) -> None:
        self._heap: List[Tuple[int, int, Any]] = []
        self._counter = 0
        self._score_of = score_of

    def push(self, node: Any, score: int) -> None:
        if self._score_of is not None:
            score = self._score_of(node)
        heapq.heappush(self._heap, (score, self._counter, node))
        self._counter += 1

    def pop(self) -> Any:
        return heapq.heappop(self._heap)[2]

    def clear(self) -> None:
        self._heap.clear()

    def __len__(self) -> int:
        return len(self._heap)


#: Specs accepted by :func:`make_strategy`: a name, a ready instance, or a
#: zero-argument factory.
StrategySpec = Union[str, SearchStrategy, Callable[[], SearchStrategy]]

_BUILTIN_STRATEGIES = {
    "bfs": BreadthFirstStrategy,
    "breadth-first": BreadthFirstStrategy,
    "dfs": DepthFirstStrategy,
    "depth-first": DepthFirstStrategy,
    "priority": BestFirstStrategy,
    "best-first": BestFirstStrategy,
}

STRATEGY_NAMES: Tuple[str, ...] = ("bfs", "dfs", "priority")


def make_strategy(spec: StrategySpec) -> SearchStrategy:
    """Resolve a strategy spec into a frontier instance.

    Names and factories produce a fresh instance per call; a ready-made
    instance is returned as-is, so the engine empties whatever frontier it
    receives before starting a search.
    """
    if isinstance(spec, str):
        try:
            factory = _BUILTIN_STRATEGIES[spec.lower()]
        except KeyError:
            raise SolverError(
                f"unknown search strategy {spec!r}; "
                f"available: {', '.join(sorted(_BUILTIN_STRATEGIES))}"
            ) from None
        return factory()
    if isinstance(spec, type):
        return spec()
    if hasattr(spec, "push") and hasattr(spec, "pop"):
        return spec  # a ready-made (presumably empty) frontier
    if callable(spec):
        return spec()
    raise SolverError(f"cannot build a search strategy from {spec!r}")


def abstraction_key_score(key: Any, _depth: int = 0) -> int:
    """A cheap size estimate of an abstraction key, for best-first scoring.

    Counts the leaves of the (tuple/frozenset-shaped) key with a recursion
    cap; the exact number is irrelevant, only the relative order matters.
    """
    if _depth >= 4:
        return 1
    if isinstance(key, (tuple, frozenset, list)):
        return sum(abstraction_key_score(item, _depth + 1) for item in key) + 1
    return 1


def iter_strategy_names() -> Iterable[str]:
    """The canonical names of the built-in strategies."""
    return STRATEGY_NAMES
