"""The generic emptiness decision procedure (Theorem 5).

The engine explores the graph whose nodes are pairs ``(control state,
abstraction key)`` -- the paper's *small configurations* -- and whose edges
are the sub-transitions enumerated by a :class:`~repro.fraisse.base.DatabaseTheory`.
It differs from the paper's presentation in one (behaviour-preserving) way:
instead of a nondeterministic space-bounded walker it performs a
deterministic memoised search, carrying along a *cumulative concrete
witness* so that every positive answer comes with an actual database and an
actual accepting run that are re-validated against the semantics of
:mod:`repro.systems`.

The exploration order is pluggable (:mod:`repro.fraisse.search`): breadth
first, depth first, or best first by abstraction-key size.  Order never
affects the verdict -- soundness rests on witness re-validation and
completeness is exactly the paper's argument: closure under embeddings and
amalgamation of the underlying class guarantees that pruning revisited
abstraction keys never loses reachable accepting states, whichever frontier
discipline drains the (finite) abstract space.

Abstraction keys are canonical forms and therefore cacheable: the engine
memoises them per configuration (see :mod:`repro.perf` for the global cache
switch used to measure the legacy, cache-free path).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.errors import SolverError
from repro.fraisse.base import DatabaseTheory, TheoryConfiguration, guard_holds
from repro.fraisse.plans import PlanSet, compile_plans
from repro.fraisse.search import StrategySpec, abstraction_key_score, make_strategy
from repro.logic.structures import Structure
from repro.perf import BoundedCache, caches_enabled
from repro.systems.dds import DatabaseDrivenSystem, Run, Transition
from repro.telemetry import TraceRecorder


@dataclass
class SearchStatistics:
    """Instrumentation collected during a solver invocation."""

    configurations_explored: int = 0
    configurations_enqueued: int = 0
    candidates_generated: int = 0
    guard_evaluations: int = 0
    guard_rejections: int = 0
    duplicate_keys_pruned: int = 0
    max_frontier_size: int = 0
    elapsed_seconds: float = 0.0
    largest_witness_size: int = 0
    key_cache_hits: int = 0
    key_cache_misses: int = 0
    strategy: str = "bfs"
    # Compiled-plan counters (zero on the legacy cache-free path, which
    # never consults plans).  ``plan_rejected_pre_materialization`` counts
    # candidates dropped before their successor database was built;
    # ``plan_compiled_guard_hits`` counts candidates whose compiled guard
    # made the authoritative full-database evaluation unnecessary.
    plan_rejected_pre_materialization: int = 0
    plan_compiled_guard_hits: int = 0
    plan_fallback_evaluations: int = 0
    plan_enumeration_pruned: int = 0
    plan_details: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        return {
            "configurations_explored": self.configurations_explored,
            "configurations_enqueued": self.configurations_enqueued,
            "candidates_generated": self.candidates_generated,
            "guard_evaluations": self.guard_evaluations,
            "guard_rejections": self.guard_rejections,
            "duplicate_keys_pruned": self.duplicate_keys_pruned,
            "max_frontier_size": self.max_frontier_size,
            "elapsed_seconds": self.elapsed_seconds,
            "largest_witness_size": self.largest_witness_size,
            "key_cache_hits": self.key_cache_hits,
            "key_cache_misses": self.key_cache_misses,
            "strategy": self.strategy,
            "plan_rejected_pre_materialization": self.plan_rejected_pre_materialization,
            "plan_compiled_guard_hits": self.plan_compiled_guard_hits,
            "plan_fallback_evaluations": self.plan_fallback_evaluations,
            "plan_enumeration_pruned": self.plan_enumeration_pruned,
            "plans": dict(self.plan_details),
        }


@dataclass
class EmptinessResult:
    """Outcome of an emptiness check.

    ``nonempty`` is True when an accepting run exists; in that case ``run``
    describes a concrete database of the class (``run.database``) and an
    accepting run driven by it, and ``evidence`` carries the theory's
    accepting evidence (see :meth:`~repro.fraisse.base.DatabaseTheory.certify`)
    from which :func:`repro.certify.build_certificate` assembles a replayable,
    engine-independent certificate.  ``exhausted`` is True when the whole
    abstract configuration space was explored (so a negative answer is
    definitive); it is False only if a resource limit interrupted the search.
    """

    nonempty: bool
    run: Optional[Run] = None
    exhausted: bool = True
    statistics: SearchStatistics = field(default_factory=SearchStatistics)
    evidence: Optional[Dict[str, Any]] = None

    @property
    def empty(self) -> bool:
        return not self.nonempty

    @property
    def witness_database(self) -> Optional[Structure]:
        """Deprecated accessor for the witness database; use ``run.database``.

        Slated for removal in 2.0: the witness now lives on the run (and, in
        serialized form, inside the certificate object).
        """
        warnings.warn(
            "EmptinessResult.witness_database is deprecated; use "
            "result.run.database (or the certificate object) instead. "
            "It will be removed in 2.0.",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.run.database if self.run is not None else None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.nonempty


@dataclass
class _SearchNode:
    state: str
    config: TheoryConfiguration
    parent: Optional["_SearchNode"]
    transition: Optional[Transition]
    depth: int


class EmptinessSolver:
    """Decides emptiness of database-driven systems over a database theory.

    Parameters
    ----------
    theory:
        The class of databases runs may be driven by.
    max_configurations:
        Safety cap on the number of abstract configurations explored.  The
        abstract space is finite for the decidable theories shipped with the
        library, so the default is simply a guard against pathological inputs;
        if the cap is hit the result is returned with ``exhausted=False``.
    verify_witnesses:
        When True (the default), every positive answer is re-validated by
        replaying the reconstructed run on the reconstructed database through
        :meth:`repro.systems.dds.DatabaseDrivenSystem.validate_run`.
    strategy:
        Exploration order: ``"bfs"`` (default, the seed engine's behaviour),
        ``"dfs"``, ``"priority"``, or any
        :class:`~repro.fraisse.search.SearchStrategy` factory.  The verdict
        is strategy-independent; only the discovered witness and the explored
        portion of the space vary.
    """

    def __init__(
        self,
        theory: DatabaseTheory,
        max_configurations: int = 200_000,
        verify_witnesses: bool = True,
        strategy: StrategySpec = "bfs",
    ) -> None:
        if max_configurations <= 0:
            raise SolverError("max_configurations must be positive")
        self._theory = theory
        self._max_configurations = max_configurations
        self._verify_witnesses = verify_witnesses
        self._strategy_spec = strategy
        self._key_cache = BoundedCache("engine_abstraction_keys")

    @property
    def theory(self) -> DatabaseTheory:
        return self._theory

    # -- abstraction-key memo --------------------------------------------------

    def _abstraction_key(self, config: TheoryConfiguration, stats: SearchStatistics) -> Hashable:
        """The theory's canonical key for ``config``, memoised per configuration.

        Configurations are immutable value objects, so the canonical form of
        the register-generated substructure can be computed once and reused
        whenever enumeration re-produces an equal configuration (which
        happens whenever different parents generate the same candidate).
        """
        if not caches_enabled():
            stats.key_cache_misses += 1
            return self._theory.abstraction_key(config)
        key = self._key_cache.get(config)
        if key is not None:
            stats.key_cache_hits += 1
            return key
        stats.key_cache_misses += 1
        key = self._theory.abstraction_key(config)
        self._key_cache.put(config, key)
        return key

    # -- main entry point ------------------------------------------------------

    def check(
        self, system: DatabaseDrivenSystem, trace: Optional[TraceRecorder] = None
    ) -> EmptinessResult:
        """Is there a database in the theory's class driving an accepting run?

        ``trace``, when given, records timed spans for the solver phases
        (plan compilation, per-transition drives, witness reconstruction)
        and frontier milestones; untraced runs only pay ``trace is None``
        predicates.
        """
        if not system.schema.is_subschema_of(self._theory.schema):
            raise SolverError(
                "the system's schema is not contained in the theory's schema: "
                f"{system.schema!r} vs {self._theory.schema!r}"
            )
        frontier = make_strategy(self._strategy_spec)
        # A spec may resolve to a caller-supplied instance; a previous check
        # that hit the configuration cap (or found a goal among the seeds)
        # can have left nodes behind, so always start from an empty frontier.
        frontier.clear()
        # bfs/dfs ignore scores; skip the per-node key walk for them.
        needs_scores = getattr(frontier, "needs_scores", True)
        stats = SearchStatistics(strategy=frontier.name)
        start_time = time.perf_counter()
        visited: Dict[Tuple[str, Hashable], int] = {}
        # Compiled transition plans drive the fast path; with caches disabled
        # the engine never consults plans and runs the legacy
        # materialize-then-evaluate loop below.
        if trace is None:
            plan_set: Optional[PlanSet] = (
                compile_plans(system, self._theory) if caches_enabled() else None
            )
        elif caches_enabled():
            with trace.span("compile_plans", "plan") as span_args:
                plan_set = compile_plans(system, self._theory)
                span_args["plans"] = len(plan_set)
        else:
            plan_set = None

        goal: Optional[_SearchNode] = None
        for state in sorted(system.initial_states):
            for config in self._theory.initial_configurations(system):
                stats.candidates_generated += 1
                key = (state, self._abstraction_key(config, stats))
                if key in visited:
                    stats.duplicate_keys_pruned += 1
                    continue
                visited[key] = len(visited)
                node = _SearchNode(state, config, parent=None, transition=None, depth=0)
                stats.configurations_enqueued += 1
                if system.is_accepting(state):
                    goal = node
                    break
                frontier.push(node, abstraction_key_score(key) if needs_scores else 0)
                stats.max_frontier_size = max(stats.max_frontier_size, len(frontier))
            if goal is not None:
                break

        while len(frontier) and goal is None:
            stats.max_frontier_size = max(stats.max_frontier_size, len(frontier))
            node = frontier.pop()
            stats.configurations_explored += 1
            if trace is not None:
                explored = stats.configurations_explored
                # Power-of-two milestones: O(log n) instants however long
                # the search runs, each carrying the live frontier size.
                if explored & (explored - 1) == 0:
                    trace.instant(
                        "frontier_milestone",
                        "search",
                        explored=explored,
                        frontier=len(frontier),
                        depth=node.depth,
                    )
            if stats.configurations_explored > self._max_configurations:
                stats.elapsed_seconds = time.perf_counter() - start_time
                self._snapshot_plan_statistics(plan_set, stats)
                return EmptinessResult(nonempty=False, exhausted=False, statistics=stats)
            for transition in system.transitions_from(node.state):
                if trace is not None:
                    drive_start = trace.now()
                    candidates_before = stats.candidates_generated
                    enqueued_before = stats.configurations_enqueued
                if plan_set is not None:
                    goal = self._drive_plan(
                        system,
                        node,
                        transition,
                        plan_set,
                        frontier,
                        needs_scores,
                        visited,
                        stats,
                    )
                else:
                    goal = self._drive_legacy(
                        system,
                        node,
                        transition,
                        frontier,
                        needs_scores,
                        visited,
                        stats,
                    )
                if trace is not None:
                    trace.add_span(
                        "drive",
                        "plan" if plan_set is not None else "legacy",
                        drive_start,
                        trace.now(),
                        {
                            "state": node.state,
                            "transition": str(transition),
                            "candidates": stats.candidates_generated - candidates_before,
                            "enqueued": stats.configurations_enqueued - enqueued_before,
                        },
                    )
                if goal is not None:
                    break

        stats.elapsed_seconds = time.perf_counter() - start_time
        self._snapshot_plan_statistics(plan_set, stats)
        if goal is None:
            return EmptinessResult(nonempty=False, exhausted=True, statistics=stats)

        if trace is None:
            run, evidence = self._reconstruct_run(system, goal)
            if self._verify_witnesses:
                system.validate_run(run)
        else:
            with trace.span("reconstruct_run", "witness") as span_args:
                run, evidence = self._reconstruct_run(system, goal)
                span_args["steps"] = len(run.steps)
            if self._verify_witnesses:
                with trace.span("validate_run", "witness"):
                    system.validate_run(run)
        return EmptinessResult(
            nonempty=True,
            run=run,
            exhausted=True,
            statistics=stats,
            evidence=evidence,
        )

    # -- inner candidate loops ---------------------------------------------------

    def _drive_plan(
        self,
        system: DatabaseDrivenSystem,
        node: _SearchNode,
        transition: Transition,
        plan_set: PlanSet,
        frontier,
        needs_scores: bool,
        visited: Dict[Tuple[str, Hashable], int],
        stats: SearchStatistics,
    ) -> Optional[_SearchNode]:
        """Fast path: drive one transition's compiled plan over deltas.

        Guards are checked against each candidate's delta before the
        successor database exists; only surviving candidates are
        materialized, and only undecided (UNKNOWN) guards fall back to the
        authoritative evaluation on the full database.
        """
        theory = self._theory
        plan = plan_set.plan_for(transition)
        plan_stats = plan.stats
        for delta in theory.enumerate_deltas(system, node.config, transition, plan):
            stats.candidates_generated += 1
            plan_stats.deltas_enumerated += 1
            status = delta.guard_status
            if status is False:
                plan_stats.rejected_pre_materialization += 1
                continue
            candidate = theory.apply_delta(node.config, delta)
            database: Optional[Structure] = None
            if status is True:
                plan_stats.compiled_guard_hits += 1
            else:
                plan_stats.fallback_evaluations += 1
                database = theory.database(candidate)
                stats.guard_evaluations += 1
                if not guard_holds(
                    database,
                    system.registers,
                    transition.guard,
                    node.config.valuation,
                    candidate.valuation,
                ):
                    stats.guard_rejections += 1
                    continue
            goal = self._admit_candidate(
                system,
                node,
                transition,
                candidate,
                database,
                frontier,
                needs_scores,
                visited,
                stats,
            )
            if goal is not None:
                return goal
        return None

    def _drive_legacy(
        self,
        system: DatabaseDrivenSystem,
        node: _SearchNode,
        transition: Transition,
        frontier,
        needs_scores: bool,
        visited: Dict[Tuple[str, Hashable], int],
        stats: SearchStatistics,
    ) -> Optional[_SearchNode]:
        """Legacy path (caches disabled): materialize and evaluate raw guards."""
        for candidate in self._theory.successor_configurations(system, node.config, transition):
            stats.candidates_generated += 1
            database = self._theory.database(candidate)
            stats.guard_evaluations += 1
            if not guard_holds(
                database,
                system.registers,
                transition.guard,
                node.config.valuation,
                candidate.valuation,
            ):
                stats.guard_rejections += 1
                continue
            goal = self._admit_candidate(
                system,
                node,
                transition,
                candidate,
                database,
                frontier,
                needs_scores,
                visited,
                stats,
            )
            if goal is not None:
                return goal
        return None

    def _admit_candidate(
        self,
        system: DatabaseDrivenSystem,
        node: _SearchNode,
        transition: Transition,
        candidate: TheoryConfiguration,
        database: Optional[Structure],
        frontier,
        needs_scores: bool,
        visited: Dict[Tuple[str, Hashable], int],
        stats: SearchStatistics,
    ) -> Optional[_SearchNode]:
        """Shared post-guard tail: dedup, enqueue, accepting check, push.

        Returns the goal node when ``transition`` reaches an accepting
        state, None otherwise.  ``database`` is the already-materialized
        successor database if the caller built one for guard evaluation;
        when the compiled plan made that unnecessary the witness size comes
        from the theory's cheap accessor instead.
        """
        key = (transition.target, self._abstraction_key(candidate, stats))
        if key in visited:
            stats.duplicate_keys_pruned += 1
            return None
        visited[key] = len(visited)
        stats.configurations_enqueued += 1
        stats.largest_witness_size = max(
            stats.largest_witness_size,
            database.size if database is not None else self._theory.witness_size(candidate),
        )
        successor = _SearchNode(
            transition.target,
            candidate,
            parent=node,
            transition=transition,
            depth=node.depth + 1,
        )
        if system.is_accepting(transition.target):
            frontier.clear()
            return successor
        frontier.push(successor, abstraction_key_score(key) if needs_scores else 0)
        stats.max_frontier_size = max(stats.max_frontier_size, len(frontier))
        return None

    @staticmethod
    def _snapshot_plan_statistics(plan_set: Optional[PlanSet], stats: SearchStatistics) -> None:
        if plan_set is None:
            return
        for plan in plan_set:
            plan_stats = plan.stats
            stats.plan_rejected_pre_materialization += plan_stats.rejected_pre_materialization
            stats.plan_compiled_guard_hits += plan_stats.compiled_guard_hits
            stats.plan_fallback_evaluations += plan_stats.fallback_evaluations
            stats.plan_enumeration_pruned += plan_stats.enumeration_pruned
        stats.plan_details = plan_set.statistics()

    # -- witness reconstruction -------------------------------------------------

    def _reconstruct_run(
        self, system: DatabaseDrivenSystem, goal: _SearchNode
    ) -> Tuple[Run, Dict[str, Any]]:
        """Rebuild a concrete run (plus certify evidence) from the search chain.

        Because every theory extends its witness monotonically (each step's
        witness embeds into the next by construction), the valuations recorded
        along the path remain valid in the final witness and the guards keep
        holding -- this is the concrete counterpart of the paper's
        amalgamation-based soundness proof (Appendix C).
        """
        chain: List[_SearchNode] = []
        node: Optional[_SearchNode] = goal
        while node is not None:
            chain.append(node)
            node = node.parent
        chain.reverse()
        final_database, mapping, evidence = self._theory.certify(chain[-1].config)
        steps = [
            (
                n.state,
                {
                    register: mapping.get(value, value)
                    for register, value in n.config.valuation.items()
                },
            )
            for n in chain
        ]
        transitions_taken = [n.transition for n in chain[1:] if n.transition is not None]
        run = Run(database=final_database, steps=steps, transitions_taken=transitions_taken)
        return run, evidence


def decide_emptiness(
    system: DatabaseDrivenSystem,
    theory: DatabaseTheory,
    max_configurations: int = 200_000,
    strategy: StrategySpec = "bfs",
) -> EmptinessResult:
    """One-shot convenience wrapper around :class:`EmptinessSolver`."""
    return EmptinessSolver(
        theory, max_configurations=max_configurations, strategy=strategy
    ).check(system)
