"""Amalgamation instances, solutions, and checkers (Section 4.1).

An instance of amalgamation consists of two embeddings of the same database
``C`` into databases ``A1`` and ``A2``; a solution is a database ``D`` with
embeddings of ``A1`` and ``A2`` that agree on (the images of) ``C``.

By Lemma 13 / Lemma 18 of the paper, for classes closed under isomorphism it
is enough to consider *inclusion* amalgamation: ``A1`` and ``A2`` are
consistent structures (they agree on their common elements) and a solution is
a structure containing both as induced substructures.

This module provides:

* the :class:`AmalgamationInstance` value object,
* the *free amalgam* construction for relational schemas (disjoint union over
  the shared part) -- the solution used in Lemma 7 and Lemma 19,
* a bounded solver (:func:`find_amalgamation_solution`) that searches for a
  solution within a given class, used by the property-based tests that check
  closure under amalgamation on sampled instances (Propositions 2 and 3,
  Example 3's forest counterexample).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Mapping, Optional, Tuple

from repro.errors import TheoryError
from repro.logic.morphisms import is_embedding
from repro.logic.structures import Element, Structure, sorted_key_list


@dataclass(frozen=True)
class AmalgamationInstance:
    """Two embeddings ``e1 : C -> A1`` and ``e2 : C -> A2`` of a shared database."""

    shared: Structure
    left: Structure
    right: Structure
    embed_left: Tuple[Tuple[Element, Element], ...]
    embed_right: Tuple[Tuple[Element, Element], ...]

    @classmethod
    def make(
        cls,
        shared: Structure,
        left: Structure,
        right: Structure,
        embed_left: Mapping[Element, Element],
        embed_right: Mapping[Element, Element],
    ) -> "AmalgamationInstance":
        if not is_embedding(embed_left, shared, left):
            raise TheoryError("embed_left is not an embedding of the shared part into left")
        if not is_embedding(embed_right, shared, right):
            raise TheoryError("embed_right is not an embedding of the shared part into right")
        return cls(
            shared,
            left,
            right,
            tuple(sorted(embed_left.items(), key=repr)),
            tuple(sorted(embed_right.items(), key=repr)),
        )

    @classmethod
    def inclusion(
        cls, shared: Structure, left: Structure, right: Structure
    ) -> "AmalgamationInstance":
        """An inclusion instance: the shared part is a substructure of both sides."""
        identity = {e: e for e in shared.domain}
        return cls.make(shared, left, right, identity, identity)

    @property
    def left_embedding(self) -> Dict[Element, Element]:
        return dict(self.embed_left)

    @property
    def right_embedding(self) -> Dict[Element, Element]:
        return dict(self.embed_right)


@dataclass(frozen=True)
class AmalgamationSolution:
    """A database ``D`` with commuting embeddings of both sides of an instance."""

    amalgam: Structure
    embed_left: Tuple[Tuple[Element, Element], ...]
    embed_right: Tuple[Tuple[Element, Element], ...]

    @property
    def left_embedding(self) -> Dict[Element, Element]:
        return dict(self.embed_left)

    @property
    def right_embedding(self) -> Dict[Element, Element]:
        return dict(self.embed_right)


def verify_solution(instance: AmalgamationInstance, solution: AmalgamationSolution) -> bool:
    """Check the commuting-diagram conditions of a proposed solution."""
    left_map = solution.left_embedding
    right_map = solution.right_embedding
    if not is_embedding(left_map, instance.left, solution.amalgam):
        return False
    if not is_embedding(right_map, instance.right, solution.amalgam):
        return False
    el = instance.left_embedding
    er = instance.right_embedding
    for shared_element in instance.shared.domain:
        if left_map[el[shared_element]] != right_map[er[shared_element]]:
            return False
    return True


def free_amalgam(instance: AmalgamationInstance) -> AmalgamationSolution:
    """The free amalgam over a purely relational schema.

    Take the disjoint union of the two sides and identify the two images of
    the shared part; no tuples are added beyond those of the two sides.  This
    is the construction used in the proof of Lemma 7 (HOM classes) and of
    Lemma 19 (homogeneous relational structures).
    """
    schema = instance.shared.schema
    if not schema.is_relational:
        raise TheoryError("the free amalgam is only defined for relational schemas")
    el = instance.left_embedding
    er = instance.right_embedding
    right_of_shared = {er[c]: el[c] for c in instance.shared.domain}

    def left_name(element: Element) -> Element:
        return ("L", element)

    def right_name(element: Element) -> Element:
        if element in right_of_shared:
            return ("L", right_of_shared[element])
        return ("R", element)

    domain = {left_name(e) for e in instance.left.domain}
    domain |= {right_name(e) for e in instance.right.domain}
    relations: Dict[str, set] = {name: set() for name in schema.relation_names}
    for name in schema.relation_names:
        for t in instance.left.relation(name):
            relations[name].add(tuple(left_name(e) for e in t))
        for t in instance.right.relation(name):
            relations[name].add(tuple(right_name(e) for e in t))
    amalgam = Structure(schema, domain, relations=relations)
    embed_left = {e: left_name(e) for e in instance.left.domain}
    embed_right = {e: right_name(e) for e in instance.right.domain}
    solution = AmalgamationSolution(
        amalgam,
        tuple(sorted(embed_left.items(), key=repr)),
        tuple(sorted(embed_right.items(), key=repr)),
    )
    if not verify_solution(instance, solution):  # pragma: no cover - sanity net
        raise TheoryError("internal error: free amalgam failed verification")
    return solution


def union_of_consistent(left: Structure, right: Structure) -> Structure:
    """The union of two consistent structures (inclusion amalgamation, Lemma 13).

    The structures are *consistent* when relations and functions agree on the
    elements common to both domains; the union then contains both as induced
    substructures provided no new cross tuples are required -- which is the
    case for relational schemas (the free solution) and is checked here.
    """
    if left.schema != right.schema:
        raise TheoryError("cannot unite structures over different schemas")
    schema = left.schema
    if not schema.is_relational:
        raise TheoryError("union_of_consistent currently supports relational schemas only")
    common = left.domain & right.domain
    for name in schema.relation_names:
        left_common = {t for t in left.relation(name) if all(e in common for e in t)}
        right_common = {t for t in right.relation(name) if all(e in common for e in t)}
        if left_common != right_common:
            raise TheoryError(f"structures are inconsistent on relation {name!r}")
    relations = {
        name: set(left.relation(name)) | set(right.relation(name)) for name in schema.relation_names
    }
    return Structure(schema, left.domain | right.domain, relations=relations)


def enumerate_quotient_solutions(
    instance: AmalgamationInstance, max_extra_identifications: int = 2
) -> Iterator[AmalgamationSolution]:
    """Enumerate solutions obtained from the free amalgam by identifying elements.

    Some classes (e.g. linear orders) have no *free* solution but do have
    solutions where elements of the two sides are identified, or where extra
    tuples are added.  This generator yields the free amalgam first and then
    amalgams obtained by identifying up to ``max_extra_identifications`` pairs
    of elements across the two non-shared parts, each optionally saturated
    with extra tuples (the caller filters by class membership).
    """
    free = free_amalgam(instance)
    yield free
    amalgam = free.amalgam
    left_only = [
        e for e in amalgam.domain
        if isinstance(e, tuple) and e[0] == "L"
        and e not in set(free.right_embedding.values())
    ]
    right_only = [e for e in amalgam.domain if isinstance(e, tuple) and e[0] == "R"]
    pairs = list(itertools.product(left_only, right_only))
    for count in range(1, max_extra_identifications + 1):
        for chosen in itertools.combinations(pairs, count):
            mapping = {}
            used_left, used_right = set(), set()
            valid = True
            for left_e, right_e in chosen:
                if left_e in used_left or right_e in used_right:
                    valid = False
                    break
                used_left.add(left_e)
                used_right.add(right_e)
                mapping[right_e] = left_e
            if not valid:
                continue
            quotient = _quotient(amalgam, mapping)
            embed_left = dict(free.left_embedding)
            embed_right = {k: mapping.get(v, v) for k, v in free.right_embedding.items()}
            candidate = AmalgamationSolution(
                quotient,
                tuple(sorted(embed_left.items(), key=repr)),
                tuple(sorted(embed_right.items(), key=repr)),
            )
            if verify_solution(instance, candidate):
                yield candidate


def _quotient(structure: Structure, mapping: Mapping[Element, Element]) -> Structure:
    def conv(element: Element) -> Element:
        return mapping.get(element, element)

    relations = {
        name: {tuple(conv(e) for e in t) for t in structure.relation(name)}
        for name in structure.schema.relation_names
    }
    domain = {conv(e) for e in structure.domain}
    return Structure(structure.schema, domain, relations=relations)


def find_amalgamation_solution(
    instance: AmalgamationInstance,
    membership: Callable[[Structure], bool],
    extra_tuple_budget: int = 0,
    max_extra_identifications: int = 2,
) -> Optional[AmalgamationSolution]:
    """Search for a solution that belongs to a class given by a membership test.

    The search space is: the free amalgam, its element-identifying quotients,
    and (when ``extra_tuple_budget > 0``) each of those saturated with up to
    the given number of additional tuples.  This covers the solutions needed
    by every relational class in the paper (HOM classes and all-databases use
    the free amalgam; linear orders need extra tuples).  Returns ``None`` if
    no solution within the budget is in the class -- which is how the tests
    demonstrate that forests are *not* closed under amalgamation (Example 3).
    """
    schema = instance.shared.schema
    for base in enumerate_quotient_solutions(instance, max_extra_identifications):
        candidates = [base.amalgam]
        if extra_tuple_budget > 0:
            missing = []
            for name in schema.relation_names:
                arity = schema.relation(name).arity
                for t in itertools.product(sorted_key_list(base.amalgam.domain), repeat=arity):
                    if t not in base.amalgam.relation(name):
                        missing.append((name, t))
            for count in range(1, extra_tuple_budget + 1):
                for extra in itertools.combinations(missing, count):
                    enriched = base.amalgam
                    for name, t in extra:
                        enriched = enriched.with_tuple(name, *t)
                    candidates.append(enriched)
        for candidate in candidates:
            solution = AmalgamationSolution(candidate, base.embed_left, base.embed_right)
            if verify_solution(instance, solution) and membership(candidate):
                return solution
    return None


def has_joint_embedding(
    left: Structure,
    right: Structure,
    membership: Callable[[Structure], bool],
) -> bool:
    """Joint embedding property check on one pair: is the disjoint union in the class?

    (For every class in the paper the disjoint union witnesses joint
    embedding; classes where it does not are outside the scope of this
    helper.)
    """
    union = left.disjoint_union(right)
    return membership(union)
