"""Compiled transition plans: per-``(system, theory)`` guard compilation.

The engine's hot loop used to evaluate every transition guard from scratch
for every candidate a theory enumerated: build the successor database, build
a combined register valuation, walk the formula tree.  Profiles of the HOM
scaling workload showed >95% of that work being discarded -- most candidates
are register shuffles or witness extensions the guard rejects immediately.

A :class:`TransitionPlan` moves all per-guard work to a single compilation
step per ``(theory, transition)`` pair:

* the guard's boolean skeleton is compiled once into closures by the shared
  three-valued connective compiler (:mod:`repro.logic.threevalued`); atoms
  become closures over a :class:`DeltaContext` -- a register valuation pair
  plus a three-valued *fact oracle* supplied by the theory;
* conjuncts and disjuncts are *selectivity-ordered* (constants, then
  equalities, then relation atoms by arity) so the cheapest, most decisive
  atoms run first -- applied only when every atom compiles, in which case
  the evaluation is two-valued and order-independent, so the reordering is
  observationally equivalent to the source order;
* the guard's fully-register-instantiated relation atoms are extracted once
  as *templates* (symbol plus ``(old|new, register)`` argument slots), so
  theories resolve the guard-relevant tuples of a step by dictionary lookups
  instead of re-walking the formula per candidate.

Plans drive the *incremental candidate* protocol of
:class:`~repro.fraisse.base.DatabaseTheory` (``enumerate_deltas`` /
``apply_delta``): guards are checked against the step's delta -- the new
tuples and the valuation change -- *before* the successor database is
materialized and canonicalized.  A candidate whose compiled guard evaluates
to ``False`` is rejected pre-materialization; ``True`` skips the engine's
authoritative evaluation entirely; :data:`~repro.logic.threevalued.UNKNOWN`
(guards mentioning symbols the delta view cannot decide, e.g. data-value
relations) falls back to the legacy materialize-and-evaluate path, so the
conservative semantics of the pre-filters is preserved exactly.

Compiled guards are cached process-wide (``engine_transition_plans`` in
:mod:`repro.perf`) keyed by the theory's stable plan key and the guard
formula, which is what lets :class:`~repro.service.runner.BatchRunner`
workers prime plans once per theory and reuse them across a same-theory
batch.  With :func:`repro.perf.caches_disabled` the engine never consults
plans at all and runs the legacy recompute-everything path.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.logic.formulas import (
    And,
    Equality,
    FalseFormula,
    Formula,
    Not,
    Or,
    RelationAtom,
    TrueFormula,
)
from repro.logic.schema import Schema
from repro.logic.terms import FuncTerm, Term, Var
from repro.logic.threevalued import UNKNOWN, compile_three_valued, unknown_node
from repro.perf import BoundedCache, caches_enabled
from repro.systems.dds import NEW_SUFFIX, OLD_SUFFIX, Transition
from repro.telemetry import note_plan_compilation

#: Argument slot of a template atom: ("old" | "new", register name).
TemplateSlot = Tuple[str, str]

#: A guard relation atom with every argument a register variable.
AtomTemplate = Tuple[str, Tuple[TemplateSlot, ...]]


class DeltaContext:
    """The evaluation context compiled guard closures run against.

    ``value_old`` / ``value_new`` map registers to elements (the valuation
    before and after the step).  ``fact(symbol, elements)`` is the theory's
    three-valued oracle for "does this tuple hold in the successor
    database?"; ``term(symbol, elements)`` resolves theory function symbols
    (e.g. the tree theory's ``cca``).  One mutable instance is reused across
    an enumeration: theories update the fields in place per candidate.
    """

    __slots__ = ("value_old", "value_new", "fact", "term")

    def __init__(
        self,
        value_old: Optional[Dict[str, Any]] = None,
        value_new: Optional[Dict[str, Any]] = None,
        fact: Optional[Callable[[str, Tuple[Any, ...]], Any]] = None,
        term: Optional[Callable[[str, Tuple[Any, ...]], Any]] = None,
    ) -> None:
        self.value_old = value_old
        self.value_new = value_new
        self.fact = fact
        self.term = term


# -- term and atom compilation ---------------------------------------------------


def _compile_term(term: Term, function_symbols: FrozenSet[str]):
    """Compile a term to a context closure, or None if it cannot resolve."""
    if isinstance(term, Var):
        name = term.name
        if name.endswith(OLD_SUFFIX):
            register = name[: -len(OLD_SUFFIX)]
            return lambda context: context.value_old.get(register, UNKNOWN)
        if name.endswith(NEW_SUFFIX):
            register = name[: -len(NEW_SUFFIX)]
            return lambda context: context.value_new.get(register, UNKNOWN)
        return None
    if isinstance(term, FuncTerm) and term.symbol in function_symbols:
        compiled_args = [_compile_term(a, function_symbols) for a in term.args]
        if any(c is None for c in compiled_args):
            return None
        symbol = term.symbol

        def eval_func(context):
            values = []
            for compiled in compiled_args:
                value = compiled(context)
                if value is UNKNOWN:
                    return UNKNOWN
                values.append(value)
            return context.term(symbol, tuple(values))

        return eval_func
    return None


class _AtomCompiler:
    """Compiles atoms to context closures, tracking whether all of them did."""

    __slots__ = ("schema", "function_symbols", "decisive")

    def __init__(self, schema: Schema, function_symbols: FrozenSet[str]) -> None:
        self.schema = schema
        self.function_symbols = function_symbols
        self.decisive = True

    def __call__(self, formula: Formula):
        if isinstance(formula, Equality):
            left = _compile_term(formula.left, self.function_symbols)
            right = _compile_term(formula.right, self.function_symbols)
            if left is None or right is None:
                self.decisive = False
                return unknown_node

            def eval_eq(context):
                a = left(context)
                if a is UNKNOWN:
                    return UNKNOWN
                b = right(context)
                if b is UNKNOWN:
                    return UNKNOWN
                return a == b

            return eval_eq
        if isinstance(formula, RelationAtom):
            symbol = formula.symbol
            if (
                not self.schema.has_relation(symbol)
                or len(formula.args) != self.schema.relation(symbol).arity
            ):
                self.decisive = False
                return unknown_node
            compiled_args = [_compile_term(a, self.function_symbols) for a in formula.args]
            if any(c is None for c in compiled_args):
                self.decisive = False
                return unknown_node

            def eval_rel(context):
                values = []
                for compiled in compiled_args:
                    value = compiled(context)
                    if value is UNKNOWN:
                        return UNKNOWN
                    values.append(value)
                return context.fact(symbol, tuple(values))

            return eval_rel
        self.decisive = False
        return unknown_node


# -- selectivity ordering --------------------------------------------------------


def _selectivity_rank(formula: Formula) -> int:
    """Static evaluation-cost/selectivity estimate (lower runs first)."""
    if isinstance(formula, (TrueFormula, FalseFormula)):
        return 0
    if isinstance(formula, Equality):
        return 1
    if isinstance(formula, Not):
        return 1 + _selectivity_rank(formula.operand)
    if isinstance(formula, RelationAtom):
        return 4 + len(formula.args)
    if isinstance(formula, (And, Or)):
        return max((_selectivity_rank(operand) for operand in formula.operands), default=0)
    return 100


def _reorder_by_selectivity(formula: Formula) -> Formula:
    """Stable-sort And/Or operands so cheap, decisive atoms evaluate first.

    Only applied to fully compilable guards, where evaluation is two-valued
    and therefore order-independent; three-valued guards keep the source
    order so the UNKNOWN short-circuit behaviour matches the legacy
    pre-filters exactly.
    """
    if isinstance(formula, And):
        return And(
            tuple(
                sorted(
                    (_reorder_by_selectivity(op) for op in formula.operands),
                    key=_selectivity_rank,
                )
            )
        )
    if isinstance(formula, Or):
        return Or(
            tuple(
                sorted(
                    (_reorder_by_selectivity(op) for op in formula.operands),
                    key=_selectivity_rank,
                )
            )
        )
    if isinstance(formula, Not):
        return Not(_reorder_by_selectivity(formula.operand))
    return formula


# -- compiled guards -------------------------------------------------------------


class CompiledGuard:
    """A guard compiled once: evaluator closure + register-atom templates."""

    __slots__ = ("formula", "evaluator", "decisive", "atom_templates")

    def __init__(
        self,
        formula: Formula,
        evaluator: Callable[[DeltaContext], Any],
        decisive: bool,
        atom_templates: Tuple[AtomTemplate, ...],
    ) -> None:
        self.formula = formula
        self.evaluator = evaluator
        self.decisive = decisive
        self.atom_templates = atom_templates


def _atom_templates(guard: Formula) -> Tuple[AtomTemplate, ...]:
    """Relation atoms whose arguments are all register variables, as slots."""
    templates: List[AtomTemplate] = []
    for atom in guard.atoms():
        if not isinstance(atom, RelationAtom):
            continue
        slots: List[TemplateSlot] = []
        for term in atom.args:
            if not isinstance(term, Var):
                break
            name = term.name
            if name.endswith(OLD_SUFFIX):
                slots.append(("old", name[: -len(OLD_SUFFIX)]))
            elif name.endswith(NEW_SUFFIX):
                slots.append(("new", name[: -len(NEW_SUFFIX)]))
            else:
                break
        else:
            templates.append((atom.symbol, tuple(slots)))
    return tuple(templates)


def compile_guard(
    guard: Formula, schema: Schema, function_symbols: FrozenSet[str] = frozenset()
) -> CompiledGuard:
    """Compile ``guard`` against ``schema`` into a :class:`CompiledGuard`.

    Decisiveness is determined by the atom compiler itself: the guard is
    compiled once in source order, and only when every atom compiled (so
    evaluation is two-valued and order-independent) is it recompiled
    selectivity-ordered.  Guards with undecidable atoms keep source order,
    preserving the legacy UNKNOWN short-circuit semantics.
    """
    compiler = _AtomCompiler(schema, function_symbols)
    evaluator = compile_three_valued(guard, compiler)
    if compiler.decisive:
        evaluator = compile_three_valued(
            _reorder_by_selectivity(guard), _AtomCompiler(schema, function_symbols)
        )
    note_plan_compilation()
    return CompiledGuard(guard, evaluator, compiler.decisive, _atom_templates(guard))


#: Process-wide compiled-guard cache: (theory plan key, guard) -> CompiledGuard.
_compiled_guard_cache = BoundedCache("engine_transition_plans", cap=1 << 10)


def compiled_guard_for(
    cache_key: Optional[str],
    guard: Formula,
    schema: Optional[Schema],
    function_symbols: FrozenSet[str] = frozenset(),
) -> Optional[CompiledGuard]:
    """Fetch (or compile) the plan guard for a theory; None when unsupported.

    ``cache_key`` is the theory's stable plan key
    (:meth:`~repro.fraisse.base.DatabaseTheory.plan_cache_key`); theories
    without one still get a compiled guard, just not a process-wide cached
    one.  Returns None when the theory does not expose a plan schema.
    """
    if schema is None:
        return None
    if cache_key is None or not caches_enabled():
        return compile_guard(guard, schema, function_symbols)
    return _compiled_guard_cache.get_or_compute(
        (cache_key, guard), lambda: compile_guard(guard, schema, function_symbols)
    )


# -- plans -----------------------------------------------------------------------


class PlanStatistics:
    """Per-plan counters collected while the engine drives one search."""

    __slots__ = (
        "deltas_enumerated",
        "rejected_pre_materialization",
        "compiled_guard_hits",
        "fallback_evaluations",
        "enumeration_pruned",
    )

    def __init__(self) -> None:
        self.deltas_enumerated = 0
        #: Candidates the compiled guard rejected before the successor
        #: database was materialized or canonicalized.
        self.rejected_pre_materialization = 0
        #: Candidates whose guard the compiled evaluator decided True, so the
        #: engine skipped the authoritative full-database evaluation.
        self.compiled_guard_hits = 0
        #: Candidates the compiled evaluator could not decide (UNKNOWN);
        #: the engine materialized the database and evaluated authoritatively.
        self.fallback_evaluations = 0
        #: Enumeration branches the theory pruned internally (register
        #: assignments or tuple-subset choices whose guard can never hold);
        #: the legacy pre-filters prune the same branches, so these never
        #: surface as candidates on either path.
        self.enumeration_pruned = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "deltas_enumerated": self.deltas_enumerated,
            "rejected_pre_materialization": self.rejected_pre_materialization,
            "compiled_guard_hits": self.compiled_guard_hits,
            "fallback_evaluations": self.fallback_evaluations,
            "enumeration_pruned": self.enumeration_pruned,
        }


class TransitionPlan:
    """One transition's compiled guard plus its per-run counters."""

    __slots__ = ("transition", "compiled", "stats")

    def __init__(self, transition: Transition, compiled: Optional[CompiledGuard]) -> None:
        self.transition = transition
        self.compiled = compiled
        self.stats = PlanStatistics()

    @property
    def decisive(self) -> bool:
        return self.compiled is not None and self.compiled.decisive

    def describe(self) -> str:
        mode = (
            "uncompiled"
            if self.compiled is None
            else "decisive" if self.compiled.decisive else "partial"
        )
        return f"{self.transition} [{mode}]"


class PlanSet:
    """All transition plans of one ``(system, theory)`` pair."""

    __slots__ = ("_plans",)

    def __init__(self, system, theory) -> None:
        schema = theory.plan_guard_schema()
        function_symbols = theory.plan_function_symbols()
        cache_key = theory.plan_cache_key()
        self._plans: Dict[Transition, TransitionPlan] = {}
        for transition in system.transitions:
            if transition in self._plans:
                continue
            compiled = compiled_guard_for(cache_key, transition.guard, schema, function_symbols)
            self._plans[transition] = TransitionPlan(transition, compiled)

    def plan_for(self, transition: Transition) -> TransitionPlan:
        plan = self._plans.get(transition)
        if plan is None:
            # Systems are immutable, but guard against exotic callers.
            plan = TransitionPlan(transition, None)
            self._plans[transition] = plan
        return plan

    def __len__(self) -> int:
        return len(self._plans)

    def __iter__(self) -> Iterator[TransitionPlan]:
        return iter(self._plans.values())

    def statistics(self) -> Dict[str, Dict[str, int]]:
        """Per-plan counters keyed by the transition's display form."""
        return {str(plan.transition): plan.stats.as_dict() for plan in self}


def compile_plans(system, theory) -> PlanSet:
    """Compile every transition of ``system`` against ``theory`` once."""
    return PlanSet(system, theory)


def prime_plans(system, theory) -> int:
    """Warm the process-wide compiled-guard cache for a ``(system, theory)`` pair.

    Used by batch-service workers before running a job: subsequent jobs over
    the same theory (the common shape of generated batches) then reuse the
    compiled guards instead of recompiling per job.  Returns the number of
    plans whose guard compiled.  A no-op (returning 0) when caches are
    disabled.
    """
    if not caches_enabled():
        return 0
    plan_set = compile_plans(system, theory)
    return sum(1 for plan in plan_set if plan.compiled is not None)
