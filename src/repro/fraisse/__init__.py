"""Fraïssé classes, amalgamation, and the generic emptiness engine (Section 4)."""

from repro.fraisse.base import (
    CandidateDelta,
    DatabaseTheory,
    TheoryConfiguration,
    combined_guard_valuation,
    generic_abstraction_key,
    guard_holds,
    set_partitions,
)
from repro.fraisse.plans import (
    CompiledGuard,
    DeltaContext,
    PlanSet,
    PlanStatistics,
    TransitionPlan,
    compile_guard,
    compile_plans,
    prime_plans,
)
from repro.fraisse.amalgamation import (
    AmalgamationInstance,
    AmalgamationSolution,
    find_amalgamation_solution,
    free_amalgam,
    has_joint_embedding,
    union_of_consistent,
    verify_solution,
)
from repro.fraisse.engine import (
    EmptinessResult,
    EmptinessSolver,
    SearchStatistics,
    decide_emptiness,
)
from repro.fraisse.search import (
    BestFirstStrategy,
    BreadthFirstStrategy,
    DepthFirstStrategy,
    STRATEGY_NAMES,
    SearchStrategy,
    make_strategy,
)

__all__ = [
    "SearchStrategy",
    "BreadthFirstStrategy",
    "DepthFirstStrategy",
    "BestFirstStrategy",
    "make_strategy",
    "STRATEGY_NAMES",
    "DatabaseTheory",
    "TheoryConfiguration",
    "CandidateDelta",
    "CompiledGuard",
    "DeltaContext",
    "PlanSet",
    "PlanStatistics",
    "TransitionPlan",
    "compile_guard",
    "compile_plans",
    "prime_plans",
    "generic_abstraction_key",
    "combined_guard_valuation",
    "guard_holds",
    "set_partitions",
    "AmalgamationInstance",
    "AmalgamationSolution",
    "free_amalgam",
    "union_of_consistent",
    "find_amalgamation_solution",
    "verify_solution",
    "has_joint_embedding",
    "EmptinessSolver",
    "EmptinessResult",
    "SearchStatistics",
    "decide_emptiness",
]
