"""Fault injection for the verification service (chaos harness).

The fault-tolerance machinery — worker supervision, the retry policy, the
graceful drain — is only trustworthy if failures can be produced on demand.
This module is that switch: a tiny registry of *fault points* (named places
in the real code path) and *rules* describing when each point should fire.
Production code calls the hook functions unconditionally; with no rules
armed they are a dictionary lookup and return immediately, so the hooks are
safe to leave in hot paths.

Rules come from two places:

* the ``REPRO_FAULTS`` environment variable — the only channel that crosses
  a ``spawn`` process boundary, since pool workers inherit the parent's
  environment but none of its Python state.  The registry re-reads the
  variable whenever its value changes, so tests can arm and disarm faults
  with a plain ``monkeypatch.setenv``;
* programmatic :meth:`FaultRegistry.install` calls, for in-process tests.

The wire syntax is ``point:key=value,key=value;point2:...`` — for example::

    REPRO_FAULTS="worker.crash:match=ab12,attempt=1;store.put:times=1"

kills the worker running the job whose fingerprint starts with ``ab12`` on
its first attempt only, and fails the next store write.  ``times`` budgets
are **per process**: every spawn worker parses the environment afresh, so a
deterministic chaos script should pin faults with ``match``/``attempt``
(stable across processes) rather than ``times`` when workers are involved.

Fault points wired into the service:

===================  ==========================================================
``worker.crash``     the pool worker ``os._exit``\\ s mid-job (hard kill)
``worker.hang``      the pool worker sleeps past every deadline
``store.put``        a result-store write raises :class:`FaultInjected`
``server.delay``     the HTTP server sleeps before writing a response
===================  ==========================================================
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Environment variable holding the fault rule script.
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: Exit code used by an injected worker crash; distinctive in logs.
CRASH_EXIT_CODE = 86

#: The fault points production code exposes.  ``install`` validates against
#: this set so a typo in a chaos script fails loudly instead of silently
#: injecting nothing.
FAULT_POINTS = frozenset({"worker.crash", "worker.hang", "store.put", "server.delay"})


class FaultInjected(Exception):
    """Raised by a raising fault point (e.g. an injected store write error)."""


@dataclass
class FaultRule:
    """When one fault point fires.

    ``times`` caps how often the rule fires **in this process** (None =
    unlimited); ``match`` restricts firing to keys containing the substring
    (typically a fingerprint prefix); ``attempt`` restricts firing to one
    specific attempt number, which is the process-independent way to inject
    a fault exactly once when retries move a job between workers.
    """

    point: str
    times: Optional[int] = None
    match: str = ""
    attempt: Optional[int] = None
    #: Sleep length for ``worker.hang`` / ``server.delay`` rules.
    delay: float = 30.0
    fired: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {self.point!r}; known points: {sorted(FAULT_POINTS)}"
            )
        if self.times is not None and self.times < 1:
            raise ValueError("times must be >= 1 when set")
        if self.attempt is not None and self.attempt < 1:
            raise ValueError("attempt must be >= 1 when set")
        if self.delay < 0:
            raise ValueError("delay must be >= 0")

    def applies(self, key: str, attempt: Optional[int]) -> bool:
        if self.times is not None and self.fired >= self.times:
            return False
        if self.match and self.match not in key:
            return False
        if self.attempt is not None and attempt != self.attempt:
            return False
        return True


def parse_rules(text: str) -> List[FaultRule]:
    """Parse the ``REPRO_FAULTS`` wire syntax into rules.

    Raises ``ValueError`` on unknown points, unknown options, or malformed
    numbers — chaos scripts fail fast rather than injecting the wrong thing.
    """
    rules: List[FaultRule] = []
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        point, _, option_text = clause.partition(":")
        options: Dict[str, Any] = {}
        if option_text:
            for option in option_text.split(","):
                name, sep, value = option.partition("=")
                name = name.strip()
                if not sep:
                    raise ValueError(f"fault option {option!r} is not name=value")
                if name in ("times", "attempt"):
                    options[name] = int(value)
                elif name == "delay":
                    options[name] = float(value)
                elif name == "match":
                    options[name] = value.strip()
                else:
                    raise ValueError(f"unknown fault option {name!r} in {clause!r}")
        rules.append(FaultRule(point=point.strip(), **options))
    return rules


class FaultRegistry:
    """Holds armed fault rules and answers "should this point fire now?".

    Environment rules are cached against the raw variable value and
    re-parsed only when it changes, so the common no-faults case costs one
    ``os.environ`` lookup and a string compare per hook call.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._env_text: Optional[str] = None
        self._env_rules: List[FaultRule] = []
        self._installed: List[FaultRule] = []
        #: Monotonic per-point fire counts (observability + test assertions).
        self.fired: Dict[str, int] = {}

    # -- configuration -----------------------------------------------------------

    def install(self, point: str, **options: Any) -> FaultRule:
        """Arm a rule programmatically (this process only)."""
        rule = FaultRule(point=point, **options)
        with self._lock:
            self._installed.append(rule)
        return rule

    def clear(self) -> None:
        """Disarm every programmatic rule and forget fire counts.

        Environment rules re-arm on the next hook call while the variable is
        still set; tests should also clear ``REPRO_FAULTS`` when done.
        """
        with self._lock:
            self._installed.clear()
            self._env_text = None
            self._env_rules.clear()
            self.fired.clear()

    def _rules(self) -> List[FaultRule]:
        env_text = os.environ.get(FAULTS_ENV_VAR, "")
        if env_text != self._env_text:
            self._env_rules = parse_rules(env_text) if env_text else []
            self._env_text = env_text
        return self._installed + self._env_rules

    def active(self) -> bool:
        """Whether any rule is currently armed (cheap liveness probe)."""
        with self._lock:
            return bool(self._rules())

    # -- firing ------------------------------------------------------------------

    def check(
        self, point: str, key: str = "", attempt: Optional[int] = None
    ) -> Optional[FaultRule]:
        """The first armed rule for ``point`` matching ``key``/``attempt``.

        A returned rule has been *consumed*: its fire count (and the
        registry's per-point total) is already incremented.
        """
        with self._lock:
            for rule in self._rules():
                if rule.point == point and rule.applies(key, attempt):
                    rule.fired += 1
                    self.fired[point] = self.fired.get(point, 0) + 1
                    return rule
        return None

    def fired_total(self) -> int:
        with self._lock:
            return sum(self.fired.values())


#: Process-wide registry all hook functions consult.
registry = FaultRegistry()


def crash_point(point: str, key: str = "", attempt: Optional[int] = None) -> None:
    """Hard-kill the current process if ``point`` is armed.

    ``os._exit`` skips every finally/atexit handler — the closest stdlib
    stand-in for an OOM kill or a segfault.  Only call from code that always
    runs inside a disposable worker process.
    """
    if registry.check(point, key, attempt) is not None:
        os._exit(CRASH_EXIT_CODE)


def hang_point(point: str, key: str = "", attempt: Optional[int] = None) -> None:
    """Sleep for the rule's ``delay`` if ``point`` is armed (wedged worker)."""
    rule = registry.check(point, key, attempt)
    if rule is not None:
        time.sleep(rule.delay)


def raise_point(point: str, key: str = "", attempt: Optional[int] = None) -> None:
    """Raise :class:`FaultInjected` if ``point`` is armed."""
    rule = registry.check(point, key, attempt)
    if rule is not None:
        raise FaultInjected(f"injected fault at {point} (key={key[:12]!r})")


def delay_point(point: str, key: str = "", attempt: Optional[int] = None) -> float:
    """Sleep for the rule's ``delay`` if armed; returns the delay applied."""
    rule = registry.check(point, key, attempt)
    if rule is None:
        return 0.0
    time.sleep(rule.delay)
    return rule.delay
