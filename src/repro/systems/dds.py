"""Database-driven systems (Section 2 of the paper).

A database-driven system is a register automaton: finitely many control
states, finitely many registers storing database elements, and transition
rules ``p --phi--> q`` whose guard ``phi`` is a quantifier-free formula over
the database schema with free variables among ``{x_old, x_new : x register}``.
The database is read-only and fixed for the whole run.

This module defines the system itself, its configurations and runs, and run
validation.  Concrete-database simulation lives in
:mod:`repro.systems.simulate`; the emptiness decision procedures live in
:mod:`repro.fraisse` and the class-specific packages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import RunError, SystemError_
from repro.logic.formulas import Formula
from repro.logic.parser import parse_formula
from repro.logic.schema import Schema
from repro.logic.structures import Element, Structure

OLD_SUFFIX = "_old"
NEW_SUFFIX = "_new"


def old(register: str) -> str:
    """The guard variable referring to register ``register`` before the transition."""
    return register + OLD_SUFFIX


def new(register: str) -> str:
    """The guard variable referring to register ``register`` after the transition."""
    return register + NEW_SUFFIX


def split_register_variable(variable: str) -> Tuple[str, str]:
    """Split a guard variable into ``(register, "old" | "new")``.

    Raises :class:`SystemError_` for variables that do not follow the
    ``<register>_old`` / ``<register>_new`` convention.
    """
    if variable.endswith(OLD_SUFFIX):
        return variable[: -len(OLD_SUFFIX)], "old"
    if variable.endswith(NEW_SUFFIX):
        return variable[: -len(NEW_SUFFIX)], "new"
    raise SystemError_(
        f"guard variable {variable!r} is neither an _old nor a _new register variable"
    )


@dataclass(frozen=True)
class Transition:
    """A transition rule ``source --guard--> target``."""

    source: str
    guard: Formula
    target: str

    def __str__(self) -> str:
        return f"{self.source} --[{self.guard}]--> {self.target}"


@dataclass(frozen=True)
class Configuration:
    """A configuration ``(database, state, valuation)``.

    The valuation maps every register to an element of the database's domain.
    Valuations are stored as sorted tuples so configurations are hashable.
    """

    database: Structure
    state: str
    valuation_items: Tuple[Tuple[str, Element], ...]

    @classmethod
    def make(
        cls, database: Structure, state: str, valuation: Mapping[str, Element]
    ) -> "Configuration":
        return cls(database, state, tuple(sorted(valuation.items())))

    @property
    def valuation(self) -> Dict[str, Element]:
        return dict(self.valuation_items)

    def __str__(self) -> str:
        values = ", ".join(f"{r}={v!r}" for r, v in self.valuation_items)
        return f"({self.state}; {values})"


@dataclass
class Run:
    """A run: a database together with the visited (state, valuation) sequence."""

    database: Structure
    steps: List[Tuple[str, Dict[str, Element]]] = field(default_factory=list)
    transitions_taken: List[Transition] = field(default_factory=list)

    @property
    def length(self) -> int:
        return len(self.steps)

    @property
    def final_state(self) -> str:
        if not self.steps:
            raise RunError("empty run has no final state")
        return self.steps[-1][0]

    def configurations(self) -> Iterator[Configuration]:
        for state, valuation in self.steps:
            yield Configuration.make(self.database, state, valuation)

    def __str__(self) -> str:
        parts = []
        for state, valuation in self.steps:
            values = ", ".join(f"{r}={v!r}" for r, v in sorted(valuation.items()))
            parts.append(f"({state}; {values})")
        return " -> ".join(parts)


GuardLike = Union[str, Formula]


class DatabaseDrivenSystem:
    """A database-driven system over a database schema.

    Parameters
    ----------
    schema:
        The schema of the databases the system queries.
    states, registers:
        Finite sets of control states and registers.
    initial, accepting:
        Subsets of the states.
    transitions:
        :class:`Transition` objects; guards must be quantifier-free (use
        :func:`repro.systems.existential.compile_existential_guards` first if
        they are existential).
    """

    def __init__(
        self,
        schema: Schema,
        states: Iterable[str],
        registers: Iterable[str],
        initial: Iterable[str],
        accepting: Iterable[str],
        transitions: Iterable[Transition],
        allow_existential_guards: bool = False,
    ) -> None:
        self._schema = schema
        self._states: Tuple[str, ...] = tuple(dict.fromkeys(states))
        self._registers: Tuple[str, ...] = tuple(dict.fromkeys(registers))
        self._initial: FrozenSet[str] = frozenset(initial)
        self._accepting: FrozenSet[str] = frozenset(accepting)
        self._transitions: Tuple[Transition, ...] = tuple(transitions)
        self._allow_existential = allow_existential_guards
        self._validate()

    # -- construction ---------------------------------------------------------

    @classmethod
    def build(
        cls,
        schema: Schema,
        registers: Sequence[str],
        states: Sequence[str],
        initial: Union[str, Sequence[str]],
        accepting: Union[str, Sequence[str]],
        transitions: Sequence[Tuple[str, GuardLike, str]],
        allow_existential_guards: bool = False,
    ) -> "DatabaseDrivenSystem":
        """Convenience constructor accepting textual guards.

        ``transitions`` is a sequence of ``(source, guard, target)`` triples
        where the guard may be a :class:`Formula` or a string parsed by
        :func:`repro.logic.parser.parse_formula`.
        """
        if isinstance(initial, str):
            initial = [initial]
        if isinstance(accepting, str):
            accepting = [accepting]
        compiled = []
        for source, guard, target in transitions:
            formula = parse_formula(guard) if isinstance(guard, str) else guard
            compiled.append(Transition(source, formula, target))
        return cls(
            schema=schema,
            states=states,
            registers=registers,
            initial=initial,
            accepting=accepting,
            transitions=compiled,
            allow_existential_guards=allow_existential_guards,
        )

    def _validate(self) -> None:
        if not self._states:
            raise SystemError_("a system needs at least one control state")
        if not self._registers:
            raise SystemError_("a system needs at least one register")
        unknown_initial = self._initial - set(self._states)
        if unknown_initial:
            raise SystemError_(f"initial states {sorted(unknown_initial)} are not states")
        unknown_accepting = self._accepting - set(self._states)
        if unknown_accepting:
            raise SystemError_(f"accepting states {sorted(unknown_accepting)} are not states")
        if not self._initial:
            raise SystemError_("a system needs at least one initial state")
        allowed_variables = self.guard_variables()
        for transition in self._transitions:
            if transition.source not in self._states:
                raise SystemError_(f"unknown source state {transition.source!r}")
            if transition.target not in self._states:
                raise SystemError_(f"unknown target state {transition.target!r}")
            if not self._allow_existential and not transition.guard.is_quantifier_free():
                raise SystemError_(
                    f"guard of {transition} is not quantifier-free; "
                    "compile it with repro.systems.existential first "
                    "or pass allow_existential_guards=True"
                )
            stray = transition.guard.free_variables() - allowed_variables
            if stray:
                raise SystemError_(
                    f"guard of {transition} uses unknown register variables {sorted(stray)}"
                )

    # -- accessors ------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def states(self) -> Tuple[str, ...]:
        return self._states

    @property
    def registers(self) -> Tuple[str, ...]:
        return self._registers

    @property
    def initial_states(self) -> FrozenSet[str]:
        return self._initial

    @property
    def accepting_states(self) -> FrozenSet[str]:
        return self._accepting

    @property
    def transitions(self) -> Tuple[Transition, ...]:
        return self._transitions

    def transitions_from(self, state: str) -> Iterator[Transition]:
        for transition in self._transitions:
            if transition.source == state:
                yield transition

    def guard_variables(self) -> FrozenSet[str]:
        """All guard variables the registers give rise to."""
        names = set()
        for register in self._registers:
            names.add(old(register))
            names.add(new(register))
        return frozenset(names)

    def is_accepting(self, state: str) -> bool:
        return state in self._accepting

    # -- semantics ------------------------------------------------------------

    def guard_holds(
        self,
        guard: Formula,
        database: Structure,
        valuation_old: Mapping[str, Element],
        valuation_new: Mapping[str, Element],
    ) -> bool:
        """Evaluate a guard with the combined old/new register valuation."""
        combined: Dict[str, Element] = {}
        for register in self._registers:
            combined[old(register)] = valuation_old[register]
            combined[new(register)] = valuation_new[register]
        return guard.evaluate(database, combined)

    def is_transition(self, before: Configuration, after: Configuration) -> Optional[Transition]:
        """Return a witnessing transition rule if ``before -> after`` is a step."""
        if before.database != after.database:
            return None
        for transition in self.transitions_from(before.state):
            if transition.target != after.state:
                continue
            if self.guard_holds(
                transition.guard, before.database, before.valuation, after.valuation
            ):
                return transition
        return None

    def validate_run(self, run: Run, require_accepting: bool = True) -> None:
        """Raise :class:`RunError` unless ``run`` is a valid (accepting) run."""
        if not run.steps:
            raise RunError("a run must contain at least one configuration")
        first_state, first_valuation = run.steps[0]
        if first_state not in self._initial:
            raise RunError(f"run starts in non-initial state {first_state!r}")
        for state, valuation in run.steps:
            if state not in self._states:
                raise RunError(f"unknown state {state!r} in run")
            if set(valuation) != set(self._registers):
                raise RunError(f"valuation {valuation!r} does not assign exactly the registers")
            for value in valuation.values():
                if value not in run.database.domain:
                    raise RunError(f"register value {value!r} outside the database domain")
        for index in range(len(run.steps) - 1):
            before = Configuration.make(run.database, *_step(run.steps[index]))
            after = Configuration.make(run.database, *_step(run.steps[index + 1]))
            if self.is_transition(before, after) is None:
                raise RunError(f"no transition rule justifies step {index}: {before} -> {after}")
        if require_accepting and run.final_state not in self._accepting:
            raise RunError(f"run ends in non-accepting state {run.final_state!r}")

    def is_valid_run(self, run: Run, require_accepting: bool = True) -> bool:
        try:
            self.validate_run(run, require_accepting=require_accepting)
        except RunError:
            return False
        return True

    # -- serialization ---------------------------------------------------------

    def to_spec(self) -> Dict[str, object]:
        """A JSON-safe description of the system.

        Guards are rendered through their textual syntax (``str`` of the
        formula, re-read by :func:`repro.logic.parser.parse_formula`), so the
        spec is stable under a serialize/parse round-trip and can be shipped
        to worker processes and fingerprinted by the batch verification
        service.  Round-trips through :meth:`from_spec`.
        """
        return {
            "schema": self._schema.to_spec(),
            "states": list(self._states),
            "registers": list(self._registers),
            "initial": sorted(self._initial),
            "accepting": sorted(self._accepting),
            "transitions": [[t.source, str(t.guard), t.target] for t in self._transitions],
            "allow_existential_guards": self._allow_existential,
        }

    @classmethod
    def from_spec(cls, spec: Mapping[str, object]) -> "DatabaseDrivenSystem":
        """Rebuild a system from :meth:`to_spec` output."""
        return cls.build(
            schema=Schema.from_spec(spec["schema"]),
            registers=list(spec["registers"]),
            states=list(spec["states"]),
            initial=list(spec["initial"]),
            accepting=list(spec["accepting"]),
            transitions=[tuple(t) for t in spec["transitions"]],
            allow_existential_guards=bool(spec.get("allow_existential_guards", False)),
        )

    # -- misc -----------------------------------------------------------------

    def renamed_states(self, prefix: str) -> "DatabaseDrivenSystem":
        """A copy with every state name prefixed (used by product constructions)."""
        mapping = {state: prefix + state for state in self._states}
        return DatabaseDrivenSystem(
            schema=self._schema,
            states=[mapping[s] for s in self._states],
            registers=self._registers,
            initial=[mapping[s] for s in self._initial],
            accepting=[mapping[s] for s in self._accepting],
            transitions=[
                Transition(mapping[t.source], t.guard, mapping[t.target])
                for t in self._transitions
            ],
            allow_existential_guards=self._allow_existential,
        )

    def with_schema(self, schema: Schema) -> "DatabaseDrivenSystem":
        """A copy of the system over a (typically larger) schema."""
        return DatabaseDrivenSystem(
            schema=schema,
            states=self._states,
            registers=self._registers,
            initial=self._initial,
            accepting=self._accepting,
            transitions=self._transitions,
            allow_existential_guards=self._allow_existential,
        )

    def describe(self) -> str:
        lines = [
            f"states: {list(self._states)}",
            f"registers: {list(self._registers)}",
            f"initial: {sorted(self._initial)}",
            f"accepting: {sorted(self._accepting)}",
            "transitions:",
        ]
        lines.extend(f"  {t}" for t in self._transitions)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"DatabaseDrivenSystem(states={len(self._states)}, "
            f"registers={len(self._registers)}, transitions={len(self._transitions)})"
        )


def _step(step: Tuple[str, Dict[str, Element]]) -> Tuple[str, Dict[str, Element]]:
    state, valuation = step
    return state, valuation
