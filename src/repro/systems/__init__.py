"""Database-driven systems: the register-automaton model of Section 2."""

from repro.systems.dds import (
    Configuration,
    DatabaseDrivenSystem,
    Run,
    Transition,
    new,
    old,
    split_register_variable,
)
from repro.systems.existential import (
    auxiliary_register_count,
    compile_existential_guards,
)
from repro.systems.simulate import (
    count_reachable_configurations,
    find_accepting_run,
    has_accepting_run,
)

__all__ = [
    "DatabaseDrivenSystem",
    "Transition",
    "Configuration",
    "Run",
    "old",
    "new",
    "split_register_variable",
    "compile_existential_guards",
    "auxiliary_register_count",
    "find_accepting_run",
    "has_accepting_run",
    "count_reachable_configurations",
]
