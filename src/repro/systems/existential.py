"""Compiling existential guards into quantifier-free guards (Fact 2).

Fact 2 of the paper: for every database-driven system with existential guards
one can compute, in linear time, a system with quantifier-free guards that
accepts the same runs driven by the same databases.  The construction adds
one auxiliary register per quantified variable (reused across transitions)
and lets nondeterminism pick the witnesses: the existential variables of a
guard are replaced by the *new* values of the auxiliary registers.

Only *positive* combinations of existential formulas can be compiled this
way; a negated existential guard is rejected (allowing boolean combinations
of existential formulas makes emptiness undecidable, Section 6.2).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Tuple

from repro.errors import SystemError_
from repro.logic.formulas import (
    And,
    Equality,
    Exists,
    FalseFormula,
    Formula,
    Not,
    Or,
    RelationAtom,
    TrueFormula,
    conj,
    disj,
    neq,
)
from repro.logic.terms import Var
from repro.systems.dds import DatabaseDrivenSystem, Transition, new

AUX_PREFIX = "_aux"


def _prenex(formula: Formula, counter: itertools.count) -> Tuple[List[str], Formula]:
    """Pull existential quantifiers to the front of a positive formula.

    Returns ``(bound_variables, quantifier_free_body)``.  Bound variables are
    renamed apart using ``counter`` so blocks from different subformulas never
    clash.  The ``distinct`` flag of a block is compiled into explicit
    pairwise inequalities.  Raises :class:`SystemError_` when a quantifier
    occurs under a negation.
    """
    if isinstance(formula, (TrueFormula, FalseFormula, RelationAtom, Equality)):
        return [], formula
    if isinstance(formula, Not):
        if not formula.operand.is_quantifier_free():
            raise SystemError_(
                "cannot compile a negated existential guard (Section 6.2: "
                "boolean combinations of existential formulas are undecidable)"
            )
        return [], formula
    if isinstance(formula, And):
        bound: List[str] = []
        bodies: List[Formula] = []
        for operand in formula.operands:
            operand_bound, operand_body = _prenex(operand, counter)
            bound.extend(operand_bound)
            bodies.append(operand_body)
        return bound, conj(*bodies)
    if isinstance(formula, Or):
        bound = []
        bodies = []
        for operand in formula.operands:
            operand_bound, operand_body = _prenex(operand, counter)
            bound.extend(operand_bound)
            bodies.append(operand_body)
        return bound, disj(*bodies)
    if isinstance(formula, Exists):
        fresh_names = {}
        for name in formula.variables_bound:
            fresh_names[name] = f"{AUX_PREFIX}{next(counter)}"
        renamed_body = formula.body.rename_variables(fresh_names)
        inner_bound, inner_body = _prenex(renamed_body, counter)
        block = list(fresh_names.values())
        if formula.distinct:
            inequalities = [neq(Var(a), Var(b)) for a, b in itertools.combinations(block, 2)]
            inner_body = conj(inner_body, *inequalities)
        return block + inner_bound, inner_body
    raise SystemError_(f"unsupported formula shape for compilation: {formula!r}")


def compile_guard(guard: Formula, counter: itertools.count) -> Tuple[List[str], Formula]:
    """Compile one guard; returns the auxiliary variables used and the new guard."""
    bound, body = _prenex(guard, counter)
    if not bound:
        return [], body
    substitution = {name: Var(new(_aux_register(index))) for index, name in enumerate(bound)}
    return [_aux_register(index) for index in range(len(bound))], body.substitute(substitution)


def _aux_register(index: int) -> str:
    return f"{AUX_PREFIX}_r{index}"


def compile_existential_guards(system: DatabaseDrivenSystem) -> DatabaseDrivenSystem:
    """Apply Fact 2: return an equivalent system with quantifier-free guards.

    The returned system has the original registers plus ``m`` auxiliary
    registers, where ``m`` is the largest number of quantified variables in a
    single guard; its runs project onto exactly the runs of the original
    system (forget the auxiliary registers).
    """
    compiled: List[Transition] = []
    max_aux = 0
    for transition in system.transitions:
        counter = itertools.count()
        aux_registers, guard = compile_guard(transition.guard, counter)
        max_aux = max(max_aux, len(aux_registers))
        compiled.append(Transition(transition.source, guard, transition.target))

    registers = list(system.registers) + [_aux_register(i) for i in range(max_aux)]
    return DatabaseDrivenSystem(
        schema=system.schema,
        states=system.states,
        registers=registers,
        initial=system.initial_states,
        accepting=system.accepting_states,
        transitions=compiled,
    )


def auxiliary_register_count(system: DatabaseDrivenSystem) -> int:
    """How many auxiliary registers Fact 2 compilation would add."""
    max_aux = 0
    for transition in system.transitions:
        counter = itertools.count()
        bound, _ = _prenex(transition.guard, counter)
        max_aux = max(max_aux, len(bound))
    return max_aux


def project_run_to_original_registers(
    run_valuation: Dict[str, object], original_registers: Tuple[str, ...]
) -> Dict[str, object]:
    """Drop the auxiliary registers from a valuation of the compiled system."""
    return {r: run_valuation[r] for r in original_registers}
