"""Explicit simulation of a database-driven system on a fixed database.

Given a concrete database ``D``, the configuration graph of the system has
nodes ``(state, valuation)`` with ``valuation : registers -> dom(D)``; this is
finite (``|Q| * |D|^k`` nodes), so reachability of an accepting configuration
is a plain graph search.  This is the semantic ground truth against which the
abstraction-based decision procedures are validated, and the engine used by
the brute-force baselines of :mod:`repro.baselines`.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.logic.structures import Element, Structure, sorted_key_list
from repro.systems.dds import DatabaseDrivenSystem, Run, Transition, new, old


def all_valuations(
    system: DatabaseDrivenSystem, database: Structure
) -> Iterator[Dict[str, Element]]:
    """Every valuation of the system's registers into the database's domain."""
    registers = list(system.registers)
    domain = sorted_key_list(database.domain)
    for values in itertools.product(domain, repeat=len(registers)):
        yield dict(zip(registers, values))


def successor_valuations(
    system: DatabaseDrivenSystem,
    database: Structure,
    valuation_old: Mapping[str, Element],
    transition: Transition,
) -> Iterator[Dict[str, Element]]:
    """All new valuations such that the transition's guard holds.

    The guard is evaluated once per candidate valuation; candidate generation
    enumerates the full domain per register, which is exactly the
    configuration-graph semantics (registers are reassigned
    nondeterministically subject to the guard).
    """
    registers = list(system.registers)
    domain = sorted_key_list(database.domain)
    combined_base = {old(r): valuation_old[r] for r in registers}
    for values in itertools.product(domain, repeat=len(registers)):
        valuation_new = dict(zip(registers, values))
        combined = dict(combined_base)
        combined.update({new(r): valuation_new[r] for r in registers})
        if transition.guard.evaluate(database, combined):
            yield valuation_new


def find_accepting_run(
    system: DatabaseDrivenSystem,
    database: Structure,
    max_steps: Optional[int] = None,
) -> Optional[Run]:
    """Search the configuration graph of ``database`` for an accepting run.

    Returns a shortest accepting :class:`Run`, or ``None`` when no accepting
    configuration is reachable.  ``max_steps`` optionally bounds the run
    length (number of transitions); it is mainly useful for the bounded
    demonstrations of the undecidable extensions.
    """
    if not database.domain:
        return None
    start_nodes: List[Tuple[str, Tuple[Tuple[str, Element], ...]]] = []
    for state in system.initial_states:
        for valuation in all_valuations(system, database):
            start_nodes.append((state, tuple(sorted(valuation.items()))))

    # Breadth-first search over (state, valuation) nodes.
    parents: Dict[
        Tuple[str, Tuple[Tuple[str, Element], ...]],
        Optional[Tuple[Tuple[str, Tuple[Tuple[str, Element], ...]], Transition]],
    ] = {}
    queue = deque()
    depth: Dict[Tuple[str, Tuple[Tuple[str, Element], ...]], int] = {}
    for node in start_nodes:
        if node not in parents:
            parents[node] = None
            depth[node] = 0
            queue.append(node)

    goal = None
    for node in start_nodes:
        if system.is_accepting(node[0]):
            goal = node
            break

    while queue and goal is None:
        node = queue.popleft()
        if max_steps is not None and depth[node] >= max_steps:
            continue
        state, valuation_items = node
        valuation_old = dict(valuation_items)
        for transition in system.transitions_from(state):
            for valuation_new in successor_valuations(system, database, valuation_old, transition):
                successor = (transition.target, tuple(sorted(valuation_new.items())))
                if successor in parents:
                    continue
                parents[successor] = (node, transition)
                depth[successor] = depth[node] + 1
                if system.is_accepting(transition.target):
                    goal = successor
                    queue.clear()
                    break
                queue.append(successor)
            if goal is not None:
                break

    if goal is None:
        return None

    # Reconstruct the run from the parent pointers.
    steps: List[Tuple[str, Dict[str, Element]]] = []
    transitions_taken: List[Transition] = []
    node: Optional[Tuple[str, Tuple[Tuple[str, Element], ...]]] = goal
    while node is not None:
        state, valuation_items = node
        steps.append((state, dict(valuation_items)))
        parent = parents[node]
        if parent is None:
            node = None
        else:
            node, transition = parent
            transitions_taken.append(transition)
    steps.reverse()
    transitions_taken.reverse()
    run = Run(database=database, steps=steps, transitions_taken=transitions_taken)
    system.validate_run(run)
    return run


def has_accepting_run(
    system: DatabaseDrivenSystem,
    database: Structure,
    max_steps: Optional[int] = None,
) -> bool:
    """True if the system has an accepting run driven by ``database``."""
    return find_accepting_run(system, database, max_steps=max_steps) is not None


def count_reachable_configurations(system: DatabaseDrivenSystem, database: Structure) -> int:
    """Number of reachable configurations (used by the analysis module)."""
    if not database.domain:
        return 0
    visited = set()
    queue = deque()
    for state in system.initial_states:
        for valuation in all_valuations(system, database):
            node = (state, tuple(sorted(valuation.items())))
            if node not in visited:
                visited.add(node)
                queue.append(node)
    while queue:
        state, valuation_items = queue.popleft()
        valuation_old = dict(valuation_items)
        for transition in system.transitions_from(state):
            for valuation_new in successor_valuations(system, database, valuation_old, transition):
                successor = (transition.target, tuple(sorted(valuation_new.items())))
                if successor not in visited:
                    visited.add(successor)
                    queue.append(successor)
    return len(visited)
