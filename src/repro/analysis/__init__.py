"""Instrumentation: blowup measurements, solver profiles, report tables."""

from repro.analysis.blowup import (
    BlowupMeasurement,
    bench_once,
    SolverProfile,
    format_table,
    measure_tree_blowup,
    measure_word_blowup,
    profile_check,
)

__all__ = [
    "BlowupMeasurement",
    "bench_once",
    "SolverProfile",
    "profile_check",
    "measure_word_blowup",
    "measure_tree_blowup",
    "format_table",
]
