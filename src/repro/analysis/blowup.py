"""Measuring blowup functions and abstract state spaces.

The complexity statements of the paper are phrased through the *blowup
function* of a class (Section 4.1) -- the largest size of an n-generated
member -- and through the size of the space of small configurations explored
by the algorithm of Theorem 5.  The helpers here measure both quantities on
concrete instances so the benchmarks can report them next to the theoretical
bounds (identity for relational classes, ``2|Q| n`` for words, ``c n`` with
``c`` exponential in ``|Q|`` for trees, unchanged under data-value products).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.fraisse.base import DatabaseTheory
from repro.fraisse.engine import EmptinessResult, EmptinessSolver
from repro.systems.dds import DatabaseDrivenSystem
from repro.trees.automata import TreeAutomaton
from repro.trees.rundb import rundb as tree_rundb
from repro.words.nfa import PositionAutomaton
from repro.words.rundb import rundb as word_rundb


@dataclass
class BlowupMeasurement:
    """Observed vs theoretical blowup for a family of generator sizes."""

    generator_sizes: List[int]
    observed: List[int]
    theoretical: List[int]

    def rows(self) -> List[Tuple[int, int, int]]:
        return list(zip(self.generator_sizes, self.observed, self.theoretical))


def measure_word_blowup(
    automaton: PositionAutomaton,
    pre_run: Sequence[Tuple[object, str]],
    generator_sets: Iterable[Sequence[object]],
) -> BlowupMeasurement:
    """Sizes of pointer-closed generated substructures of a word run database."""
    database = word_rundb(automaton, pre_run)
    sizes: List[int] = []
    observed: List[int] = []
    theoretical: List[int] = []
    for generators in generator_sets:
        closure = database.closure(generators)
        sizes.append(len(set(generators)))
        observed.append(len(closure))
        theoretical.append(
            2 * automaton.component_count() * len(set(generators)) + len(set(generators))
        )
    return BlowupMeasurement(sizes, observed, theoretical)


def measure_tree_blowup(
    automaton: TreeAutomaton,
    pre_run,
    generator_sets: Iterable[Sequence[object]],
) -> BlowupMeasurement:
    """Sizes of pointer-closed generated substructures of a tree run database."""
    database = tree_rundb(automaton, pre_run)
    sizes: List[int] = []
    observed: List[int] = []
    theoretical: List[int] = []
    constant = 2 ** min(len(automaton.states), 20)
    for generators in generator_sets:
        closure = database.closure(generators)
        sizes.append(len(set(generators)))
        observed.append(len(closure))
        theoretical.append(constant * len(set(generators)))
    return BlowupMeasurement(sizes, observed, theoretical)


@dataclass
class SolverProfile:
    """A compact record of one emptiness check, used by EXPERIMENTS.md tables."""

    label: str
    nonempty: bool
    configurations_explored: int
    candidates_generated: int
    elapsed_seconds: float
    witness_size: Optional[int]

    @classmethod
    def from_result(cls, label: str, result: EmptinessResult) -> "SolverProfile":
        return cls(
            label=label,
            nonempty=result.nonempty,
            configurations_explored=result.statistics.configurations_explored,
            candidates_generated=result.statistics.candidates_generated,
            elapsed_seconds=result.statistics.elapsed_seconds,
            witness_size=result.run.database.size if result.run is not None else None,
        )

    def row(self) -> Tuple[str, str, int, int, float, Optional[int]]:
        return (
            self.label,
            "nonempty" if self.nonempty else "empty",
            self.configurations_explored,
            self.candidates_generated,
            round(self.elapsed_seconds, 4),
            self.witness_size,
        )


def profile_check(
    label: str,
    theory: DatabaseTheory,
    system: DatabaseDrivenSystem,
    max_configurations: int = 200_000,
) -> SolverProfile:
    """Run one emptiness check and package the statistics for reporting."""
    result = EmptinessSolver(theory, max_configurations=max_configurations).check(system)
    return SolverProfile.from_result(label, result)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a small fixed-width text table (used by examples and benchmarks)."""
    materialised = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[index]) for index, header in enumerate(headers)),
        "  ".join("-" * widths[index] for index in range(len(headers))),
    ]
    for row in materialised:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def bench_once(benchmark, function, *args, **kwargs):
    """Measure exactly one invocation with pytest-benchmark and return its result.

    The benchmark harness cares about the shape of measured series across
    parameters, not about statistical stability, so a single round keeps the
    full suite fast enough to run alongside the tests.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
