"""The ``repro`` command-line interface.

A thin operational front door to the library:

* ``repro demo`` -- run the paper's Example 1 / Example 2 end to end and
  print the verdicts with the discovered witness;
* ``repro check`` -- decide emptiness of one of the library's named example
  systems over a chosen theory and search strategy, printing statistics;
* ``repro batch`` -- generate seeded random workloads and run them through
  the batch verification service (parallel workers, persistent store);
* ``repro serve`` -- run the async HTTP front door: job specs in, verdicts
  out, with store-first serving and in-flight fingerprint dedup; grows a
  fleet via ``--role coordinator --runner URL`` (fingerprint-sharded
  forwarding) and ``--role runner`` nodes sharing one keyspace;
* ``repro store`` -- inspect, export, clear or *serve* a result store
  (``repro store serve`` runs the networked keyspace backend);

Every command that touches a store takes the same ``--store`` backend URL:
``sqlite:PATH`` (or a bare path), ``memory:``, or ``http://host:port`` for
a remote keyspace served by ``repro store serve``.
* ``repro trace`` -- export a stored solver trace as Chrome trace-event
  JSON for Perfetto / about://tracing;
* ``repro verify`` -- fetch a stored witness certificate and re-check it
  with the engine-independent validator (:mod:`repro.certify`);
* ``repro bench`` -- shortcut to the unified benchmark runner (equivalent to
  ``python benchmarks/run_all.py`` when running from a checkout);
* ``repro info`` -- version, available strategies, cache configuration.

The CLI exists so deployments installed via ``pip install -e .`` have a
stable executable without the ``PYTHONPATH=src`` workaround.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

from repro import (
    AllDatabasesTheory,
    EmptinessSolver,
    HomTheory,
    __version__,
    clique_template,
    odd_red_cycle_free_template,
    telemetry,
)
from repro.certify import (
    CertificateError,
    build_certificate,
    decode_certificate,
    render_certificate,
    validate_certificate,
)
from repro.errors import StoreError
from repro.fraisse.search import STRATEGY_NAMES
from repro.library import (
    odd_red_cycle_system,
    self_loop_required_system,
    triangle_system,
)
from repro.perf import cache_stats_snapshot, caches_enabled, set_caches_enabled
from repro.relational.csp import COLORED_GRAPH_SCHEMA, GRAPH_SCHEMA
from repro.service import BatchRunner, ResultStore, RetryPolicy
from repro.service.server import DEFAULT_MAX_CONNECTIONS, DEFAULT_MAX_PENDING
from repro.workloads import FAMILIES, generate_jobs

def _warn_deprecated(old: str, new: str) -> None:
    print(f"repro: {old} is deprecated; use {new}", file=sys.stderr)


def _resolve_store_spec(args: argparse.Namespace) -> Optional[str]:
    """The store backend spec from ``--store``, honoring the old ``--db``.

    ``--db`` predates the URL-style backend addressing and stays as a
    deprecated alias; ``--store`` wins when both are given.
    """
    db = getattr(args, "db", None)
    if db is not None:
        if args.store is not None:
            return args.store
        _warn_deprecated("--db", "--store")
        return db
    return args.store


def _store_token() -> Optional[str]:
    """Shared-secret for a remote (``http://``) store backend, from the
    environment only -- tokens on the command line leak via ``ps``."""
    return os.environ.get("REPRO_STORE_TOKEN") or None


#: Named example workloads: name -> (system builder, theory builder).
EXAMPLES: Dict[str, Tuple[Callable, Callable]] = {
    "odd-red-cycle": (
        odd_red_cycle_system,
        lambda: AllDatabasesTheory(COLORED_GRAPH_SCHEMA),
    ),
    "odd-red-cycle-hom": (
        odd_red_cycle_system,
        lambda: HomTheory(odd_red_cycle_free_template()),
    ),
    "triangle": (triangle_system, lambda: AllDatabasesTheory(GRAPH_SCHEMA)),
    "triangle-k2": (triangle_system, lambda: HomTheory(clique_template(2))),
    "triangle-k3": (triangle_system, lambda: HomTheory(clique_template(3))),
    "self-loop": (self_loop_required_system, lambda: AllDatabasesTheory(GRAPH_SCHEMA)),
}


def _command_demo(args: argparse.Namespace) -> int:
    system = odd_red_cycle_system()
    theory = AllDatabasesTheory(COLORED_GRAPH_SCHEMA)
    all_result = EmptinessSolver(theory).check(system)
    print("Example 1 (all databases):", "nonempty" if all_result.nonempty else "empty")
    if all_result.run is not None:
        print("  witness database:")
        for line in all_result.run.database.describe().splitlines():
            print("   ", line)
        # The canonical certificate rendering -- byte-identical to what the
        # /v1/jobs/{fp}/witness endpoint serves after decoding.
        print("  witness certificate:")
        print("   ", render_certificate(build_certificate(system, theory, all_result)))
    hom_result = EmptinessSolver(HomTheory(odd_red_cycle_free_template())).check(system)
    print("Example 2 (HOM template):", "nonempty" if hom_result.nonempty else "empty")
    return 0


def _command_check(args: argparse.Namespace) -> int:
    try:
        system_builder, theory_builder = EXAMPLES[args.example]
    except KeyError:
        print(
            f"unknown example {args.example!r}; available: {', '.join(sorted(EXAMPLES))}",
            file=sys.stderr,
        )
        return 2
    if args.no_caches:
        set_caches_enabled(False)
    solver = EmptinessSolver(
        theory_builder(),
        max_configurations=args.max_configurations,
        strategy=args.strategy,
    )
    result = solver.check(system_builder())
    print(f"{args.example}: {'nonempty' if result.nonempty else 'empty'}")
    if not result.exhausted:
        print("  (search interrupted by the configuration cap; verdict not definitive)")
    if args.json:
        print(json.dumps(result.statistics.as_dict(), indent=2))
    else:
        for key, value in result.statistics.as_dict().items():
            print(f"  {key}: {value}")
    return 0


def _locate_benchmark_runner() -> Optional[Path]:
    """Find ``benchmarks/run_all.py`` relative to a checkout, if any.

    Walks up from this file: in a ``pip install -e .`` checkout the package
    lives at ``<repo>/src/repro``, so the runner sits two levels above.  A
    site-packages install has no such directory and returns None.
    """
    for parent in Path(__file__).resolve().parents:
        candidate = parent / "benchmarks" / "run_all.py"
        if candidate.is_file():
            return candidate
    return None


def _command_bench(args: argparse.Namespace) -> int:
    runner_path = _locate_benchmark_runner()
    if runner_path is None:
        print(
            "the benchmark runner ships with the repository checkout, not the "
            "installed package; clone the repository and run "
            "`python benchmarks/run_all.py` from its root",
            file=sys.stderr,
        )
        return 2
    import importlib.util

    spec = importlib.util.spec_from_file_location("benchmarks.run_all", runner_path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    forwarded = []
    if args.smoke:
        forwarded.append("--smoke")
    if args.skip_suite:
        forwarded.append("--skip-suite")
    if args.skip_engine:
        forwarded.append("--skip-engine")
    if args.skip_service:
        forwarded.append("--skip-service")
    if args.skip_stress:
        forwarded.append("--skip-stress")
    if args.profile:
        forwarded.extend(["--profile", args.profile])
        forwarded.extend(["--profile-top", str(args.profile_top)])
    return module.main(forwarded)


def _command_info(args: argparse.Namespace) -> int:
    stats = {
        name: values
        for name, values in cache_stats_snapshot().items()
        if values["hits"] + values["misses"] > 0
    }
    if args.json:
        print(
            json.dumps(
                {
                    "version": __version__,
                    "strategies": list(STRATEGY_NAMES),
                    "caches_enabled": caches_enabled(),
                    "cache_stats": stats,
                },
                indent=2,
            )
        )
        return 0
    print(f"repro {__version__}")
    print(f"  search strategies: {', '.join(STRATEGY_NAMES)}")
    print(f"  engine caches enabled: {caches_enabled()}")
    if stats:
        print("  cache stats:")
        for name, values in stats.items():
            print(f"    {name}: {values}")
    return 0


def _command_batch(args: argparse.Namespace) -> int:
    families = (
        [family.strip() for family in args.families.split(",") if family.strip()]
        if args.families
        else list(FAMILIES)
    )
    try:
        jobs = generate_jobs(
            args.count,
            seed=args.seed,
            families=families,
            max_configurations=args.max_configurations,
        )
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    if args.trace:
        # Trace recording is observability-only: fingerprints (and thus
        # store keys / dedup) are unchanged by the flag.
        jobs = [dataclasses.replace(job, trace=True) for job in jobs]
    if args.certificates:
        # Like traces, certificates are artifacts, not job identity: the
        # fingerprint (and thus store keys / dedup) is unchanged.
        jobs = [dataclasses.replace(job, certificate=True) for job in jobs]
    try:
        store = (
            ResultStore.from_url(args.store, token=_store_token()) if args.store else None
        )
    except StoreError as error:
        print(str(error), file=sys.stderr)
        return 2
    try:
        try:
            runner = BatchRunner(
                store=store,
                workers=args.workers,
                timeout_seconds=args.timeout,
                retry_policy=RetryPolicy.with_retries(args.retries),
            )
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
        report = runner.run(jobs)
        if args.json:
            payload = report.as_dict()
            payload["seed"] = args.seed
            payload["families"] = families
            payload["store"] = args.store
            print(json.dumps(payload, indent=2))
        else:
            counts = report.verdict_counts()
            print(f"batch: {len(jobs)} jobs, {args.workers} worker(s), " f"seed {args.seed}")
            print(
                f"  verdicts: {counts['nonempty']} nonempty, "
                f"{counts['empty']} empty, {counts['error']} errors"
                + (
                    f", {counts['inconclusive']} inconclusive (cap hit)"
                    if counts["inconclusive"]
                    else ""
                )
            )
            print(f"  cache hits: {report.cache_hits}, executed: {report.executed}")
            print(f"  elapsed: {report.elapsed_seconds:.3f}s")
            faults_seen = {k: v for k, v in report.fault_tolerance.items() if v}
            if faults_seen:
                print(
                    "  fault tolerance: "
                    + ", ".join(f"{k} {v}" for k, v in sorted(faults_seen.items()))
                )
            if args.store:
                print(f"  store: {args.store} ({len(store)} results)")
                if args.trace:
                    print(
                        "  traces recorded; export one with "
                        f"`repro trace <fingerprint> --store {args.store}`"
                    )
                if args.certificates:
                    print(
                        "  certificates recorded; re-check one with "
                        f"`repro verify <fingerprint> --store {args.store}`"
                    )
            for result in report.errors:
                print(f"  ERROR {result.label}: {result.error}")
        return 1 if report.errors else 0
    finally:
        if store is not None:
            store.close()


def _command_serve(args: argparse.Namespace) -> int:
    from repro.service.server import VerificationService, run_server
    from repro.service.store import ResultStore

    if args.workers < 1:
        print("workers must be >= 1", file=sys.stderr)
        return 2
    if args.max_connections < 1:
        print("max-connections must be >= 1", file=sys.stderr)
        return 2
    if args.role == "coordinator" and not args.runner:
        print("--role coordinator needs at least one --runner URL", file=sys.stderr)
        return 2
    if args.runner and args.role != "coordinator":
        print("--runner only applies to --role coordinator", file=sys.stderr)
        return 2
    # --auth-token wins; the environment variable keeps the secret out of
    # `ps` output and shell history for production deployments.
    auth_token = args.auth_token or os.environ.get("REPRO_AUTH_TOKEN") or None
    max_pending = None if args.max_pending < 0 else args.max_pending
    try:
        retry_policy = RetryPolicy.with_retries(args.retries)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    if args.drain_timeout <= 0:
        print("drain-timeout must be positive", file=sys.stderr)
        return 2
    try:
        if args.store:
            store = ResultStore.from_url(
                args.store,
                ttl_seconds=args.ttl,
                max_entries=args.max_entries,
                token=_store_token(),
            )
        else:
            # No backend given: verdicts are still cached and deduplicated for
            # the lifetime of the server, just not across restarts.
            store = ResultStore.in_memory(ttl_seconds=args.ttl, max_entries=args.max_entries)
    except (ValueError, StoreError) as error:  # bad --ttl/--max-entries/store spec
        print(str(error), file=sys.stderr)
        return 2
    service_kwargs = dict(
        store=store,
        workers=args.workers,
        timeout_seconds=args.timeout,
        auth_token=auth_token,
        max_pending=max_pending,
        max_connections=args.max_connections,
        retry_policy=retry_policy,
    )
    try:
        if args.role == "coordinator":
            from repro.service.coordinator import CoordinatorService

            # Runners in one fleet usually share the coordinator's token;
            # override via the environment when they differ.
            runner_token = os.environ.get("REPRO_RUNNER_TOKEN") or auth_token
            service = CoordinatorService(
                runners=args.runner, runner_token=runner_token, **service_kwargs
            )
        else:
            service = VerificationService(**service_kwargs)
            if args.role == "runner":
                # Same service, different announced role: a runner is a single
                # node that happens to share its keyspace with a fleet.
                service.role = "runner"
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    try:
        return run_server(
            service=service,
            host=args.host,
            port=args.port,
            port_file=args.port_file,
            drain_timeout=args.drain_timeout,
            log_level=args.log_level,
            log_json=args.log_json,
        )
    finally:
        store.close()


def _sqlite_path(spec: str) -> Optional[str]:
    """The filesystem path behind a SQLite store spec; None for other backends."""
    if spec.startswith(("http://", "https://")) or spec in ("memory", "memory:", "memory://"):
        return None
    if spec.startswith("sqlite:"):
        path = spec[len("sqlite:"):]
        return path[2:] if path.startswith("//") else path
    return spec


def _open_existing_store(spec: str) -> ResultStore:
    """Open a store for inspection without creating a missing SQLite file.

    Opening a missing path would create an empty database -- for every
    inspection action that is a typo, not an intent.  Remote and in-memory
    backends have no file to guard.
    """
    path = _sqlite_path(spec)
    if path is not None and path != ":memory:" and not Path(path).is_file():
        raise StoreError(f"no result store at {path}")
    return ResultStore.from_url(spec, token=_store_token())


def _command_trace(args: argparse.Namespace) -> int:
    """Export a stored solver trace as Chrome trace-event JSON.

    The output opens directly in Perfetto (https://ui.perfetto.dev) or
    Chrome's about://tracing; ``--raw`` dumps the recorder's native form
    (seconds-based spans) instead.
    """
    spec = _resolve_store_spec(args)
    if not spec:
        print("trace needs a store: pass --store URL", file=sys.stderr)
        return 2
    try:
        store_handle = _open_existing_store(spec)
    except StoreError as error:
        print(str(error), file=sys.stderr)
        return 2
    with store_handle as store:
        result = store.get(args.fingerprint)
        if result is None:
            print(f"no stored verdict for fingerprint {args.fingerprint[:16]!r}", file=sys.stderr)
            return 2
        if result.trace is None:
            print(
                f"no trace recorded for fingerprint {args.fingerprint[:16]!r}; "
                "re-run the job with tracing on (repro batch --trace, or "
                '"trace": true in the job spec)',
                file=sys.stderr,
            )
            return 2
        payload = result.trace if args.raw else telemetry.chrome_trace(result.trace)
    rendered = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.output:
        Path(args.output).write_text(rendered)
        events = len(payload.get("traceEvents", payload.get("spans", [])))
        print(f"wrote {args.output} ({events} events)")
    else:
        print(rendered, end="")
    return 0


def _command_verify(args: argparse.Namespace) -> int:
    """Fetch a stored witness certificate and re-check it without the engine.

    Validation runs entirely in :mod:`repro.certify` -- the guards along
    the run, the witness database's theory membership, and the accepting
    evidence are re-derived from logic primitives, never by re-running the
    solver.  Exit status: 0 valid, 1 invalid, 2 not found / usage.
    """
    encoded: Optional[str] = None
    if args.url:
        from repro.service.client import ServiceClient, ServiceError

        client = ServiceClient(
            args.url, auth_token=os.environ.get("REPRO_AUTH_TOKEN") or None
        )
        try:
            payload = client.witness(args.fingerprint)
        except (ServiceError, OSError) as error:
            print(str(error), file=sys.stderr)
            return 2
        finally:
            client.close()
        encoded = payload.get("certificate") if isinstance(payload, dict) else None
    else:
        spec = _resolve_store_spec(args)
        if not spec:
            print("verify needs a source: pass --store URL or --url URL", file=sys.stderr)
            return 2
        try:
            store_handle = _open_existing_store(spec)
        except StoreError as error:
            print(str(error), file=sys.stderr)
            return 2
        with store_handle as store:
            result = store.get(args.fingerprint)
            if result is None:
                print(
                    f"no stored verdict for fingerprint {args.fingerprint[:16]!r}",
                    file=sys.stderr,
                )
                return 2
            encoded = result.certificate
    if not encoded:
        print(
            f"no witness certificate for fingerprint {args.fingerprint[:16]!r}; "
            "re-run the job with certificates on (repro batch --certificates, "
            'or "certificate": true in the job spec -- only nonempty verdicts '
            "carry a witness)",
            file=sys.stderr,
        )
        return 2
    try:
        certificate = decode_certificate(encoded)
        report = validate_certificate(certificate)
    except CertificateError as error:
        print(f"INVALID certificate for {args.fingerprint[:16]}: {error}", file=sys.stderr)
        return 1
    if args.raw:
        print(render_certificate(certificate))
    elif args.json:
        print(json.dumps({"fingerprint": args.fingerprint, "valid": True, **report}, indent=2))
    else:
        print(f"certificate OK for fingerprint {args.fingerprint[:16]}")
        for key, value in report.items():
            print(f"  {key}: {value}")
    return 0


def _command_store(args: argparse.Namespace) -> int:
    spec = _resolve_store_spec(args)
    if args.action == "serve":
        from repro.service.keyspace import run_keyspace_server

        auth_token = args.auth_token or os.environ.get("REPRO_AUTH_TOKEN") or None
        try:
            run_keyspace_server(
                spec or "memory:",
                host=args.host,
                port=args.port,
                ttl_seconds=args.ttl,
                max_entries=args.max_entries,
                auth_token=auth_token,
                port_file=args.port_file,
            )
        except (ValueError, StoreError) as error:
            print(str(error), file=sys.stderr)
            return 2
        return 0
    if not spec:
        print(f"store {args.action} needs a store: pass --store URL", file=sys.stderr)
        return 2
    try:
        store_handle = _open_existing_store(spec)
    except StoreError as error:  # missing file, or a newer schema version
        print(str(error), file=sys.stderr)
        return 2
    with store_handle as store:
        if args.action == "stats":
            export = store.export()
            nonempty = sum(1 for e in export["results"] if e["nonempty"])
            definitive_empty = sum(
                1 for e in export["results"] if not e["nonempty"] and e["exhausted"]
            )
            inconclusive = export["count"] - nonempty - definitive_empty
            print(f"store {spec}: {export['count']} results")
            print(
                f"  nonempty: {nonempty}, empty: {definitive_empty}"
                + (f", inconclusive: {inconclusive}" if inconclusive else "")
            )
            total = sum(e["elapsed_seconds"] for e in export["results"])
            print(f"  total engine seconds cached: {total:.3f}")
        elif args.action == "export":
            if args.output:
                store.export_json(args.output)
                print(f"wrote {args.output}")
            else:
                print(json.dumps(store.export(), indent=2))
        elif args.action == "clear":
            removed = store.clear()
            print(f"removed {removed} results from {spec}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Verification of database-driven systems via amalgamation",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser("demo", help="run the paper's Example 1 / Example 2")
    demo.set_defaults(handler=_command_demo)

    check = subparsers.add_parser("check", help="decide emptiness of a named example")
    check.add_argument("example", choices=sorted(EXAMPLES), help="example workload")
    check.add_argument(
        "--strategy",
        choices=STRATEGY_NAMES,
        default="bfs",
        help="frontier discipline (default: bfs)",
    )
    check.add_argument(
        "--max-configurations",
        type=int,
        default=200_000,
        help="abstract configuration cap (default: 200000)",
    )
    check.add_argument(
        "--no-caches",
        action="store_true",
        help="run on the legacy cache-free engine path",
    )
    check.add_argument("--json", action="store_true", help="statistics as JSON")
    check.set_defaults(handler=_command_check)

    batch = subparsers.add_parser(
        "batch", help="run a batch of generated workloads through the service"
    )
    batch.add_argument(
        "--count", type=int, default=50, help="number of jobs to generate (default: 50)"
    )
    batch.add_argument("--seed", type=int, default=0, help="workload generator seed (default: 0)")
    batch.add_argument("--workers", type=int, default=1, help="worker processes (default: 1)")
    batch.add_argument(
        "--families",
        default=None,
        help=f"comma-separated workload families (default: {','.join(FAMILIES)})",
    )
    batch.add_argument(
        "--store",
        default=None,
        help="result store backend URL -- sqlite:PATH, memory:, http://host:port, "
        "or a bare SQLite path (default: no persistence)",
    )
    batch.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-job wall-clock budget in seconds (Unix only)",
    )
    batch.add_argument(
        "--max-configurations",
        type=int,
        default=None,
        help="override the per-family abstract configuration caps",
    )
    batch.add_argument(
        "--trace",
        action="store_true",
        help="record a solver trace per executed job (persisted with the "
        "verdict when --store is set; export via `repro trace`)",
    )
    batch.add_argument(
        "--certificates",
        action="store_true",
        help="build a replayable witness certificate per nonempty verdict "
        "(persisted with the verdict when --store is set; re-check via "
        "`repro verify`)",
    )
    batch.add_argument(
        "--retries",
        type=int,
        default=0,
        help="extra attempts per job after a transient failure -- worker "
        "crash, deadline kill, timeout (default: 0, never retry)",
    )
    batch.add_argument("--json", action="store_true", help="full report as JSON")
    batch.set_defaults(handler=_command_batch)

    serve = subparsers.add_parser("serve", help="run the async HTTP verification service")
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    serve.add_argument(
        "--port",
        type=int,
        default=8080,
        help="bind port; 0 lets the OS pick a free one (default: 8080)",
    )
    serve.add_argument(
        "--port-file",
        default=None,
        help="write the bound port to this file once listening",
    )
    serve.add_argument(
        "--workers", type=int, default=1, help="engine worker processes (default: 1)"
    )
    serve.add_argument(
        "--role",
        choices=["single", "runner", "coordinator"],
        default="single",
        help="node role: `single` serves and executes alone; `runner` is a "
        "fleet execution node (point --store at the shared keyspace); "
        "`coordinator` executes nothing and shards jobs across --runner "
        "nodes by fingerprint (default: single)",
    )
    serve.add_argument(
        "--runner",
        action="append",
        default=None,
        metavar="URL",
        help="a runner node's base URL (repeatable; coordinator role only)",
    )
    serve.add_argument(
        "--store",
        default=None,
        help="result store backend URL -- sqlite:PATH, memory:, http://host:port "
        "of a `repro store serve` keyspace ($REPRO_STORE_TOKEN authenticates), "
        "or a bare SQLite path (default: in-memory cache)",
    )
    serve.add_argument(
        "--ttl",
        type=float,
        default=None,
        help="verdict time-to-live in seconds (default: no expiry)",
    )
    serve.add_argument(
        "--max-entries",
        type=int,
        default=None,
        help="store entry cap; oldest verdicts are evicted beyond it",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-job wall-clock budget in seconds (Unix, workers > 1 only)",
    )
    serve.add_argument(
        "--auth-token",
        default=None,
        help="require this shared-secret token on every request except "
        "/v1/healthz (default: $REPRO_AUTH_TOKEN, else no auth)",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=DEFAULT_MAX_PENDING,
        help="work-bearing requests in flight before load-shedding with 429; "
        f"0 sheds everything, -1 disables shedding (default: {DEFAULT_MAX_PENDING})",
    )
    serve.add_argument(
        "--max-connections",
        type=int,
        default=DEFAULT_MAX_CONNECTIONS,
        help="open connection cap; over-cap connects are answered 503 "
        f"(default: {DEFAULT_MAX_CONNECTIONS})",
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=0,
        help="extra attempts per job after a transient failure -- worker "
        "crash, deadline kill, timeout (default: 0, never retry)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="seconds SIGTERM/SIGINT waits for in-flight work before "
        "exiting (default: 30)",
    )
    serve.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error"],
        default=None,
        help="enable structured logs at this level (default: logging off)",
    )
    serve.add_argument(
        "--log-json",
        action="store_true",
        help="emit logs as JSON lines (implies --log-level info unless set)",
    )
    serve.set_defaults(handler=_command_serve)

    store = subparsers.add_parser("store", help="inspect, manage or serve a result store")
    store.add_argument(
        "action", choices=["stats", "export", "clear", "serve"], help="what to do"
    )
    store.add_argument(
        "--store",
        default=None,
        help="backend URL -- sqlite:PATH, memory:, http://host:port, or a "
        "bare SQLite path (for `serve`, the backing storage; default: memory:)",
    )
    store.add_argument("--db", default=None, help="deprecated alias for --store")
    store.add_argument("--output", default=None, help="file for `export` (default: stdout)")
    store.add_argument(
        "--host", default="127.0.0.1", help="`serve`: bind address (default: 127.0.0.1)"
    )
    store.add_argument(
        "--port",
        type=int,
        default=8090,
        help="`serve`: bind port; 0 lets the OS pick a free one (default: 8090)",
    )
    store.add_argument(
        "--port-file",
        default=None,
        help="`serve`: write the bound port to this file once listening",
    )
    store.add_argument(
        "--ttl",
        type=float,
        default=None,
        help="`serve`: row time-to-live in seconds, enforced server-side "
        "(default: no expiry)",
    )
    store.add_argument(
        "--max-entries",
        type=int,
        default=None,
        help="`serve`: row cap; oldest rows are evicted beyond it",
    )
    store.add_argument(
        "--auth-token",
        default=None,
        help="`serve`: require this shared-secret token on every request "
        "except /v1/ (default: $REPRO_AUTH_TOKEN, else no auth)",
    )
    store.set_defaults(handler=_command_store)

    trace = subparsers.add_parser(
        "trace", help="export a stored solver trace as Chrome trace-event JSON"
    )
    trace.add_argument("fingerprint", help="job fingerprint (full SHA-256 hex)")
    trace.add_argument(
        "--store",
        default=None,
        help="result store backend URL (sqlite:PATH, http://host:port, or a bare path)",
    )
    trace.add_argument("--db", default=None, help="deprecated alias for --store")
    trace.add_argument(
        "--output",
        default=None,
        help="file to write (default: stdout); open it in https://ui.perfetto.dev",
    )
    trace.add_argument(
        "--raw",
        action="store_true",
        help="dump the recorder's native seconds-based form instead",
    )
    trace.set_defaults(handler=_command_trace)

    verify = subparsers.add_parser(
        "verify", help="re-check a stored witness certificate without the engine"
    )
    verify.add_argument("fingerprint", help="job fingerprint (full SHA-256 hex)")
    verify.add_argument(
        "--store",
        default=None,
        help="result store backend URL (sqlite:PATH, http://host:port, or a bare path)",
    )
    verify.add_argument(
        "--url",
        default=None,
        help="fetch from a running `repro serve` endpoint's "
        "/v1/jobs/{fingerprint}/witness instead of a store "
        "($REPRO_AUTH_TOKEN authenticates)",
    )
    verify.add_argument("--json", action="store_true", help="validation report as JSON")
    verify.add_argument(
        "--raw",
        action="store_true",
        help="print the canonical certificate JSON instead of the report",
    )
    verify.set_defaults(handler=_command_verify)

    bench = subparsers.add_parser("bench", help="run the unified benchmark runner")
    bench.add_argument("--smoke", action="store_true", help="CI-sized benchmark run")
    bench.add_argument("--skip-suite", action="store_true", help="skip the pytest-benchmark phase")
    bench.add_argument(
        "--skip-engine", action="store_true", help="skip the engine comparison phase"
    )
    bench.add_argument("--skip-service", action="store_true", help="skip the batch service phase")
    bench.add_argument(
        "--skip-stress", action="store_true", help="skip the adversarial stress phase"
    )
    bench.add_argument(
        "--profile",
        metavar="WORKLOAD",
        default=None,
        help="run one engine benchmark under cProfile and print the hottest "
        "functions (e.g. bench_e2, bench_e5, stress_hom_deep, stress_tree_wide)",
    )
    bench.add_argument(
        "--profile-top",
        type=int,
        default=20,
        help="entries to print with --profile (default: 20)",
    )
    bench.set_defaults(handler=_command_bench)

    info = subparsers.add_parser("info", help="version and engine configuration")
    info.add_argument("--json", action="store_true", help="machine-readable output")
    info.set_defaults(handler=_command_info)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
