"""The ``repro`` command-line interface.

A thin operational front door to the library:

* ``repro demo`` -- run the paper's Example 1 / Example 2 end to end and
  print the verdicts with the discovered witness;
* ``repro check`` -- decide emptiness of one of the library's named example
  systems over a chosen theory and search strategy, printing statistics;
* ``repro bench`` -- shortcut to the unified benchmark runner (equivalent to
  ``python benchmarks/run_all.py`` when running from a checkout);
* ``repro info`` -- version, available strategies, cache configuration.

The CLI exists so deployments installed via ``pip install -e .`` have a
stable executable without the ``PYTHONPATH=src`` workaround.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, Tuple

from repro import (
    AllDatabasesTheory,
    EmptinessSolver,
    HomTheory,
    __version__,
    clique_template,
    odd_red_cycle_free_template,
)
from repro.fraisse.search import STRATEGY_NAMES
from repro.library import (
    odd_red_cycle_system,
    self_loop_required_system,
    triangle_system,
)
from repro.perf import cache_stats_snapshot, caches_enabled, set_caches_enabled
from repro.relational.csp import COLORED_GRAPH_SCHEMA, GRAPH_SCHEMA

#: Named example workloads: name -> (system builder, theory builder).
EXAMPLES: Dict[str, Tuple[Callable, Callable]] = {
    "odd-red-cycle": (
        odd_red_cycle_system,
        lambda: AllDatabasesTheory(COLORED_GRAPH_SCHEMA),
    ),
    "odd-red-cycle-hom": (
        odd_red_cycle_system,
        lambda: HomTheory(odd_red_cycle_free_template()),
    ),
    "triangle": (triangle_system, lambda: AllDatabasesTheory(GRAPH_SCHEMA)),
    "triangle-k2": (triangle_system, lambda: HomTheory(clique_template(2))),
    "triangle-k3": (triangle_system, lambda: HomTheory(clique_template(3))),
    "self-loop": (self_loop_required_system, lambda: AllDatabasesTheory(GRAPH_SCHEMA)),
}


def _command_demo(args: argparse.Namespace) -> int:
    system = odd_red_cycle_system()
    all_result = EmptinessSolver(AllDatabasesTheory(COLORED_GRAPH_SCHEMA)).check(system)
    print("Example 1 (all databases):", "nonempty" if all_result.nonempty else "empty")
    if all_result.witness_database is not None:
        print("  witness database:")
        for line in all_result.witness_database.describe().splitlines():
            print("   ", line)
    hom_result = EmptinessSolver(HomTheory(odd_red_cycle_free_template())).check(system)
    print("Example 2 (HOM template):", "nonempty" if hom_result.nonempty else "empty")
    return 0


def _command_check(args: argparse.Namespace) -> int:
    try:
        system_builder, theory_builder = EXAMPLES[args.example]
    except KeyError:
        print(
            f"unknown example {args.example!r}; available: {', '.join(sorted(EXAMPLES))}",
            file=sys.stderr,
        )
        return 2
    if args.no_caches:
        set_caches_enabled(False)
    solver = EmptinessSolver(
        theory_builder(),
        max_configurations=args.max_configurations,
        strategy=args.strategy,
    )
    result = solver.check(system_builder())
    print(f"{args.example}: {'nonempty' if result.nonempty else 'empty'}")
    if not result.exhausted:
        print("  (search interrupted by the configuration cap; verdict not definitive)")
    if args.json:
        print(json.dumps(result.statistics.as_dict(), indent=2))
    else:
        for key, value in result.statistics.as_dict().items():
            print(f"  {key}: {value}")
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    try:
        from benchmarks.run_all import main as bench_main  # type: ignore
    except ImportError:
        print(
            "the benchmark runner ships with the repository checkout; run "
            "`python benchmarks/run_all.py` from the repo root instead",
            file=sys.stderr,
        )
        return 2
    forwarded = []
    if args.smoke:
        forwarded.append("--smoke")
    if args.skip_suite:
        forwarded.append("--skip-suite")
    return bench_main(forwarded)


def _command_info(args: argparse.Namespace) -> int:
    print(f"repro {__version__}")
    print(f"  search strategies: {', '.join(STRATEGY_NAMES)}")
    print(f"  engine caches enabled: {caches_enabled()}")
    stats = {
        name: values
        for name, values in cache_stats_snapshot().items()
        if values["hits"] + values["misses"] > 0
    }
    if stats:
        print("  cache stats:")
        for name, values in stats.items():
            print(f"    {name}: {values}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Verification of database-driven systems via amalgamation",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser("demo", help="run the paper's Example 1 / Example 2")
    demo.set_defaults(handler=_command_demo)

    check = subparsers.add_parser("check", help="decide emptiness of a named example")
    check.add_argument("example", choices=sorted(EXAMPLES), help="example workload")
    check.add_argument(
        "--strategy",
        choices=STRATEGY_NAMES,
        default="bfs",
        help="frontier discipline (default: bfs)",
    )
    check.add_argument(
        "--max-configurations",
        type=int,
        default=200_000,
        help="abstract configuration cap (default: 200000)",
    )
    check.add_argument(
        "--no-caches",
        action="store_true",
        help="run on the legacy cache-free engine path",
    )
    check.add_argument("--json", action="store_true", help="statistics as JSON")
    check.set_defaults(handler=_command_check)

    bench = subparsers.add_parser("bench", help="run the unified benchmark runner")
    bench.add_argument("--smoke", action="store_true", help="CI-sized benchmark run")
    bench.add_argument(
        "--skip-suite", action="store_true", help="engine comparison only"
    )
    bench.set_defaults(handler=_command_bench)

    info = subparsers.add_parser("info", help="version and engine configuration")
    info.set_defaults(handler=_command_info)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
