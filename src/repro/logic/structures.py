"""Finite structures (databases) over a schema.

A :class:`Structure` interprets every relation symbol of its schema as a set
of tuples over its domain and every function symbol as a total function from
tuples to domain elements.  Following Section 2 of the paper, a *database* is
simply a finite structure over a finite schema.

Design notes
------------
* Structures are value objects: the mutating-looking helpers (``with_element``,
  ``with_tuple`` ...) return new structures and never modify the receiver.
  This keeps solver code free of aliasing surprises at the price of copies,
  which is fine at the sizes we manipulate (register-generated substructures
  have a handful of elements).
* Because structures are immutable, every per-structure cache (hash, digest,
  closure results, the element-to-tuples index) is valid for the lifetime of
  the object; the ``with_*`` helpers return *new* structures whose caches
  start empty, which is what "invalidated on mutation" means here.
* Domain elements may be arbitrary hashable Python values.  The library uses
  integers, strings and small tuples (for tree nodes and data-valued
  elements).
* ``substructure`` always means *induced* substructure closed under the
  function symbols, exactly as in the paper.
"""

from __future__ import annotations

import itertools
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import StructureError
from repro.logic.schema import Schema
from repro.perf import BoundedCache, caches_enabled

Element = Any
TupleOfElements = Tuple[Element, ...]


class Structure:
    """A finite structure (database) over a :class:`Schema`."""

    __slots__ = (
        "_schema",
        "_domain",
        "_relations",
        "_functions",
        "_hash",
        "_canonical_key",
        "_closure_cache",
        "_touching",
    )

    def __init__(
        self,
        schema: Schema,
        domain: Iterable[Element],
        relations: Mapping[str, Iterable[Sequence[Element]]] = (),
        functions: Mapping[str, Mapping[Sequence[Element], Element]] = (),
        validate: bool = True,
    ) -> None:
        self._schema = schema
        self._domain: FrozenSet[Element] = frozenset(domain)
        rels: Dict[str, FrozenSet[TupleOfElements]] = {}
        for name in schema.relation_names:
            rels[name] = frozenset()
        for name, tuples in dict(relations).items():
            if not schema.has_relation(name):
                raise StructureError(f"relation {name!r} not in schema {schema!r}")
            rels[name] = frozenset(tuple(t) for t in tuples)
        funcs: Dict[str, Dict[TupleOfElements, Element]] = {}
        for name in schema.function_names:
            funcs[name] = {}
        for name, table in dict(functions).items():
            if not schema.has_function(name):
                raise StructureError(f"function {name!r} not in schema {schema!r}")
            funcs[name] = {tuple(k): v for k, v in dict(table).items()}
        self._relations = rels
        self._functions = funcs
        self._hash: Optional[int] = None
        self._canonical_key: Optional[tuple] = None
        self._closure_cache: Optional[Dict[FrozenSet[Element], FrozenSet[Element]]] = None
        self._touching: Optional[Dict[Element, tuple]] = None
        if validate:
            self._validate()

    # -- validation --------------------------------------------------------

    def _validate(self) -> None:
        for name, tuples in self._relations.items():
            arity = self._schema.relation(name).arity
            for t in tuples:
                if len(t) != arity:
                    raise StructureError(f"tuple {t!r} has wrong arity for relation {name!r}")
                for e in t:
                    if e not in self._domain:
                        raise StructureError(
                            f"tuple {t!r} of relation {name!r} mentions "
                            f"element {e!r} outside the domain"
                        )
        for name, table in self._functions.items():
            arity = self._schema.function(name).arity
            expected = set(itertools.product(sorted_key_list(self._domain), repeat=arity))
            seen = set(table)
            if seen != expected:
                missing = expected - seen
                extra = seen - expected
                raise StructureError(
                    f"function {name!r} must be total over the domain; "
                    f"missing {len(missing)} entries, {len(extra)} spurious entries"
                )
            for args, value in table.items():
                if value not in self._domain:
                    raise StructureError(
                        f"function {name!r} maps {args!r} to {value!r} outside the domain"
                    )

    # -- basic accessors ----------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def domain(self) -> FrozenSet[Element]:
        return self._domain

    @property
    def size(self) -> int:
        return len(self._domain)

    def relation(self, name: str) -> FrozenSet[TupleOfElements]:
        """The set of tuples interpreting a relation symbol."""
        try:
            return self._relations[name]
        except KeyError:
            raise StructureError(f"relation {name!r} not in schema") from None

    def function(self, name: str) -> Mapping[TupleOfElements, Element]:
        """The (total) graph of a function symbol."""
        try:
            return self._functions[name]
        except KeyError:
            raise StructureError(f"function {name!r} not in schema") from None

    def holds(self, name: str, *args: Element) -> bool:
        """True if the relation ``name`` holds of ``args``."""
        return tuple(args) in self.relation(name)

    def apply(self, name: str, *args: Element) -> Element:
        """Apply the function ``name`` to ``args``."""
        table = self.function(name)
        try:
            return table[tuple(args)]
        except KeyError:
            raise StructureError(
                f"function {name!r} undefined on {args!r} (not a total table?)"
            ) from None

    def __contains__(self, element: object) -> bool:
        return element in self._domain

    def __len__(self) -> int:
        return len(self._domain)

    def __iter__(self) -> Iterator[Element]:
        return iter(self._domain)

    # -- equality / hashing -------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Structure):
            return NotImplemented
        return (
            self._schema == other._schema
            and self._domain == other._domain
            and self._relations == other._relations
            and self._functions == other._functions
        )

    def __hash__(self) -> int:
        if self._hash is None:
            rel_part = tuple(
                (name, frozenset(tuples)) for name, tuples in sorted(self._relations.items())
            )
            fun_part = tuple(
                (name, frozenset(table.items())) for name, table in sorted(self._functions.items())
            )
            self._hash = hash((self._schema, self._domain, rel_part, fun_part))
        return self._hash

    def __repr__(self) -> str:
        return (
            f"Structure(|dom|={len(self._domain)}, "
            "relations={"
            + ", ".join(f"{n}:{len(t)}" for n, t in sorted(self._relations.items()))
            + "}, "
            f"functions={sorted(self._functions)})"
        )

    # -- serialization -------------------------------------------------------

    def to_spec(self) -> Dict[str, Any]:
        """A JSON-safe, canonically ordered description of the structure.

        Only structures whose elements are ints or strings can be serialized
        (which covers every structure the workload generator and the HOM
        templates produce).  The rendering is canonical -- domain and tuples
        in :func:`sorted_key_list` order -- so equal structures always render
        to the same spec, which is what makes job fingerprints stable across
        processes.  Round-trips through :meth:`from_spec`.
        """
        for element in self._domain:
            if not isinstance(element, (int, str)):
                raise StructureError(
                    f"element {element!r} is not JSON-serializable; "
                    "specs support int and str elements only"
                )
        relations = {
            name: [list(t) for t in sorted_key_list(self._relations[name])]
            for name in self._schema.relation_names
        }
        def args_key(item):
            args, _ = item
            return tuple((isinstance(e, str), e) for e in args)

        functions = {
            name: [
                [list(args), value]
                for args, value in sorted(self._functions[name].items(), key=args_key)
            ]
            for name in self._schema.function_names
        }
        return {
            "schema": self._schema.to_spec(),
            "domain": sorted_key_list(self._domain),
            "relations": relations,
            "functions": functions,
        }

    @classmethod
    def from_spec(cls, spec: Mapping[str, Any]) -> "Structure":
        """Rebuild a structure from :meth:`to_spec` output."""
        schema = Schema.from_spec(spec["schema"])
        relations = {
            name: [tuple(t) for t in tuples] for name, tuples in spec.get("relations", {}).items()
        }
        functions = {
            name: {tuple(args): value for args, value in table}
            for name, table in spec.get("functions", {}).items()
        }
        return cls(
            schema,
            spec["domain"],
            relations=relations,
            functions=functions,
        )

    # -- construction helpers ------------------------------------------------

    def with_element(self, element: Element) -> "Structure":
        """Add an element to the domain (functions must then be re-totalised).

        Only valid for relational schemas, or when the caller subsequently
        provides function values through :meth:`with_function_value` before
        the structure is validated again.  For relational schemas this is
        always safe.
        """
        if not self._schema.is_relational:
            raise StructureError(
                "with_element is only supported on relational schemas; "
                "use Structure(...) with full function tables instead"
            )
        if element in self._domain:
            return self
        return Structure(
            self._schema,
            set(self._domain) | {element},
            relations={n: set(t) for n, t in self._relations.items()},
            validate=False,
        )

    def with_elements(self, elements: Iterable[Element]) -> "Structure":
        result = self
        for element in elements:
            result = result.with_element(element)
        return result

    def with_tuple(self, relation: str, *args: Element) -> "Structure":
        """Add one tuple to a relation (elements must already be in the domain)."""
        arity = self._schema.relation(relation).arity
        if len(args) != arity:
            raise StructureError(
                f"relation {relation!r} expects {arity} arguments, got {len(args)}"
            )
        for e in args:
            if e not in self._domain:
                raise StructureError(f"element {e!r} not in the domain")
        rels = {n: set(t) for n, t in self._relations.items()}
        rels[relation].add(tuple(args))
        return Structure(
            self._schema,
            self._domain,
            relations=rels,
            functions={n: dict(t) for n, t in self._functions.items()},
            validate=False,
        )

    def without_tuple(self, relation: str, *args: Element) -> "Structure":
        """Remove one tuple from a relation (missing tuples are ignored)."""
        rels = {n: set(t) for n, t in self._relations.items()}
        rels[relation].discard(tuple(args))
        return Structure(
            self._schema,
            self._domain,
            relations=rels,
            functions={n: dict(t) for n, t in self._functions.items()},
            validate=False,
        )

    def with_relation(self, relation: str, tuples: Iterable[Sequence[Element]]) -> "Structure":
        """Replace the whole interpretation of one relation symbol."""
        rels = {n: set(t) for n, t in self._relations.items()}
        rels[relation] = {tuple(t) for t in tuples}
        return Structure(
            self._schema,
            self._domain,
            relations=rels,
            functions={n: dict(t) for n, t in self._functions.items()},
            validate=True,
        )

    # -- substructures -------------------------------------------------------

    def is_closed(self, subset: Iterable[Element]) -> bool:
        """True if ``subset`` is closed under all function symbols."""
        sub = set(subset)
        for name in self._schema.function_names:
            arity = self._schema.function(name).arity
            for args in itertools.product(sorted_key_list(sub), repeat=arity):
                if self.apply(name, *args) not in sub:
                    return False
        return True

    def closure(self, subset: Iterable[Element]) -> FrozenSet[Element]:
        """The least superset of ``subset`` closed under the function symbols.

        This is the set generated by ``subset`` in the sense of Section 4.1.
        Results are memoised per structure (structures are immutable, so the
        cache can never go stale); for purely relational schemas the closure
        is the subset itself and is returned without touching the cache.
        """
        closed: Set[Element] = set(subset)
        for e in closed:
            if e not in self._domain:
                raise StructureError(f"element {e!r} not in the domain")
        if not self._functions:
            return frozenset(closed)
        generators = frozenset(closed)
        if caches_enabled():
            if self._closure_cache is None:
                self._closure_cache = {}
            cached = self._closure_cache.get(generators)
            if cached is not None:
                return cached
        changed = True
        while changed:
            changed = False
            for name in self._schema.function_names:
                arity = self._schema.function(name).arity
                for args in itertools.product(sorted_key_list(closed), repeat=arity):
                    value = self.apply(name, *args)
                    if value not in closed:
                        closed.add(value)
                        changed = True
        result = frozenset(closed)
        if caches_enabled() and self._closure_cache is not None:
            self._closure_cache[generators] = result
        return result

    def restrict(self, subset: Iterable[Element]) -> "Structure":
        """The induced substructure on ``subset`` (must be function-closed)."""
        sub = frozenset(subset)
        for e in sub:
            if e not in self._domain:
                raise StructureError(f"element {e!r} not in the domain")
        if not self.is_closed(sub):
            raise StructureError(
                "subset is not closed under the function symbols; "
                "use generated_substructure to close it first"
            )
        relations = {
            name: {t for t in tuples if all(e in sub for e in t)}
            for name, tuples in self._relations.items()
        }
        functions = {
            name: {
                args: value
                for args, value in table.items()
                if all(e in sub for e in args)
            }
            for name, table in self._functions.items()
        }
        return Structure(
            self._schema, sub, relations=relations, functions=functions, validate=False
        )

    def generated_substructure(self, generators: Iterable[Element]) -> "Structure":
        """The substructure generated by ``generators`` (Section 4.1)."""
        return self.restrict(self.closure(generators))

    def is_substructure_of(self, other: "Structure") -> bool:
        """True if ``self`` is an induced substructure of ``other``.

        Both structures must share a schema and the inclusion map of the
        domains must be an embedding (relations and functions agree on the
        common elements, and the relations of ``self`` are exactly the
        restriction of those of ``other``).
        """
        if self._schema != other._schema:
            return False
        if not self._domain <= other._domain:
            return False
        for name, tuples in self._relations.items():
            other_restricted = {
                t for t in other.relation(name) if all(e in self._domain for e in t)
            }
            if tuples != other_restricted:
                return False
        for name, table in self._functions.items():
            for args, value in table.items():
                if other.apply(name, *args) != value:
                    return False
        return True

    # -- projections and unions ----------------------------------------------

    def project(self, schema: Schema) -> "Structure":
        """The sigma-projection of Section 4.2: forget symbols outside ``schema``."""
        if not schema.is_subschema_of(self._schema):
            raise StructureError("projection target is not a subschema")
        return Structure(
            schema,
            self._domain,
            relations={n: self._relations[n] for n in schema.relation_names},
            functions={n: dict(self._functions[n]) for n in schema.function_names},
            validate=False,
        )

    def expand(
        self,
        schema: Schema,
        relations: Mapping[str, Iterable[Sequence[Element]]] = (),
        functions: Mapping[str, Mapping[Sequence[Element], Element]] = (),
    ) -> "Structure":
        """Expand to a larger schema, supplying interpretations for new symbols."""
        if not self._schema.is_subschema_of(schema):
            raise StructureError("expansion target must contain the current schema")
        rels: Dict[str, Iterable[Sequence[Element]]] = {
            n: self._relations[n] for n in self._schema.relation_names
        }
        funcs: Dict[str, Mapping[Sequence[Element], Element]] = {
            n: self._functions[n] for n in self._schema.function_names
        }
        rels.update({n: list(t) for n, t in dict(relations).items()})
        funcs.update({n: dict(t) for n, t in dict(functions).items()})
        return Structure(schema, self._domain, relations=rels, functions=funcs)

    def rename(self, mapping: Mapping[Element, Element]) -> "Structure":
        """Rename domain elements via an injective mapping."""
        def conv(e: Element) -> Element:
            return mapping.get(e, e)

        new_domain = [conv(e) for e in self._domain]
        if len(set(new_domain)) != len(self._domain):
            raise StructureError("renaming must be injective on the domain")
        relations = {
            name: {tuple(conv(e) for e in t) for t in tuples}
            for name, tuples in self._relations.items()
        }
        functions = {
            name: {tuple(conv(e) for e in args): conv(v) for args, v in table.items()}
            for name, table in self._functions.items()
        }
        return Structure(
            self._schema,
            new_domain,
            relations=relations,
            functions=functions,
            validate=False,
        )

    def disjoint_union(self, other: "Structure") -> "Structure":
        """Disjoint union, tagging elements with 0 / 1 to keep them apart.

        Only supported for relational schemas (the paper only takes disjoint
        unions of purely relational run databases after dropping functions, or
        handles the function case separately inside the word/tree theories).
        """
        if self._schema != other._schema:
            raise StructureError("disjoint union requires identical schemas")
        if not self._schema.is_relational:
            raise StructureError("disjoint union is only supported on relational schemas")
        left = self.rename({e: (0, e) for e in self._domain})
        right = other.rename({e: (1, e) for e in other._domain})
        relations = {
            name: set(left.relation(name)) | set(right.relation(name))
            for name in self._schema.relation_names
        }
        return Structure(
            self._schema,
            set(left.domain) | set(right.domain),
            relations=relations,
            validate=False,
        )

    # -- canonical forms and indexes ------------------------------------------

    def canonical_key(self) -> tuple:
        """A stable, hashable canonical description of this structure.

        Two structures get the same key iff they are equal (same schema, same
        domain, same interpretations) -- the key is the content of the
        structure rendered in a deterministic order, independent of the
        insertion order of tuples or the identity of the containers.  It is
        the interning key of :class:`StructureInterner` and a convenient
        dictionary key for per-structure memo tables.  Computed once and
        cached (structures are immutable).
        """
        if self._canonical_key is None:
            relation_part = tuple(
                (name, tuple(sorted(self._relations[name], key=repr)))
                for name in self._schema.relation_names
            )
            function_part = tuple(
                (name, tuple(sorted(self._functions[name].items(), key=repr)))
                for name in self._schema.function_names
            )
            self._canonical_key = (
                hash(self._schema),
                tuple(sorted_key_list(self._domain)),
                relation_part,
                function_part,
            )
        return self._canonical_key

    def has_tuple_index(self) -> bool:
        """Whether the element-to-tuples index has already been built.

        Callers that would use the index exactly once (throwaway structures)
        should check this and fall back to a plain scan: building the index
        costs more than one scan and only pays off when the structure is
        queried repeatedly.
        """
        return self._touching is not None

    def ensure_tuple_index(self) -> "Structure":
        """Build the element-to-tuples index now (returns self for chaining).

        Called by owners that know the structure will serve many
        canonical-key queries (e.g. a cached run-database view).
        """
        if self._touching is None:
            self.tuples_touching(_INDEX_PRIME)
        return self

    def tuples_touching(self, element: Element) -> Tuple[Tuple[str, TupleOfElements], ...]:
        """All ``(relation, tuple)`` facts mentioning ``element``.

        Backed by a lazily-built per-structure index (see
        :meth:`has_tuple_index`), so repeated canonical-key construction
        over small generated substructures of one database does not rescan
        every tuple per call (the pre-refactor hot spot for cached word-run
        views).
        """
        if self._touching is None:
            index: Dict[Element, List[Tuple[str, TupleOfElements]]] = {}
            for name, tuples in self._relations.items():
                for t in tuples:
                    for e in set(t):
                        index.setdefault(e, []).append((name, t))
            self._touching = {e: tuple(facts) for e, facts in index.items()}
        return self._touching.get(element, ())

    # -- statistics -----------------------------------------------------------

    def tuple_count(self) -> int:
        """Total number of relation tuples (a cheap size proxy for reports)."""
        return sum(len(t) for t in self._relations.values())

    def describe(self) -> str:
        """A human-readable multi-line description (used by examples)."""
        lines = [f"domain ({len(self._domain)}): {sorted_key_list(self._domain)}"]
        for name in self._schema.relation_names:
            tuples = sorted(self._relations[name], key=repr)
            lines.append(f"{name}: {tuples}")
        for name in self._schema.function_names:
            table = self._functions[name]
            entries = ", ".join(
                f"{args}->{value!r}" for args, value in sorted(table.items(), key=repr)
            )
            lines.append(f"{name}(): {entries}")
        return "\n".join(lines)


#: Sentinel element used by ensure_tuple_index to force the index build.
_INDEX_PRIME = object()


def sorted_key_list(elements: Iterable[Element]) -> list:
    """Sort arbitrary hashable elements deterministically (by repr fallback)."""
    try:
        return sorted(elements)
    except TypeError:
        return sorted(elements, key=repr)


def empty_structure(schema: Schema) -> Structure:
    """The empty structure over a schema with no constants."""
    if any(schema.function(n).arity == 0 for n in schema.function_names):
        raise StructureError("schemas with constants have no empty structure")
    return Structure(schema, ())


def singleton_structure(schema: Schema, element: Element = 0) -> Structure:
    """A one-element structure; all functions map to the single element."""
    functions = {}
    for name in schema.function_names:
        arity = schema.function(name).arity
        functions[name] = {(element,) * arity: element}
    return Structure(schema, [element], functions=functions)


# -- isomorphism-canonical forms and hash-consing ------------------------------


def _invariant_signature(structure: Structure, element: Element) -> tuple:
    """An isomorphism-invariant local signature of one element.

    Records, per relation symbol and argument position, how many tuples the
    element appears in, plus the function symbols it participates in.  Used
    to cut the permutation search of :func:`isomorphism_key` down to
    signature-preserving bijections.
    """
    parts: List[tuple] = []
    for name in structure.schema.relation_names:
        counts = [0] * structure.schema.relation(name).arity
        for t in structure.relation(name):
            for position, e in enumerate(t):
                if e == element:
                    counts[position] += 1
        parts.append((name, tuple(counts)))
    for name in structure.schema.function_names:
        in_args = 0
        as_value = 0
        for args, value in structure.function(name).items():
            if element in args:
                in_args += 1
            if value == element:
                as_value += 1
        parts.append((name, (in_args, as_value)))
    return tuple(parts)


def isomorphism_key(structure: Structure, max_size: int = 8) -> tuple:
    """A canonical key equal for isomorphic structures (small structures).

    Elements are renamed to ``0..n-1``; among all signature-preserving
    renamings the lexicographically least encoding is returned, so two
    isomorphic structures always produce the same key.  The search is
    exponential in the worst case, which is fine for the register-generated
    substructures the solvers intern (their size is bounded by the register
    count and the class blowup); beyond ``max_size`` elements the key falls
    back to the labelled :meth:`Structure.canonical_key` (still deterministic,
    but only equal for *equal* structures), tagged so the two regimes can
    never collide.
    """
    elements = sorted_key_list(structure.domain)
    if len(elements) > max_size:
        return ("labelled", structure.canonical_key())

    groups: Dict[tuple, List[Element]] = {}
    for element in elements:
        groups.setdefault(_invariant_signature(structure, element), []).append(element)
    ordered_groups = [groups[s] for s in sorted(groups)]

    def encode(index_of: Dict[Element, int]) -> tuple:
        relation_part = tuple(
            tuple(sorted(tuple(index_of[e] for e in t) for t in structure.relation(name)))
            for name in structure.schema.relation_names
        )
        function_part = tuple(
            tuple(
                sorted(
                    (tuple(index_of[e] for e in args), index_of[value])
                    for args, value in structure.function(name).items()
                )
            )
            for name in structure.schema.function_names
        )
        return (relation_part, function_part)

    best: Optional[tuple] = None
    for group_orders in itertools.product(
        *(itertools.permutations(group) for group in ordered_groups)
    ):
        index_of: Dict[Element, int] = {}
        for group in group_orders:
            for element in group:
                index_of[element] = len(index_of)
        candidate = encode(index_of)
        if best is None or candidate < best:
            best = candidate
    signature_part = tuple(sorted((s, len(g)) for s, g in groups.items()))
    return ("canonical", hash(structure.schema), signature_part, best)


class StructureInterner:
    """Hash-consing of structures: one shared instance per canonical content.

    Solvers produce large numbers of equal (and often isomorphic) small
    structures while enumerating sub-transitions.  Interning maps each of
    them to a single representative, so downstream hashing, equality checks
    and per-structure caches (closure, tuple index) are paid once per
    distinct structure instead of once per copy.

    By default structures are deduplicated by *equality* (labelled canonical
    key).  ``up_to_isomorphism=True`` additionally folds isomorphic small
    structures onto one representative -- only sound for callers that treat
    structures up to isomorphism, e.g. membership caches.
    """

    def __init__(
        self,
        name: str = "structure_interner",
        up_to_isomorphism: bool = False,
        max_iso_size: int = 8,
        cap: int = 1 << 16,
    ) -> None:
        self._cache = BoundedCache(name, cap=cap)
        self._up_to_isomorphism = up_to_isomorphism
        self._max_iso_size = max_iso_size

    def intern(self, structure: Structure) -> Structure:
        """The shared representative of ``structure`` (itself on first sight)."""
        if not caches_enabled():
            return structure
        if self._up_to_isomorphism:
            key = isomorphism_key(structure, max_size=self._max_iso_size)
        else:
            key = structure.canonical_key()
        representative = self._cache.get(key)
        if representative is not None:
            return representative
        self._cache.put(key, structure)
        return structure

    @property
    def stats(self):
        return self._cache.stats


#: The default interner used by the theories' sub-transition enumeration.
DEFAULT_INTERNER = StructureInterner("witness_interner")


def intern_structure(structure: Structure) -> Structure:
    """Intern through the process-wide default interner."""
    return DEFAULT_INTERNER.intern(structure)
