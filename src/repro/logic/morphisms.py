"""Homomorphisms, embeddings, isomorphisms between finite structures.

These are the maps of Section 2 of the paper:

* a *homomorphism* preserves relations and functions,
* an *embedding* is an isomorphism onto the induced substructure of its image
  (so it is injective, preserves and reflects relations, and commutes with
  functions),
* an *isomorphism* is a bijective embedding.

Finding such maps is NP-hard in general; the backtracking searches below are
meant for the small structures manipulated by the solvers and the test-suite
(register-generated substructures, templates, sampled random graphs), where
they are more than fast enough.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, Mapping, Optional

from repro.logic.structures import Element, Structure, sorted_key_list


def is_homomorphism(
    mapping: Mapping[Element, Element], source: Structure, target: Structure
) -> bool:
    """Check that ``mapping`` is a homomorphism from ``source`` to ``target``."""
    if source.schema != target.schema:
        return False
    if set(mapping) != set(source.domain):
        return False
    if any(v not in target.domain for v in mapping.values()):
        return False
    for name in source.schema.relation_names:
        for t in source.relation(name):
            image = tuple(mapping[e] for e in t)
            if image not in target.relation(name):
                return False
    for name in source.schema.function_names:
        for args, value in source.function(name).items():
            image_args = tuple(mapping[e] for e in args)
            if target.apply(name, *image_args) != mapping[value]:
                return False
    return True


def is_embedding(mapping: Mapping[Element, Element], source: Structure, target: Structure) -> bool:
    """Check that ``mapping`` is an embedding (injective, reflects relations)."""
    if not is_homomorphism(mapping, source, target):
        return False
    values = list(mapping.values())
    if len(set(values)) != len(values):
        return False
    image = set(values)
    inverse = {v: k for k, v in mapping.items()}
    for name in source.schema.relation_names:
        for t in target.relation(name):
            if all(e in image for e in t):
                preimage = tuple(inverse[e] for e in t)
                if preimage not in source.relation(name):
                    return False
    # Function closure of the image: the image of an embedding must be an
    # induced substructure, hence closed under functions.
    for name in source.schema.function_names:
        arity = source.schema.function(name).arity
        for args in itertools.product(sorted_key_list(image), repeat=arity):
            if target.apply(name, *args) not in image:
                return False
    return True


def is_isomorphism(
    mapping: Mapping[Element, Element], source: Structure, target: Structure
) -> bool:
    """Check that ``mapping`` is an isomorphism from ``source`` onto ``target``."""
    if len(source.domain) != len(target.domain):
        return False
    if set(mapping.values()) != set(target.domain):
        return False
    return is_embedding(mapping, source, target)


def _relation_profiles(structure: Structure) -> Dict[Element, tuple]:
    """A cheap per-element invariant used to prune the backtracking search."""
    profile: Dict[Element, list] = {e: [] for e in structure.domain}
    for name in structure.schema.relation_names:
        counts: Dict[Element, int] = {e: 0 for e in structure.domain}
        for t in structure.relation(name):
            for e in t:
                counts[e] += 1
        for e in structure.domain:
            profile[e].append(counts[e])
    return {e: tuple(v) for e, v in profile.items()}


def find_homomorphisms(
    source: Structure,
    target: Structure,
    partial: Optional[Mapping[Element, Element]] = None,
    injective: bool = False,
) -> Iterator[Dict[Element, Element]]:
    """Enumerate homomorphisms from ``source`` to ``target``.

    ``partial`` fixes the image of some elements in advance (used e.g. to
    enforce that colour predicates are respected).  With ``injective=True``
    only injective homomorphisms are produced.
    """
    if source.schema != target.schema:
        return
    elements = sorted_key_list(source.domain)
    fixed: Dict[Element, Element] = dict(partial or {})
    for key, value in fixed.items():
        if key not in source.domain or value not in target.domain:
            return
    targets = sorted_key_list(target.domain)

    def consistent(mapping: Dict[Element, Element]) -> bool:
        assigned = set(mapping)
        for name in source.schema.relation_names:
            for t in source.relation(name):
                if all(e in assigned for e in t):
                    if tuple(mapping[e] for e in t) not in target.relation(name):
                        return False
        for name in source.schema.function_names:
            for args, value in source.function(name).items():
                if all(e in assigned for e in args) and value in assigned:
                    image_args = tuple(mapping[e] for e in args)
                    if target.apply(name, *image_args) != mapping[value]:
                        return False
        return True

    def backtrack(index: int, mapping: Dict[Element, Element]) -> Iterator[Dict[Element, Element]]:
        if index == len(elements):
            yield dict(mapping)
            return
        element = elements[index]
        if element in mapping:
            yield from backtrack(index + 1, mapping)
            return
        used = set(mapping.values())
        for candidate in targets:
            if injective and candidate in used:
                continue
            mapping[element] = candidate
            if consistent(mapping):
                yield from backtrack(index + 1, mapping)
            del mapping[element]

    if not consistent(fixed):
        return
    yield from backtrack(0, dict(fixed))


def find_homomorphism(
    source: Structure,
    target: Structure,
    partial: Optional[Mapping[Element, Element]] = None,
    injective: bool = False,
) -> Optional[Dict[Element, Element]]:
    """The first homomorphism found, or ``None``."""
    for mapping in find_homomorphisms(source, target, partial=partial, injective=injective):
        return mapping
    return None


def find_embeddings(
    source: Structure,
    target: Structure,
    partial: Optional[Mapping[Element, Element]] = None,
) -> Iterator[Dict[Element, Element]]:
    """Enumerate embeddings of ``source`` into ``target``."""
    source_profiles = _relation_profiles(source)
    target_profiles = _relation_profiles(target)
    for mapping in find_homomorphisms(source, target, partial=partial, injective=True):
        # Quick necessary condition before the full (quadratic) reflection check.
        if any(source_profiles[e] > target_profiles[mapping[e]] for e in source.domain):
            continue
        if is_embedding(mapping, source, target):
            yield mapping


def find_embedding(
    source: Structure,
    target: Structure,
    partial: Optional[Mapping[Element, Element]] = None,
) -> Optional[Dict[Element, Element]]:
    for mapping in find_embeddings(source, target, partial=partial):
        return mapping
    return None


def embeds_into(source: Structure, target: Structure) -> bool:
    """True if some embedding of ``source`` into ``target`` exists."""
    return find_embedding(source, target) is not None


def are_isomorphic(left: Structure, right: Structure) -> bool:
    """True if the two structures are isomorphic."""
    if left.schema != right.schema or len(left.domain) != len(right.domain):
        return False
    for name in left.schema.relation_names:
        if len(left.relation(name)) != len(right.relation(name)):
            return False
    for mapping in find_embeddings(left, right):
        if len(set(mapping.values())) == len(right.domain):
            return True
    return False


def automorphisms(structure: Structure) -> Iterator[Dict[Element, Element]]:
    """Enumerate the automorphisms of a structure."""
    for mapping in find_embeddings(structure, structure):
        if set(mapping.values()) == set(structure.domain):
            yield mapping
