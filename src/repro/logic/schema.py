"""Schemas: finite sets of relation and function symbols with arities.

A *schema* (called a signature in model theory) lists the symbols a database
may interpret.  Following Section 2 of the paper, a schema may contain both
relation symbols and function symbols; constant symbols are 0-ary functions.

The class is deliberately small and immutable: schemas are shared freely
between structures, formulas and database theories, and are hashed so they
can key caches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple

from repro.errors import SchemaError


@dataclass(frozen=True)
class RelationSymbol:
    """A named relation symbol with a fixed arity (arity >= 1)."""

    name: str
    arity: int

    def __post_init__(self) -> None:
        if self.arity < 1:
            raise SchemaError(
                f"relation symbol {self.name!r} must have arity >= 1, got {self.arity}"
            )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}/{self.arity}"


@dataclass(frozen=True)
class FunctionSymbol:
    """A named function symbol with a fixed arity (arity >= 0).

    0-ary function symbols are constants.
    """

    name: str
    arity: int

    def __post_init__(self) -> None:
        if self.arity < 0:
            raise SchemaError(
                f"function symbol {self.name!r} must have arity >= 0, got {self.arity}"
            )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}/{self.arity} (function)"


class Schema:
    """An immutable collection of relation and function symbols.

    Symbols are addressed by name; a name may not simultaneously denote a
    relation and a function.

    Examples
    --------
    >>> graphs = Schema.relational(E=2, red=1)
    >>> graphs.relation("E").arity
    2
    >>> trees = Schema(relations={"doc": 2, "desc": 2}, functions={"cca": 2})
    >>> trees.is_relational
    False
    """

    __slots__ = ("_relations", "_functions", "_hash", "_relation_names", "_function_names")

    def __init__(
        self,
        relations: Mapping[str, int] = (),
        functions: Mapping[str, int] = (),
    ) -> None:
        rels: Dict[str, RelationSymbol] = {}
        funcs: Dict[str, FunctionSymbol] = {}
        for name, arity in dict(relations).items():
            rels[name] = RelationSymbol(name, arity)
        for name, arity in dict(functions).items():
            if name in rels:
                raise SchemaError(f"symbol {name!r} declared both as a relation and a function")
            funcs[name] = FunctionSymbol(name, arity)
        self._relations: Dict[str, RelationSymbol] = rels
        self._functions: Dict[str, FunctionSymbol] = funcs
        self._relation_names: Tuple[str, ...] = tuple(sorted(rels))
        self._function_names: Tuple[str, ...] = tuple(sorted(funcs))
        self._hash = hash(
            (
                tuple(sorted((s.name, s.arity) for s in rels.values())),
                tuple(sorted((s.name, s.arity) for s in funcs.values())),
            )
        )

    # -- constructors ------------------------------------------------------

    @classmethod
    def relational(cls, **relations: int) -> "Schema":
        """Build a purely relational schema from ``name=arity`` keywords."""
        return cls(relations=relations)

    @classmethod
    def empty(cls) -> "Schema":
        """The empty schema (pure sets)."""
        return cls()

    # -- accessors ---------------------------------------------------------

    @property
    def relation_names(self) -> Tuple[str, ...]:
        return self._relation_names

    @property
    def function_names(self) -> Tuple[str, ...]:
        return self._function_names

    @property
    def symbol_names(self) -> Tuple[str, ...]:
        return tuple(sorted(list(self._relations) + list(self._functions)))

    @property
    def is_relational(self) -> bool:
        """True if the schema contains no function symbols."""
        return not self._functions

    def relation(self, name: str) -> RelationSymbol:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation symbol {name!r}") from None

    def function(self, name: str) -> FunctionSymbol:
        try:
            return self._functions[name]
        except KeyError:
            raise SchemaError(f"unknown function symbol {name!r}") from None

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    def has_function(self, name: str) -> bool:
        return name in self._functions

    def has_symbol(self, name: str) -> bool:
        return name in self._relations or name in self._functions

    def arity(self, name: str) -> int:
        if name in self._relations:
            return self._relations[name].arity
        if name in self._functions:
            return self._functions[name].arity
        raise SchemaError(f"unknown symbol {name!r}")

    # -- serialization -----------------------------------------------------

    def to_spec(self) -> Dict[str, Dict[str, int]]:
        """A JSON-safe, canonically ordered description of the schema.

        Round-trips through :meth:`from_spec`; used by the batch verification
        service to fingerprint and ship jobs between processes.
        """
        return {
            "relations": {name: self._relations[name].arity for name in self._relation_names},
            "functions": {name: self._functions[name].arity for name in self._function_names},
        }

    @classmethod
    def from_spec(cls, spec: Mapping[str, Mapping[str, int]]) -> "Schema":
        """Rebuild a schema from :meth:`to_spec` output."""
        return cls(
            relations=spec.get("relations", {}),
            functions=spec.get("functions", {}),
        )

    # -- algebra -----------------------------------------------------------

    def extend(
        self,
        relations: Mapping[str, int] = (),
        functions: Mapping[str, int] = (),
    ) -> "Schema":
        """Return a new schema with additional symbols.

        Re-declaring an existing symbol with the same kind and arity is
        allowed (and is a no-op); conflicting declarations raise
        :class:`SchemaError`.
        """
        new_rels = {s.name: s.arity for s in self._relations.values()}
        new_funcs = {s.name: s.arity for s in self._functions.values()}
        for name, arity in dict(relations).items():
            if name in new_funcs:
                raise SchemaError(f"cannot re-declare function {name!r} as relation")
            if name in new_rels and new_rels[name] != arity:
                raise SchemaError(f"conflicting arity for relation {name!r}")
            new_rels[name] = arity
        for name, arity in dict(functions).items():
            if name in new_rels:
                raise SchemaError(f"cannot re-declare relation {name!r} as function")
            if name in new_funcs and new_funcs[name] != arity:
                raise SchemaError(f"conflicting arity for function {name!r}")
            new_funcs[name] = arity
        return Schema(relations=new_rels, functions=new_funcs)

    def union(self, other: "Schema") -> "Schema":
        """Union of two schemas; symbol declarations must be compatible."""
        return self.extend(
            relations={s.name: s.arity for s in other._relations.values()},
            functions={s.name: s.arity for s in other._functions.values()},
        )

    def restrict(self, names: Iterable[str]) -> "Schema":
        """Keep only the given symbols (the sigma-projection of Section 4.2)."""
        keep = set(names)
        return Schema(
            relations={n: s.arity for n, s in self._relations.items() if n in keep},
            functions={n: s.arity for n, s in self._functions.items() if n in keep},
        )

    def is_subschema_of(self, other: "Schema") -> bool:
        """True if every symbol of ``self`` appears in ``other`` with the same kind/arity."""
        for name, sym in self._relations.items():
            if not other.has_relation(name) or other.relation(name).arity != sym.arity:
                return False
        for name, sym in self._functions.items():
            if not other.has_function(name) or other.function(name).arity != sym.arity:
                return False
        return True

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._relations == other._relations and self._functions == other._functions

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        rels = ", ".join(f"{s.name}/{s.arity}" for s in self._relations.values())
        funcs = ", ".join(f"{s.name}/{s.arity}()" for s in self._functions.values())
        parts = [p for p in (rels, funcs) if p]
        return f"Schema({'; '.join(parts)})"

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self.has_symbol(name)
