"""Quantifier-free and existential first-order formulas.

These are the guards of database-driven systems (Section 2).  The abstract
syntax supports:

* relational atoms ``R(t1, ..., tk)``,
* equality atoms ``t1 = t2``,
* the boolean connectives ``not``, ``and``, ``or`` and the constants
  ``true`` / ``false``,
* an existential prefix (:class:`Exists`), which by Fact 2 adds no expressive
  power to systems but is convenient for writing specifications; the
  compilation of Fact 2 lives in :mod:`repro.systems.existential`.

Formulas are immutable, hashable and comparable, so they can be used as
dictionary keys (the solvers cache per-guard information).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Mapping, Tuple

from repro.errors import FormulaError
from repro.logic.structures import Element, Structure, sorted_key_list
from repro.logic.terms import Term, Var


class Formula:
    """Base class of formulas."""

    def evaluate(self, structure: Structure, valuation: Mapping[str, Element]) -> bool:
        """Truth value in ``structure`` under ``valuation`` (total on free vars)."""
        raise NotImplementedError

    def free_variables(self) -> FrozenSet[str]:
        raise NotImplementedError

    def substitute(self, substitution: Mapping[str, Term]) -> "Formula":
        raise NotImplementedError

    def rename_variables(self, renaming: Mapping[str, str]) -> "Formula":
        return self.substitute({old: Var(new) for old, new in renaming.items()})

    def atoms(self) -> Iterator["Formula"]:
        """All atomic subformulas (relational and equality atoms)."""
        raise NotImplementedError

    def is_quantifier_free(self) -> bool:
        return all(True for _ in ())  # overridden below where relevant

    # -- connectives as operators -------------------------------------------

    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True)
class TrueFormula(Formula):
    """The always-true formula."""

    def evaluate(self, structure: Structure, valuation: Mapping[str, Element]) -> bool:
        return True

    def free_variables(self) -> FrozenSet[str]:
        return frozenset()

    def substitute(self, substitution: Mapping[str, Term]) -> Formula:
        return self

    def atoms(self) -> Iterator[Formula]:
        return iter(())

    def is_quantifier_free(self) -> bool:
        return True

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseFormula(Formula):
    """The always-false formula."""

    def evaluate(self, structure: Structure, valuation: Mapping[str, Element]) -> bool:
        return False

    def free_variables(self) -> FrozenSet[str]:
        return frozenset()

    def substitute(self, substitution: Mapping[str, Term]) -> Formula:
        return self

    def atoms(self) -> Iterator[Formula]:
        return iter(())

    def is_quantifier_free(self) -> bool:
        return True

    def __str__(self) -> str:
        return "false"


TRUE = TrueFormula()
FALSE = FalseFormula()


@dataclass(frozen=True)
class RelationAtom(Formula):
    """An atom ``R(t1, ..., tk)`` for a relation symbol R."""

    symbol: str
    args: Tuple[Term, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", tuple(self.args))

    def evaluate(self, structure: Structure, valuation: Mapping[str, Element]) -> bool:
        if not structure.schema.has_relation(self.symbol):
            raise FormulaError(f"unknown relation symbol {self.symbol!r}")
        expected = structure.schema.relation(self.symbol).arity
        if len(self.args) != expected:
            raise FormulaError(
                f"relation {self.symbol!r} expects {expected} arguments, got {len(self.args)}"
            )
        values = tuple(arg.evaluate(structure, valuation) for arg in self.args)
        return structure.holds(self.symbol, *values)

    def free_variables(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for arg in self.args:
            result |= arg.variables()
        return result

    def substitute(self, substitution: Mapping[str, Term]) -> Formula:
        return RelationAtom(self.symbol, tuple(a.substitute(substitution) for a in self.args))

    def atoms(self) -> Iterator[Formula]:
        yield self

    def is_quantifier_free(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{self.symbol}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class Equality(Formula):
    """An equality atom ``t1 = t2``."""

    left: Term
    right: Term

    def evaluate(self, structure: Structure, valuation: Mapping[str, Element]) -> bool:
        return self.left.evaluate(structure, valuation) == self.right.evaluate(structure, valuation)

    def free_variables(self) -> FrozenSet[str]:
        return self.left.variables() | self.right.variables()

    def substitute(self, substitution: Mapping[str, Term]) -> Formula:
        return Equality(self.left.substitute(substitution), self.right.substitute(substitution))

    def atoms(self) -> Iterator[Formula]:
        yield self

    def is_quantifier_free(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class Not(Formula):
    """Negation."""

    operand: Formula

    def evaluate(self, structure: Structure, valuation: Mapping[str, Element]) -> bool:
        return not self.operand.evaluate(structure, valuation)

    def free_variables(self) -> FrozenSet[str]:
        return self.operand.free_variables()

    def substitute(self, substitution: Mapping[str, Term]) -> Formula:
        return Not(self.operand.substitute(substitution))

    def atoms(self) -> Iterator[Formula]:
        return self.operand.atoms()

    def is_quantifier_free(self) -> bool:
        return self.operand.is_quantifier_free()

    def __str__(self) -> str:
        return f"!({self.operand})"


@dataclass(frozen=True)
class And(Formula):
    """Conjunction of zero or more formulas (empty conjunction is true)."""

    operands: Tuple[Formula, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "operands", tuple(self.operands))

    def evaluate(self, structure: Structure, valuation: Mapping[str, Element]) -> bool:
        return all(op.evaluate(structure, valuation) for op in self.operands)

    def free_variables(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for op in self.operands:
            result |= op.free_variables()
        return result

    def substitute(self, substitution: Mapping[str, Term]) -> Formula:
        return And(tuple(op.substitute(substitution) for op in self.operands))

    def atoms(self) -> Iterator[Formula]:
        for op in self.operands:
            yield from op.atoms()

    def is_quantifier_free(self) -> bool:
        return all(op.is_quantifier_free() for op in self.operands)

    def __str__(self) -> str:
        if not self.operands:
            return "true"
        return " & ".join(f"({op})" for op in self.operands)


@dataclass(frozen=True)
class Or(Formula):
    """Disjunction of zero or more formulas (empty disjunction is false)."""

    operands: Tuple[Formula, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "operands", tuple(self.operands))

    def evaluate(self, structure: Structure, valuation: Mapping[str, Element]) -> bool:
        return any(op.evaluate(structure, valuation) for op in self.operands)

    def free_variables(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for op in self.operands:
            result |= op.free_variables()
        return result

    def substitute(self, substitution: Mapping[str, Term]) -> Formula:
        return Or(tuple(op.substitute(substitution) for op in self.operands))

    def atoms(self) -> Iterator[Formula]:
        for op in self.operands:
            yield from op.atoms()

    def is_quantifier_free(self) -> bool:
        return all(op.is_quantifier_free() for op in self.operands)

    def __str__(self) -> str:
        if not self.operands:
            return "false"
        return " | ".join(f"({op})" for op in self.operands)


@dataclass(frozen=True)
class Exists(Formula):
    """An existential formula ``exists v1, ..., vk . body``.

    By Fact 2 these can be compiled away from system guards; they are also
    evaluated directly (by enumerating the finite domain) for baseline
    simulation and tests.
    """

    variables_bound: Tuple[str, ...]
    body: Formula
    distinct: bool = False
    """With ``distinct=True`` the bound variables must take pairwise distinct
    values -- the injective semantics used by the data tree patterns of
    Section 6.3."""

    def __post_init__(self) -> None:
        object.__setattr__(self, "variables_bound", tuple(self.variables_bound))

    def evaluate(self, structure: Structure, valuation: Mapping[str, Element]) -> bool:
        names = list(self.variables_bound)
        domain = sorted_key_list(structure.domain)
        if self.distinct:
            candidates: Iterator[Tuple[Element, ...]] = itertools.permutations(domain, len(names))
        else:
            candidates = itertools.product(domain, repeat=len(names))
        for values in candidates:
            extended = dict(valuation)
            extended.update(zip(names, values))
            if self.body.evaluate(structure, extended):
                return True
        return False

    def free_variables(self) -> FrozenSet[str]:
        return self.body.free_variables() - frozenset(self.variables_bound)

    def substitute(self, substitution: Mapping[str, Term]) -> Formula:
        filtered = {
            name: term for name, term in substitution.items() if name not in self.variables_bound
        }
        clashing = set()
        for term in filtered.values():
            clashing |= set(term.variables())
        if clashing & set(self.variables_bound):
            raise FormulaError(
                "substitution would capture a bound variable; rename bound variables first"
            )
        return Exists(self.variables_bound, self.body.substitute(filtered), self.distinct)

    def atoms(self) -> Iterator[Formula]:
        return self.body.atoms()

    def is_quantifier_free(self) -> bool:
        return False

    def __str__(self) -> str:
        quantifier = "exists!=" if self.distinct else "exists"
        return f"{quantifier} {', '.join(self.variables_bound)} . ({self.body})"


# -- convenience constructors ------------------------------------------------

def rel(symbol: str, *args: Term) -> RelationAtom:
    return RelationAtom(symbol, tuple(args))


def eq(left: Term, right: Term) -> Equality:
    return Equality(left, right)


def neq(left: Term, right: Term) -> Formula:
    return Not(Equality(left, right))


def conj(*formulas: Formula) -> Formula:
    """N-ary conjunction, flattening nested conjunctions."""
    flat: List[Formula] = []
    for formula in formulas:
        if isinstance(formula, And):
            flat.extend(formula.operands)
        elif isinstance(formula, TrueFormula):
            continue
        else:
            flat.append(formula)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disj(*formulas: Formula) -> Formula:
    """N-ary disjunction, flattening nested disjunctions."""
    flat: List[Formula] = []
    for formula in formulas:
        if isinstance(formula, Or):
            flat.extend(formula.operands)
        elif isinstance(formula, FalseFormula):
            continue
        else:
            flat.append(formula)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def exists(variables: Tuple[str, ...], body: Formula, distinct: bool = False) -> Exists:
    return Exists(tuple(variables), body, distinct)
