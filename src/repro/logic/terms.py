"""Terms of quantifier-free first-order logic.

A term is either a variable or a function symbol applied to terms.  Terms
evaluate to domain elements of a structure, given a valuation of the
variables.

Variables are plain strings.  The database-driven systems of Section 2 use
register variables tagged with ``old`` / ``new``; the convention adopted by
this library is the textual suffix ``_old`` / ``_new`` (see
:mod:`repro.systems.dds` for the helpers :func:`old` and :func:`new`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Mapping, Tuple

from repro.errors import FormulaError
from repro.logic.structures import Element, Structure


class Term:
    """Base class of terms.  Terms are immutable and hashable."""

    def evaluate(self, structure: Structure, valuation: Mapping[str, Element]) -> Element:
        raise NotImplementedError

    def variables(self) -> FrozenSet[str]:
        raise NotImplementedError

    def substitute(self, substitution: Mapping[str, "Term"]) -> "Term":
        raise NotImplementedError

    def rename_variables(self, renaming: Mapping[str, str]) -> "Term":
        return self.substitute({old: Var(new) for old, new in renaming.items()})


@dataclass(frozen=True)
class Var(Term):
    """A variable, evaluated through the valuation."""

    name: str

    def evaluate(self, structure: Structure, valuation: Mapping[str, Element]) -> Element:
        try:
            value = valuation[self.name]
        except KeyError:
            raise FormulaError(f"variable {self.name!r} is not assigned a value") from None
        if value not in structure.domain:
            raise FormulaError(f"variable {self.name!r} is valued outside the structure's domain")
        return value

    def variables(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def substitute(self, substitution: Mapping[str, Term]) -> Term:
        return substitution.get(self.name, self)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class FuncTerm(Term):
    """A function symbol applied to argument terms."""

    symbol: str
    args: Tuple[Term, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", tuple(self.args))

    def evaluate(self, structure: Structure, valuation: Mapping[str, Element]) -> Element:
        if not structure.schema.has_function(self.symbol):
            raise FormulaError(f"unknown function symbol {self.symbol!r}")
        expected = structure.schema.function(self.symbol).arity
        if len(self.args) != expected:
            raise FormulaError(
                f"function {self.symbol!r} expects {expected} arguments, got {len(self.args)}"
            )
        values = [arg.evaluate(structure, valuation) for arg in self.args]
        return structure.apply(self.symbol, *values)

    def variables(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for arg in self.args:
            result |= arg.variables()
        return result

    def substitute(self, substitution: Mapping[str, Term]) -> Term:
        return FuncTerm(self.symbol, tuple(arg.substitute(substitution) for arg in self.args))

    def __str__(self) -> str:
        return f"{self.symbol}({', '.join(str(a) for a in self.args)})"


def var(name: str) -> Var:
    """Convenience constructor for a variable term."""
    return Var(name)


def func(symbol: str, *args: Term) -> FuncTerm:
    """Convenience constructor for a function application term."""
    return FuncTerm(symbol, tuple(args))
