"""A small text syntax for guards.

The grammar (whitespace-insensitive)::

    formula  :=  or_expr
    or_expr  :=  and_expr ( '|' and_expr )*
    and_expr :=  unary ( '&' unary )*
    unary    :=  '!' unary
              |  'exists' ident (',' ident)* '.' unary
              |  'exists!=' ident (',' ident)* '.' unary
              |  '(' formula ')'
              |  'true' | 'false'
              |  atom
    atom     :=  term '=' term
              |  term '!=' term
              |  ident '(' term (',' term)* ')'        -- relation atom
    term     :=  ident
              |  ident '(' term (',' term)* ')'        -- function application

Whether ``ident(...)`` denotes a relation atom or a function term is decided
by position: if it is immediately followed by ``=`` or ``!=`` it is a term,
otherwise it is a relation atom.  Identifiers may contain letters, digits,
underscores and ``@``.

Examples
--------
>>> str(parse_formula("x_old = x_new & E(y_old, y_new) & red(y_new)"))
'(x_old = x_new) & (E(y_old, y_new)) & (red(y_new))'
>>> str(parse_formula("desc(cca(x_old, y_old), x_new) | !(x_old = y_old)"))
'(desc(cca(x_old, y_old), x_new)) | (!(x_old = y_old))'
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple, Union

from repro.errors import ParseError
from repro.logic.formulas import (
    FALSE,
    TRUE,
    Equality,
    Exists,
    Formula,
    Not,
    RelationAtom,
    conj,
    disj,
)
from repro.logic.terms import FuncTerm, Term, Var

_TOKEN_PATTERN = re.compile(
    r"\s*(?:(?P<neq>!=)|(?P<exists_distinct>exists!=)|(?P<ident>[A-Za-z_@][A-Za-z_0-9@]*)"
    r"|(?P<punct>[()=,.!&|]))"
)


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise ParseError(f"unexpected character at {text[position:position + 10]!r}")
        token = match.group("neq") or match.group("exists_distinct") or match.group(
            "ident"
        ) or match.group("punct")
        tokens.append(token)
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[str], text: str) -> None:
        self._tokens = tokens
        self._index = 0
        self._text = text

    # -- token helpers -------------------------------------------------------

    def _peek(self) -> Optional[str]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> str:
        token = self._peek()
        if token is None:
            raise ParseError(f"unexpected end of input in {self._text!r}")
        self._index += 1
        return token

    def _expect(self, expected: str) -> None:
        token = self._advance()
        if token != expected:
            raise ParseError(f"expected {expected!r} but found {token!r} in {self._text!r}")

    def _at_end(self) -> bool:
        return self._index >= len(self._tokens)

    # -- grammar -------------------------------------------------------------

    def parse(self) -> Formula:
        formula = self._or_expr()
        if not self._at_end():
            raise ParseError(f"unexpected trailing token {self._peek()!r} in {self._text!r}")
        return formula

    def _or_expr(self) -> Formula:
        operands = [self._and_expr()]
        while self._peek() == "|":
            self._advance()
            operands.append(self._and_expr())
        return disj(*operands) if len(operands) > 1 else operands[0]

    def _and_expr(self) -> Formula:
        operands = [self._unary()]
        while self._peek() == "&":
            self._advance()
            operands.append(self._unary())
        return conj(*operands) if len(operands) > 1 else operands[0]

    def _unary(self) -> Formula:
        token = self._peek()
        if token == "!":
            self._advance()
            return Not(self._unary())
        if token in ("exists", "exists!="):
            self._advance()
            distinct = token == "exists!="
            names = [self._identifier()]
            while self._peek() == ",":
                self._advance()
                names.append(self._identifier())
            self._expect(".")
            # The quantifier scope extends as far to the right as possible,
            # following the usual logical convention.
            return Exists(tuple(names), self._or_expr(), distinct)
        if token == "(":
            self._advance()
            inner = self._or_expr()
            self._expect(")")
            return inner
        if token == "true":
            self._advance()
            return TRUE
        if token == "false":
            self._advance()
            return FALSE
        return self._atom()

    def _identifier(self) -> str:
        token = self._advance()
        if not re.fullmatch(r"[A-Za-z_@][A-Za-z_0-9@]*", token):
            raise ParseError(f"expected an identifier, found {token!r} in {self._text!r}")
        return token

    def _atom(self) -> Formula:
        item = self._term_or_application()
        nxt = self._peek()
        if nxt == "=":
            self._advance()
            right = self._term()
            return Equality(_as_term(item, self._text), right)
        if nxt == "!=":
            self._advance()
            right = self._term()
            return Not(Equality(_as_term(item, self._text), right))
        # Must be a relation atom.
        if isinstance(item, tuple):
            symbol, args = item
            return RelationAtom(symbol, tuple(args))
        raise ParseError(
            f"bare term {item!r} is not a formula (did you forget '= ...'?) in {self._text!r}"
        )

    def _term(self) -> Term:
        return _as_term(self._term_or_application(), self._text)

    def _term_or_application(self) -> Union[Term, Tuple[str, List[Term]]]:
        """Parse an identifier or ``ident(args)``.

        Returns a :class:`Term` for bare identifiers and a ``(symbol, args)``
        pair for applications; the caller decides whether an application is a
        relation atom or a function term based on what follows.
        """
        name = self._identifier()
        if self._peek() != "(":
            return Var(name)
        self._advance()
        args = [self._term()]
        while self._peek() == ",":
            self._advance()
            args.append(self._term())
        self._expect(")")
        return (name, args)


def _as_term(item: Union[Term, Tuple[str, List[Term]]], text: str) -> Term:
    if isinstance(item, Term):
        return item
    symbol, args = item
    return FuncTerm(symbol, tuple(args))


def parse_formula(text: str) -> Formula:
    """Parse the textual guard syntax into a :class:`Formula`."""
    if not text.strip():
        raise ParseError("empty formula")
    return _Parser(_tokenize(text), text).parse()


def parse_term(text: str) -> Term:
    """Parse a single term (variable or nested function application)."""
    parser = _Parser(_tokenize(text), text)
    term = parser._term()
    if not parser._at_end():
        raise ParseError(f"unexpected trailing tokens in term {text!r}")
    return term
