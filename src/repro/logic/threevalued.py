"""Three-valued compilation of quantifier-free boolean combinations.

The theory-level guard pre-filters evaluate guards on *partial* views of the
eventual database (a relational delta, a tree skeleton).  Atoms the view
cannot decide -- data-value relations, unresolvable terms -- historically
surfaced as a :class:`~repro.errors.FormulaError` during evaluation, which
the pre-filters caught and treated as "conservatively keep the candidate".

The compiled pre-filters reproduce exactly those semantics with a third
truth value :data:`UNKNOWN` instead of an exception: connectives evaluate
their operands left to right and short-circuit, and the first operand that
neither decides nor continues the walk propagates outwards -- ``False``
stops an ``And`` (prune is safe), ``True`` stops an ``Or``, and ``UNKNOWN``
stops both, bubbling to the top where the caller keeps the candidate for
the engine's authoritative evaluation on the full database.

:func:`compile_three_valued` owns the connective layer once; each theory
supplies only its atom compiler (how equalities and relation atoms resolve
against its particular view/context).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.logic.formulas import And, FalseFormula, Formula, Not, Or, TrueFormula

#: Third truth value: "undecidable on this partial view".
UNKNOWN = object()

#: A compiled node: maps the theory's evaluation context to True/False/UNKNOWN.
CompiledNode = Callable[[Any], Any]


def unknown_node(context: Any) -> Any:
    """The compiled form of an atom the view cannot decide."""
    return UNKNOWN


def compile_three_valued(
    formula: Formula, compile_atom: Callable[[Formula], CompiledNode]
) -> CompiledNode:
    """Compile a boolean combination into a closure over a theory context.

    ``compile_atom`` receives every non-connective sub-formula and returns a
    compiled node (use :func:`unknown_node` for undecidable atoms, including
    unknown connectives).  The returned closure evaluates with left-to-right
    short-circuiting and :data:`UNKNOWN` propagation as described in the
    module docstring.
    """
    if isinstance(formula, TrueFormula):
        return lambda context: True
    if isinstance(formula, FalseFormula):
        return lambda context: False
    if isinstance(formula, And):
        operands = [compile_three_valued(op, compile_atom) for op in formula.operands]

        def eval_and(context: Any) -> Any:
            for operand in operands:
                value = operand(context)
                if value is not True:
                    return value
            return True

        return eval_and
    if isinstance(formula, Or):
        operands = [compile_three_valued(op, compile_atom) for op in formula.operands]

        def eval_or(context: Any) -> Any:
            for operand in operands:
                value = operand(context)
                if value is not False:
                    return value
            return False

        return eval_or
    if isinstance(formula, Not):
        operand = compile_three_valued(formula.operand, compile_atom)

        def eval_not(context: Any) -> Any:
            value = operand(context)
            if value is UNKNOWN:
                return UNKNOWN
            return not value

        return eval_not
    return compile_atom(formula)
