"""HOM(H) classes and their semi-Fraïssé lift (Section 3.2, Lemma 7, Theorem 4).

``HOM(H)`` is the class of databases that map homomorphically into a fixed
template ``H``.  It is generally *not* closed under amalgamation (Example 4:
2-colourable graphs), but its lift ``HOM(~H)`` -- where every element carries
the colour of its image in ``H`` -- is a Fraïssé class (Lemma 7), and its
projection back to the original schema sits between ``HOM(H)`` and its
closure under substructures, so Lemma 6 applies.

:class:`HomTheory` implements the lifted class: witness elements always carry
exactly one colour (a unary predicate per template element), membership is
the purely local condition "every tuple's colours form a tuple of H", and the
free amalgam preserves it -- which is what makes the PSpace procedure of
Theorem 4 work.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import TheoryError
from repro.logic.morphisms import find_homomorphism
from repro.logic.schema import Schema
from repro.logic.structures import Element, Structure, sorted_key_list
from repro.relational.theory import FRESH_SELF, Decoration, RelationalTheory

COLOR_PREFIX = "hom_color_"


class HomTheory(RelationalTheory):
    """The class HOM(H) of databases mapping homomorphically into ``H``."""

    def __init__(self, template: Structure) -> None:
        if not template.schema.is_relational:
            raise TheoryError("HOM templates must be over relational schemas")
        if not template.domain:
            raise TheoryError("HOM templates must be non-empty")
        super().__init__(template.schema)
        self._template = template
        self._template_elements: List[Element] = sorted_key_list(template.domain)
        self._color_names: Dict[Element, str] = {
            element: f"{COLOR_PREFIX}{index}"
            for index, element in enumerate(self._template_elements)
        }
        colors = {name: 1 for name in self._color_names.values()}
        self._witness_schema = template.schema.extend(relations=colors)

    # -- template accessors -----------------------------------------------------

    @property
    def template(self) -> Structure:
        return self._template

    @property
    def color_names(self) -> Dict[Element, str]:
        """Mapping from template elements to their colour predicate names."""
        return dict(self._color_names)

    def color_of(
        self, unary_facts: Dict[str, Set[Tuple[Element, ...]]], element: Element
    ) -> Optional[Element]:
        """The template element an element is coloured by (None if uncoloured)."""
        for template_element, name in self._color_names.items():
            if (element,) in unary_facts.get(name, set()):
                return template_element
        return None

    def witness_coloring(self, witness: Structure) -> Dict[Element, Element]:
        """Extract the colouring of a (lifted) witness structure."""
        coloring: Dict[Element, Element] = {}
        for template_element, name in self._color_names.items():
            for (element,) in witness.relation(name):
                coloring[element] = template_element
        return coloring

    # -- RelationalTheory hooks ---------------------------------------------------

    def witness_schema(self) -> Schema:
        return self._witness_schema

    def free_relation_names(self) -> Tuple[str, ...]:
        return self.schema.relation_names

    def element_decorations(self) -> Sequence[Decoration]:
        return tuple(
            ((self._color_names[element], (FRESH_SELF,)),) for element in self._template_elements
        )

    def tuple_allowed(
        self,
        witness_relations: Dict[str, Set[Tuple[Element, ...]]],
        relation: str,
        elements: Tuple[Element, ...],
    ) -> bool:
        colors = []
        for element in elements:
            color = self.color_of(witness_relations, element)
            if color is None:
                return False
            colors.append(color)
        return self._template.holds(relation, *colors)

    def tuple_filter(
        self, witness_relations: Dict[str, Set[Tuple[Element, ...]]]
    ) -> Callable[[str, Tuple[Element, ...]], bool]:
        """Specialised admissibility check with the colouring extracted once.

        The unary colour facts are fixed for the whole subset enumeration, so
        the element-to-colour map is computed a single time up front; the
        per-tuple check is then a pair of dictionary lookups instead of a
        scan over every colour predicate per element (the pre-refactor cost).
        """
        coloring: Dict[Element, Element] = {}
        for template_element, name in self._color_names.items():
            for (element,) in witness_relations.get(name, ()):
                # setdefault: on a (malformed) multi-coloured element the first
                # colour in _color_names order wins, matching color_of.
                coloring.setdefault(element, template_element)
        template_holds = self._template.holds

        def allowed(relation: str, elements: Tuple[Element, ...]) -> bool:
            colors = []
            for element in elements:
                color = coloring.get(element)
                if color is None:
                    return False
                colors.append(color)
            return template_holds(relation, *colors)

        return allowed

    # -- membership of the projected class (used by tests and baselines) -----------

    def membership(self, database: Structure) -> bool:
        """Is ``database`` (over the base schema) in HOM(H)?"""
        if database.schema != self.schema:
            database = database.project(self.schema)
        return find_homomorphism(database, self._template) is not None

    def lifted_membership(self, witness: Structure) -> bool:
        """Is a fully coloured witness in the lifted class HOM(~H)?"""
        coloring = self.witness_coloring(witness)
        if set(coloring) != set(witness.domain):
            return False
        for relation in self.schema.relation_names:
            for t in witness.relation(relation):
                image = tuple(coloring[e] for e in t)
                if not self._template.holds(relation, *image):
                    return False
        return True

    def lift(self, database: Structure) -> Optional[Structure]:
        """Colour a database by some homomorphism into H (None if not in HOM(H))."""
        if database.schema != self.schema:
            database = database.project(self.schema)
        homomorphism = find_homomorphism(database, self._template)
        if homomorphism is None:
            return None
        relations = {name: set(database.relation(name)) for name in self.schema.relation_names}
        for name in self._color_names.values():
            relations[name] = set()
        for element, image in homomorphism.items():
            relations[self._color_names[image]].add((element,))
        return Structure(self._witness_schema, database.domain, relations=relations, validate=False)

    def project(self, witness: Structure) -> Structure:
        """Forget the colour predicates (the sigma-projection of Lemma 6)."""
        return witness.project(self.schema)

    def describe(self) -> str:
        return (
            f"HOM(H) for a template with {len(self._template.domain)} elements "
            f"over {self.schema!r}"
        )

    # -- serialization -------------------------------------------------------------

    SPEC_KIND = "hom"

    def to_spec(self) -> Dict[str, object]:
        return {"kind": self.SPEC_KIND, "template": self._template.to_spec()}

    @classmethod
    def from_spec(cls, spec: Dict[str, object]) -> "HomTheory":
        return cls(Structure.from_spec(spec["template"]))
