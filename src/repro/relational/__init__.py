"""Relational database theories: all databases and HOM(H) (Theorem 4)."""

from repro.relational.all_databases import AllDatabasesTheory
from repro.relational.hom import HomTheory
from repro.relational.theory import RelationalTheory
from repro.relational.csp import (
    COLORED_GRAPH_SCHEMA,
    GRAPH_SCHEMA,
    bipartite_template,
    clique_template,
    cycle_graph,
    example_graph_g,
    odd_red_cycle_free_template,
    path_graph,
    template_from_edges,
)

__all__ = [
    "RelationalTheory",
    "AllDatabasesTheory",
    "HomTheory",
    "GRAPH_SCHEMA",
    "COLORED_GRAPH_SCHEMA",
    "clique_template",
    "bipartite_template",
    "odd_red_cycle_free_template",
    "template_from_edges",
    "cycle_graph",
    "path_graph",
    "example_graph_g",
]
