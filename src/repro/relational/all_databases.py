"""The Fraïssé class of *all* finite databases over a relational schema.

This is the simplest class covered by Theorem 5: it is closed under
embeddings, closed under amalgamation (the free amalgam works), and has the
joint embedding property (disjoint unions).  Its blowup function is the
identity because there are no function symbols.

Emptiness of database-driven systems over this class asks: *is there any
database at all driving an accepting run?* -- the setting of Example 1.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from repro.logic.schema import Schema
from repro.logic.structures import Structure
from repro.relational.theory import RelationalTheory


class AllDatabasesTheory(RelationalTheory):
    """All finite databases over a purely relational schema."""

    SPEC_KIND = "all_databases"

    def __init__(self, schema: Schema) -> None:
        super().__init__(schema)

    def membership(self, database: Structure) -> bool:
        """Every database over the schema belongs to the class."""
        return database.schema == self.schema

    def describe(self) -> str:
        return f"all finite databases over {self.schema!r}"

    def to_spec(self) -> Dict[str, Any]:
        return {"kind": self.SPEC_KIND, "schema": self.schema.to_spec()}

    @classmethod
    def from_spec(cls, spec: Mapping[str, Any]) -> "AllDatabasesTheory":
        return cls(Schema.from_spec(spec["schema"]))
