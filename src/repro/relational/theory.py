"""Shared machinery for relational database theories.

Both :class:`~repro.relational.all_databases.AllDatabasesTheory` and
:class:`~repro.relational.hom.HomTheory` plug into the generic engine the
same way: witnesses are plain :class:`~repro.logic.structures.Structure`
objects that only ever grow by *embeddings* (fresh elements plus tuples
touching at least one fresh element), so every run prefix found by the engine
keeps holding as the witness grows -- quantifier-free guards are invariant
under embeddings (the observation behind Lemma 6).

The successor enumeration implements the sub-transition guess of Theorem 5 in
a factored form:

* which new register shares an element with which (identification pattern),
* which new registers point at existing elements of the *old* register-
  generated part and which at fresh elements,
* the full relational structure among the new register values that involves a
  fresh element (these tuples may matter to later guards, so all subsets are
  enumerated),
* tuples linking fresh elements to old-only elements are only enumerated when
  the current guard mentions them (they can never matter later because later
  configurations only see elements through registers).

The factoring is complete for classes that are closed under removing tuples
that involve a discarded element -- true for all finite databases and for
HOM classes -- and keeps the per-step work bounded by a function of the
number of registers only, exactly as Theorem 5 requires.

Fast path
---------
The relational family implements the engine's *incremental candidate*
protocol natively (:meth:`RelationalTheory.enumerate_deltas`): transition
guards are compiled once per ``(theory, transition)`` pair into
selectivity-ordered closures (:mod:`repro.fraisse.plans`) and evaluated
against candidate *deltas* -- the register-valuation change plus the new
tuples -- before any successor :class:`Structure` exists.  The evaluation
happens at three stages of the factored enumeration:

* **assignment stage** -- with the new register targets fixed but no tuples
  chosen yet, tuples touching a fresh element are still *choosable* and
  evaluate to UNKNOWN; if the guard is already ``False`` (a violated
  equality, a missing tuple among existing elements), the entire
  decoration-and-subset enumeration under this assignment is skipped --
  exactly the branches whose every candidate the legacy pre-filter rejects;
* **subset stage** -- with a decoration and the guard-relevant tuples
  chosen, every compilable atom is decided by set lookups, and the
  guard-irrelevant subset enumeration below runs only for surviving
  choices;
* **register-shuffle candidates** (no fresh elements) are emitted with
  their guard pre-decided, so the engine rejects them without
  materializing or canonicalizing anything.

Guards that cannot be compiled (symbols outside the witness schema such as
data-value relations, non-variable terms, quantifiers) evaluate to UNKNOWN
and are kept conservatively; the engine's authoritative evaluation on the
full database is unchanged either way.  With caches disabled
(:mod:`repro.perf`) the legacy build-a-structure path runs instead, which
is what the benchmark runner measures as the pre-refactor engine.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import FormulaError
from repro.fraisse.base import (
    CandidateDelta,
    DatabaseTheory,
    TheoryConfiguration,
    combined_guard_valuation,
    set_partitions,
)
from repro.fraisse.plans import AtomTemplate, DeltaContext
from repro.logic.formulas import Formula, RelationAtom
from repro.logic.schema import Schema
from repro.logic.structures import (
    Element,
    Structure,
    intern_structure,
    sorted_key_list,
)
from repro.logic.terms import Term, Var
from repro.logic.threevalued import UNKNOWN
from repro.perf import caches_enabled
from repro.systems.dds import DatabaseDrivenSystem, Transition, new, old

Decoration = Tuple[Tuple[str, Tuple[Element, ...]], ...]
"""A decoration is a tuple of relation facts attached to a fresh element
(for example its colour predicate in a HOM theory)."""


class RelationalTheory(DatabaseTheory):
    """Base class of theories whose members are relational structures."""

    def __init__(self, schema: Schema) -> None:
        if not schema.is_relational:
            raise ValueError("relational theories require purely relational schemas")
        self._schema = schema

    # -- DatabaseTheory interface ----------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    def database(self, config: TheoryConfiguration) -> Structure:
        return config.witness

    def witness_size(self, config: TheoryConfiguration) -> int:
        return config.witness.size

    def plan_guard_schema(self) -> Schema:
        return self.witness_schema()

    def blowup(self, n: int) -> int:
        # No function symbols: an n-generated database has exactly n elements.
        return n

    # -- hooks overridden by subclasses -----------------------------------------

    def witness_schema(self) -> Schema:
        """The schema of witness structures (may extend :attr:`schema`)."""
        return self._schema

    def free_relation_names(self) -> Tuple[str, ...]:
        """Relations whose tuples are enumerated freely (default: all of them)."""
        return self.witness_schema().relation_names

    def element_decorations(self) -> Sequence[Decoration]:
        """Possible decorations of a fresh element (default: none)."""
        return ((),)

    def tuple_allowed(
        self,
        witness_relations: Dict[str, Set[Tuple[Element, ...]]],
        relation: str,
        elements: Tuple[Element, ...],
    ) -> bool:
        """Whether a candidate tuple may be added (given current unary facts)."""
        return True

    def tuple_filter(
        self, witness_relations: Dict[str, Set[Tuple[Element, ...]]]
    ) -> Callable[[str, Tuple[Element, ...]], bool]:
        """A tuple-admissibility predicate specialised to fixed unary facts.

        ``witness_relations`` is constant across one subset enumeration, so
        subclasses may precompute lookups once (e.g. :class:`HomTheory`
        extracts the element colouring) instead of re-deriving them per
        candidate tuple.  The default simply closes over
        :meth:`tuple_allowed`.
        """
        return lambda relation, elements: self.tuple_allowed(witness_relations, relation, elements)

    def membership(self, database: Structure) -> bool:
        """Membership of an arbitrary finite database in the (projected) class."""
        return True

    # -- seeds -------------------------------------------------------------------

    def initial_configurations(self, system: DatabaseDrivenSystem) -> Iterator[TheoryConfiguration]:
        registers = list(system.registers)
        schema = self.witness_schema()
        for partition in set_partitions(registers):
            elements = list(range(len(partition)))
            valuation = {}
            for element, block in zip(elements, partition):
                for register in block:
                    valuation[register] = element
            decoration_choices = itertools.product(self.element_decorations(), repeat=len(elements))
            for decorations in decoration_choices:
                decoration_facts: Dict[str, Set[Tuple[Element, ...]]] = {
                    name: set() for name in schema.relation_names
                }
                for element, decoration in zip(elements, decorations):
                    for relation, args in decoration:
                        decoration_facts[relation].add(
                            tuple(element if a is FRESH_SELF else a for a in args)
                        )
                candidate_tuples = self._all_tuples(elements, elements)
                allowed = self.tuple_filter(decoration_facts)
                for chosen in self._tuple_subsets(candidate_tuples, allowed):
                    relations = {name: set(facts) for name, facts in decoration_facts.items()}
                    for relation, t in chosen:
                        relations[relation].add(t)
                    witness = intern_structure(
                        Structure(schema, elements, relations=relations, validate=False)
                    )
                    yield TheoryConfiguration.make(
                        witness, valuation, fresh_elements=tuple(elements)
                    )

    # -- successors ----------------------------------------------------------------

    def successor_configurations(
        self,
        system: DatabaseDrivenSystem,
        config: TheoryConfiguration,
        transition: Transition,
    ) -> Iterator[TheoryConfiguration]:
        if caches_enabled():
            # Fast path: the incremental enumeration below, materialized for
            # callers that want configurations (the engine itself drives
            # enumerate_deltas directly and materializes only survivors).
            plan = self._transition_plan(transition)
            for delta in self.enumerate_deltas(system, config, transition, plan):
                yield self.apply_delta(config, delta)
            return
        registers = list(system.registers)
        witness: Structure = config.witness
        valuation_old = config.valuation
        old_values = sorted_key_list(set(valuation_old.values()))
        next_id = self._next_element_id(witness)

        for assignment, fresh_count in _register_targets(registers, old_values):
            fresh_elements = [next_id + i for i in range(fresh_count)]
            valuation_new: Dict[str, Element] = {}
            for register, target in assignment.items():
                if isinstance(target, _FreshSlot):
                    valuation_new[register] = fresh_elements[target.index]
                else:
                    valuation_new[register] = target
            if not fresh_elements:
                # No new elements: the witness is unchanged, only registers move.
                yield TheoryConfiguration.make(witness, valuation_new, ())
                continue
            yield from self._extended_witnesses(
                witness,
                transition.guard,
                registers,
                valuation_old,
                valuation_new,
                fresh_elements,
            )

    # -- incremental candidate protocol -----------------------------------------

    def enumerate_deltas(
        self,
        system: DatabaseDrivenSystem,
        config: TheoryConfiguration,
        transition: Transition,
        plan=None,
    ) -> Iterator[CandidateDelta]:
        """Enumerate successor deltas with staged compiled-guard pruning.

        Yields the same candidate stream (same order) as the legacy
        enumeration's surviving candidates: register shuffles carry a
        pre-decided guard status, witness extensions are pruned at the
        assignment stage (before decorations and tuple subsets are even
        enumerated) whenever no choice of new tuples can satisfy the guard,
        and at the subset stage exactly where the legacy structure-based
        pre-filter pruned.
        """
        if plan is None or plan.compiled is None:
            yield from super().enumerate_deltas(system, config, transition, plan)
            return
        registers = list(system.registers)
        witness: Structure = config.witness
        valuation_old = config.valuation
        old_values = sorted_key_list(set(valuation_old.values()))
        next_id = self._next_element_id(witness)
        schema = self.witness_schema()
        compiled = plan.compiled
        evaluator = compiled.evaluator
        stats = plan.stats
        free_names = set(self.free_relation_names())
        relation_of = {name: witness.relation(name) for name in schema.relation_names}

        # One closure set per call; the mutable cells below are updated in
        # place per assignment / per candidate.
        fresh_membership: Set[Element] = set()
        added_facts: Set[Tuple[str, Tuple[Element, ...]]] = set()

        def fact_fixed(symbol: str, elements: Tuple[Element, ...]):
            rel = relation_of.get(symbol)
            if rel is None:
                return UNKNOWN
            return elements in rel

        def fact_optimistic(symbol: str, elements: Tuple[Element, ...]):
            rel = relation_of.get(symbol)
            if rel is None:
                return UNKNOWN
            for element in elements:
                if element in fresh_membership:
                    return UNKNOWN  # choosable: some subset may add it
            return elements in rel

        def fact_candidate(symbol: str, elements: Tuple[Element, ...]):
            rel = relation_of.get(symbol)
            if rel is None:
                return UNKNOWN
            if elements in rel:
                return True
            return (symbol, elements) in added_facts

        context = DeltaContext(valuation_old, None, fact_fixed)

        for assignment, fresh_count in _register_targets(registers, old_values):
            fresh_elements = [next_id + i for i in range(fresh_count)]
            valuation_new: Dict[str, Element] = {}
            for register, target in assignment.items():
                if isinstance(target, _FreshSlot):
                    valuation_new[register] = fresh_elements[target.index]
                else:
                    valuation_new[register] = target
            context.value_new = valuation_new
            if not fresh_elements:
                context.fact = fact_fixed
                status = evaluator(context)
                yield CandidateDelta(tuple(sorted(valuation_new.items())), (), (), status, None)
                continue
            fresh_membership.clear()
            fresh_membership.update(fresh_elements)
            context.fact = fact_optimistic
            if evaluator(context) is False:
                # Decided atoms are choice-independent, so a False here means
                # no decoration/subset choice can satisfy the guard -- the
                # legacy pre-filter rejects every candidate of this branch.
                stats.enumeration_pruned += 1
                continue
            yield from self._extension_deltas(
                compiled,
                context,
                stats,
                schema,
                free_names,
                relation_of,
                added_facts,
                fact_candidate,
                old_values,
                valuation_old,
                valuation_new,
                fresh_elements,
            )

    def _extension_deltas(
        self,
        compiled,
        context: DeltaContext,
        stats,
        schema: Schema,
        free_names: Set[str],
        relation_of: Dict[str, Iterable[Tuple[Element, ...]]],
        added_facts: Set[Tuple[str, Tuple[Element, ...]]],
        fact_candidate,
        old_values: List[Element],
        valuation_old: Dict[str, Element],
        valuation_new: Dict[str, Element],
        fresh_elements: List[Element],
    ) -> Iterator[CandidateDelta]:
        """Deltas extending the witness by ``fresh_elements`` (factored form).

        Mirrors the legacy :meth:`_extended_witnesses` enumeration exactly
        (decorations x guard-relevant subsets x guard-irrelevant subsets, in
        the same order) but evaluates the compiled guard on the delta facts
        instead of building a small structure, and defers building the
        extended witness to :meth:`apply_delta`.
        """
        evaluator = compiled.evaluator
        new_values = sorted_key_list(set(valuation_new.values()))
        new_value_set = set(new_values)
        old_only_set = {e for e in old_values if e not in new_value_set}
        fresh_set = set(fresh_elements)
        future_tuples = self._all_tuples(new_values, fresh_elements)
        guard_tuples = _instantiate_templates(
            compiled.atom_templates, valuation_old, valuation_new, free_names
        )
        # Tuples connecting a fresh element with an old-only element: only the
        # ones the current guard mentions can matter (as in the legacy path).
        mixed_tuples = [
            (relation, t)
            for relation, t in guard_tuples
            if any(e in fresh_set for e in t)
            and any(e in old_only_set for e in t)
            and not all(e in new_value_set for e in t)
        ]
        guard_atom_set = set(guard_tuples)
        relevant_future = [ft for ft in future_tuples if ft in guard_atom_set]
        irrelevant_future = [ft for ft in future_tuples if ft not in guard_atom_set]
        valuation_items = tuple(sorted(valuation_new.items()))
        fresh_tuple = tuple(fresh_elements)
        context.fact = fact_candidate

        for decorations in itertools.product(
            self.element_decorations(), repeat=len(fresh_elements)
        ):
            decoration_pairs: List[Tuple[str, Tuple[Element, ...]]] = []
            for element, decoration in zip(fresh_elements, decorations):
                for relation, args in decoration:
                    decoration_pairs.append(
                        (relation, tuple(element if a is FRESH_SELF else a for a in args)),
                    )
            # Unary facts for the admissibility filter: witness relations by
            # reference, decorated relations merged copy-on-write.
            unary_facts = dict(relation_of)
            if decoration_pairs:
                overlay: Dict[str, Set[Tuple[Element, ...]]] = {}
                for relation, t in decoration_pairs:
                    overlay.setdefault(relation, set()).add(t)
                for relation, facts in overlay.items():
                    unary_facts[relation] = set(relation_of[relation]) | facts
            allowed = self.tuple_filter(unary_facts)
            for chosen_relevant in self._tuple_subsets(relevant_future + mixed_tuples, allowed):
                added_facts.clear()
                added_facts.update(decoration_pairs)
                added_facts.update(chosen_relevant)
                status = evaluator(context)
                if status is False:
                    stats.enumeration_pruned += 1
                    continue
                base_new = tuple(decoration_pairs) + chosen_relevant
                for chosen_irrelevant in self._tuple_subsets(irrelevant_future, allowed):
                    yield CandidateDelta(
                        valuation_items,
                        fresh_tuple,
                        base_new + chosen_irrelevant,
                        status,
                        None,
                    )

    def apply_delta(
        self, config: TheoryConfiguration, delta: CandidateDelta
    ) -> TheoryConfiguration:
        payload = delta.payload
        if payload is not None:
            return payload
        witness: Structure = config.witness
        if not delta.fresh_elements:
            return TheoryConfiguration(witness, delta.valuation_items, ())
        schema = self.witness_schema()
        relations: Dict[str, Iterable[Tuple[Element, ...]]] = {
            name: witness.relation(name) for name in schema.relation_names
        }
        if delta.new_tuples:
            overlay: Dict[str, Set[Tuple[Element, ...]]] = {}
            for relation, t in delta.new_tuples:
                overlay.setdefault(relation, set()).add(t)
            for relation, facts in overlay.items():
                relations[relation] = set(relations[relation]) | facts
        extended = Structure(
            schema,
            set(witness.domain) | set(delta.fresh_elements),
            relations=relations,
            validate=False,
        )
        return TheoryConfiguration(extended, delta.valuation_items, delta.fresh_elements)

    # -- internal helpers -------------------------------------------------------

    def _extended_witnesses(
        self,
        witness: Structure,
        guard: Formula,
        registers: List[str],
        valuation_old: Dict[str, Element],
        valuation_new: Dict[str, Element],
        fresh_elements: List[Element],
    ) -> Iterator[TheoryConfiguration]:
        """The legacy (cache-free) extension enumeration: build per-candidate
        small structures for the pre-filter and full structures per yield.

        The fast path is :meth:`_extension_deltas`; this body is kept as the
        pre-refactor behaviour the benchmark runner measures under
        :func:`repro.perf.caches_disabled`.
        """
        schema = self.witness_schema()
        new_values = sorted_key_list(set(valuation_new.values()))
        old_values = sorted_key_list(set(valuation_old.values()))
        old_only = [e for e in old_values if e not in set(new_values)]

        decoration_choices = itertools.product(
            self.element_decorations(), repeat=len(fresh_elements)
        )
        # Tuples entirely among the new register values that involve a fresh
        # element: enumerated exhaustively (they may matter to later guards).
        future_tuples = [
            (relation, t) for relation, t in self._all_tuples(new_values, fresh_elements)
        ]
        # Tuples connecting a fresh element with an old-only element: only the
        # ones the current guard mentions can matter.
        guard_tuples = self._guard_instantiated_tuples(
            guard, registers, valuation_old, valuation_new
        )
        mixed_tuples = [
            (relation, t)
            for relation, t in guard_tuples
            if any(e in fresh_elements for e in t)
            and any(e in old_only for e in t)
            and not all(e in new_values for e in t)
        ]

        # Guards only mention register values, so their truth value depends on
        # the tuples of the small "delta" over the old/new register values
        # only; among the freely-enumerated tuples, only the ones that
        # instantiate a guard atom can change it.  The subset enumeration is
        # therefore factored into guard-relevant tuples (guard evaluated once
        # per choice) and guard-irrelevant tuples (no re-evaluation).
        small_domain = set(old_values) | set(new_values) | set(fresh_elements)
        base_small = {
            name: {
                t
                for t in witness.relation(name)
                if all(e in small_domain for e in t)
            }
            for name in schema.relation_names
        }
        base_relations = {name: set(witness.relation(name)) for name in schema.relation_names}
        guard_atom_set = set(guard_tuples)
        relevant_future = [ft for ft in future_tuples if ft in guard_atom_set]
        irrelevant_future = [ft for ft in future_tuples if ft not in guard_atom_set]

        combined = combined_guard_valuation(tuple(registers), valuation_old, valuation_new)

        for decorations in decoration_choices:
            decoration_facts: Dict[str, Set[Tuple[Element, ...]]] = {
                name: set() for name in schema.relation_names
            }
            for element, decoration in zip(fresh_elements, decorations):
                for relation, args in decoration:
                    decoration_facts[relation].add(
                        tuple(element if a is FRESH_SELF else a for a in args)
                    )
            unary_facts = {
                name: base_relations[name] | decoration_facts[name]
                for name in schema.relation_names
            }
            allowed = self.tuple_filter(unary_facts)
            for chosen_relevant in self._tuple_subsets(relevant_future + mixed_tuples, allowed):
                if not self._guard_holds_small_structure(
                    schema,
                    small_domain,
                    base_small,
                    decoration_facts,
                    chosen_relevant,
                    guard,
                    combined,
                ):
                    continue
                relevant_added: Dict[str, Set[Tuple[Element, ...]]] = {
                    name: set(decoration_facts[name]) for name in schema.relation_names
                }
                for relation, t in chosen_relevant:
                    relevant_added[relation].add(t)
                for chosen_irrelevant in self._tuple_subsets(irrelevant_future, allowed):
                    added = {name: set(relevant_added[name]) for name in schema.relation_names}
                    for relation, t in chosen_irrelevant:
                        added[relation].add(t)
                    extended = Structure(
                        schema,
                        set(witness.domain) | set(fresh_elements),
                        relations={
                            name: base_relations[name] | added[name]
                            for name in schema.relation_names
                        },
                        validate=False,
                    )
                    yield TheoryConfiguration.make(extended, valuation_new, tuple(fresh_elements))

    def _guard_holds_small_structure(
        self,
        schema: Schema,
        small_domain: Set[Element],
        base_small: Dict[str, Set[Tuple[Element, ...]]],
        decoration_facts: Dict[str, Set[Tuple[Element, ...]]],
        chosen_relevant: Sequence[Tuple[str, Tuple[Element, ...]]],
        guard: Formula,
        combined: Dict[str, Element],
    ) -> bool:
        """The legacy (cache-free) pre-filter: build the delta, walk the guard.

        Guards mentioning symbols outside the witness schema (e.g. the data
        value relations of :mod:`repro.datavalues`) cannot be decided here;
        such candidates are conservatively kept and the engine performs the
        authoritative evaluation on the full (expanded) database.
        """
        relations = {
            name: base_small[name] | decoration_facts[name] for name in schema.relation_names
        }
        for relation, t in chosen_relevant:
            relations[relation].add(t)
        small = Structure(schema, small_domain, relations=relations, validate=False)
        try:
            return guard.evaluate(small, combined)
        except FormulaError:
            return True

    def _tuple_subsets(
        self,
        candidates: List[Tuple[str, Tuple[Element, ...]]],
        allowed_fn: Callable[[str, Tuple[Element, ...]], bool],
    ) -> Iterator[Tuple[Tuple[str, Tuple[Element, ...]], ...]]:
        allowed = [(relation, t) for relation, t in candidates if allowed_fn(relation, t)]
        for size in range(len(allowed) + 1):
            yield from itertools.combinations(allowed, size)

    def _all_tuples(
        self, elements: Iterable[Element], must_touch: Iterable[Element]
    ) -> List[Tuple[str, Tuple[Element, ...]]]:
        """All free-relation tuples over ``elements`` touching ``must_touch``."""
        elements = sorted_key_list(set(elements))
        touch = set(must_touch)
        result: List[Tuple[str, Tuple[Element, ...]]] = []
        schema = self.witness_schema()
        for relation in self.free_relation_names():
            arity = schema.relation(relation).arity
            for t in itertools.product(elements, repeat=arity):
                if touch and not any(e in touch for e in t):
                    continue
                result.append((relation, t))
        return result

    def _guard_instantiated_tuples(
        self,
        guard: Formula,
        registers: List[str],
        valuation_old: Dict[str, Element],
        valuation_new: Dict[str, Element],
    ) -> List[Tuple[str, Tuple[Element, ...]]]:
        combined: Dict[str, Element] = {}
        for register in registers:
            combined[old(register)] = valuation_old[register]
            combined[new(register)] = valuation_new[register]
        tuples: List[Tuple[str, Tuple[Element, ...]]] = []
        for atom in guard.atoms():
            if not isinstance(atom, RelationAtom):
                continue
            if atom.symbol not in self.free_relation_names():
                continue
            instantiated: List[Element] = []
            resolvable = True
            for term in atom.args:
                value = _resolve_variable_term(term, combined)
                if value is None:
                    resolvable = False
                    break
                instantiated.append(value)
            if resolvable:
                tuples.append((atom.symbol, tuple(instantiated)))
        return tuples

    @staticmethod
    def _next_element_id(witness: Structure) -> int:
        numeric = [e for e in witness.domain if isinstance(e, int)]
        return (max(numeric) + 1) if numeric else 0


class _FreshSlot:
    """A placeholder for 'the i-th fresh element' in register target assignments."""

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index


FRESH_SELF = object()
"""Sentinel used inside decorations to refer to the fresh element itself."""


def decoration(relation: str, *args: object) -> Tuple[str, Tuple[object, ...]]:
    """Build one decoration fact; use :data:`FRESH_SELF` for the fresh element."""
    return (relation, tuple(args))


def _register_targets(
    registers: List[str], old_values: List[Element]
) -> Iterator[Tuple[Dict[str, object], int]]:
    """Enumerate new-register target assignments in canonical form.

    Every register is mapped either to an existing old register value or to a
    fresh slot; fresh slots are introduced in increasing order (register r may
    use fresh slot j only if slots 0..j-1 are already used by earlier
    registers), which enumerates identification patterns without duplicates.
    """

    def recurse(index: int, assignment: Dict[str, object], fresh_used: int):
        if index == len(registers):
            yield dict(assignment), fresh_used
            return
        register = registers[index]
        for value in old_values:
            assignment[register] = value
            yield from recurse(index + 1, assignment, fresh_used)
        for slot in range(fresh_used + 1):
            assignment[register] = _FreshSlot(slot)
            yield from recurse(index + 1, assignment, max(fresh_used, slot + 1))
        del assignment[register]

    yield from recurse(0, {}, 0)


def _resolve_variable_term(term: Term, combined: Dict[str, Element]) -> Optional[Element]:
    """Resolve a variable term to its element, or None for non-variable terms."""
    if isinstance(term, Var):
        return combined.get(term.name)
    return None


def _instantiate_templates(
    atom_templates: Tuple[AtomTemplate, ...],
    valuation_old: Dict[str, Element],
    valuation_new: Dict[str, Element],
    free_names: Set[str],
) -> List[Tuple[str, Tuple[Element, ...]]]:
    """Resolve a plan's guard-atom templates into concrete tuples.

    The compiled-plan replacement of the legacy per-assignment formula walk
    (:meth:`RelationalTheory._guard_instantiated_tuples`): the plan extracted
    the register slots once at compilation, so per assignment this is a few
    dictionary lookups per guard atom.
    """
    tuples: List[Tuple[str, Tuple[Element, ...]]] = []
    for symbol, slots in atom_templates:
        if symbol not in free_names:
            continue
        resolved: List[Element] = []
        complete = True
        for which, register in slots:
            source = valuation_old if which == "old" else valuation_new
            value = source.get(register)
            if value is None:
                complete = False
                break
            resolved.append(value)
        if complete:
            tuples.append((symbol, tuple(resolved)))
    return tuples
