"""Constraint-satisfaction conveniences for HOM templates.

The paper observes that HOM(H) captures "any property of databases expressed
as a Constraint Satisfaction Problem": n-colourability (H an n-clique),
2-colourability / bipartiteness, and the red-odd-cycle-free template of
Example 2.  This module builds the corresponding template structures.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence, Tuple

from repro.errors import TheoryError
from repro.logic.schema import Schema
from repro.logic.structures import Structure

GRAPH_SCHEMA = Schema.relational(E=2)
COLORED_GRAPH_SCHEMA = Schema.relational(E=2, red=1)


def clique_template(n: int, with_loops: bool = False) -> Structure:
    """The n-clique template: HOM(K_n) is exactly the n-colourable graphs.

    With ``with_loops=True`` every template node gets a self-loop, which makes
    HOM(H) the class of *all* graphs (useful as a sanity baseline).
    """
    if n < 1:
        raise TheoryError("a clique template needs at least one node")
    nodes = list(range(n))
    edges = {(a, b) for a, b in itertools.product(nodes, repeat=2) if a != b or with_loops}
    return Structure(GRAPH_SCHEMA, nodes, relations={"E": edges})


def bipartite_template() -> Structure:
    """The 2-clique: HOM(K_2) is the class of graphs without odd cycles (Example 4)."""
    return clique_template(2)


def odd_red_cycle_free_template() -> Structure:
    """The template H of Example 2.

    A graph with a ``red`` predicate maps homomorphically into this template
    exactly when it has no odd-length cycle consisting of red nodes: the two
    red template nodes form a 2-clique (so the red part of the source must be
    2-colourable) while the white template node absorbs everything else.
    """
    white, red_a, red_b = "w", "r1", "r2"
    nodes = [white, red_a, red_b]
    edges = {
        (white, white),
        (white, red_a),
        (red_a, white),
        (white, red_b),
        (red_b, white),
        (red_a, red_b),
        (red_b, red_a),
    }
    return Structure(
        COLORED_GRAPH_SCHEMA,
        nodes,
        relations={"E": edges, "red": {(red_a,), (red_b,)}},
    )


def template_from_edges(
    nodes: Sequence[object],
    edges: Iterable[Tuple[object, object]],
    red_nodes: Iterable[object] = (),
    symmetric: bool = False,
) -> Structure:
    """Build a (possibly red-coloured) graph template from an edge list."""
    edge_set = set()
    for a, b in edges:
        edge_set.add((a, b))
        if symmetric:
            edge_set.add((b, a))
    relations = {"E": edge_set}
    red = {(r,) for r in red_nodes}
    schema = COLORED_GRAPH_SCHEMA if red else GRAPH_SCHEMA
    if red:
        relations["red"] = red
    return Structure(schema, nodes, relations=relations)


def cycle_graph(length: int, red: bool = True, schema: Schema = COLORED_GRAPH_SCHEMA) -> Structure:
    """A directed cycle of the given length, optionally with all nodes red.

    Used by the examples and benchmarks as the canonical witness / obstruction
    for the Example 1 / Example 2 systems.
    """
    if length < 1:
        raise TheoryError("a cycle needs at least one node")
    nodes = list(range(length))
    edges = {(i, (i + 1) % length) for i in nodes}
    relations = {"E": edges}
    if schema.has_relation("red"):
        relations["red"] = {(i,) for i in nodes} if red else set()
    return Structure(schema, nodes, relations=relations)


def path_graph(length: int, red: bool = False, schema: Schema = COLORED_GRAPH_SCHEMA) -> Structure:
    """A directed path with ``length`` edges."""
    nodes = list(range(length + 1))
    edges = {(i, i + 1) for i in range(length)}
    relations = {"E": edges}
    if schema.has_relation("red"):
        relations["red"] = {(i,) for i in nodes} if red else set()
    return Structure(schema, nodes, relations=relations)


def example_graph_g() -> Structure:
    """The five-node graph G of Example 1 (figure in Section 2).

    Nodes 1..5; node 1 closes an odd red cycle 1 -> 2 -> 3 -> 4 -> 5 -> 1 and
    every node on the cycle is red.
    """
    nodes = [1, 2, 3, 4, 5]
    edges = {(1, 2), (2, 3), (3, 4), (4, 5), (5, 1)}
    red = {(n,) for n in nodes}
    return Structure(COLORED_GRAPH_SCHEMA, nodes, relations={"E": edges, "red": red})
