"""Homogeneous structures used as data-value domains (Section 4.4).

A homogeneous structure is an infinite structure in which every isomorphism
between finite substructures extends to an automorphism.  The paper uses two
running examples -- the natural numbers with equality ⟨N, ~⟩ and the rational
numbers with their order ⟨Q, <⟩ -- and notes (Remark 1) that ⟨N, <⟩ works as
well because its finite substructures are those of ⟨Q, <⟩.

For the decision procedures we never materialise the infinite structure; all
that is needed is:

* the (purely relational) schema of the structure,
* how to compute its relations on a finite set of *value tokens*,
* which *fresh* values are available relative to an existing finite set of
  values, up to isomorphism of the resulting finite substructure -- for
  equality this is "equal to one of the existing values or fresh"; for a
  dense order it is "equal to an existing value or in any gap",
* an embedding test for finite structures (does a finite database embed into
  the homogeneous structure?), which is what Proposition 1 requires to be
  decidable in PSpace.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from fractions import Fraction
from typing import Iterator, List, Sequence

from repro.logic.schema import Schema
from repro.logic.structures import Structure


class HomogeneousStructure(ABC):
    """A homogeneous relational structure serving as a data-value domain."""

    #: human-readable name used in reports
    name: str = "homogeneous structure"

    #: spec tag used by :meth:`to_spec` / :func:`homogeneous_from_spec`
    SPEC_KIND: str = ""

    # -- serialization -----------------------------------------------------------

    def to_spec(self) -> dict:
        """A JSON-safe description; rebuild with :func:`homogeneous_from_spec`.

        The shipped value domains are fully determined by their kind and the
        relation name, so the spec is just those two fields.
        """
        if not self.SPEC_KIND:
            raise NotImplementedError(f"{type(self).__name__} does not support spec serialization")
        return {"kind": self.SPEC_KIND, "relation_name": self.relation_name}

    @property
    def relation_name(self) -> str:
        raise NotImplementedError

    @property
    @abstractmethod
    def schema(self) -> Schema:
        """The purely relational schema of the structure."""

    @abstractmethod
    def holds(self, relation: str, *values: object) -> bool:
        """Truth of a relation on concrete value tokens."""

    @abstractmethod
    def fresh_value_choices(self, existing: Sequence[object], injective: bool) -> Iterator[object]:
        """Candidate values for a new element, up to isomorphism over ``existing``.

        With ``injective=True`` (the ⊙ product) only values distinct from all
        existing ones are offered.
        """

    # -- derived helpers ---------------------------------------------------------

    def relations_over(self, values: Sequence[object]) -> dict:
        """The relation facts induced on (indices of) a finite tuple of values."""
        facts = {name: set() for name in self.schema.relation_names}
        for name in self.schema.relation_names:
            arity = self.schema.relation(name).arity
            for indices in itertools.product(range(len(values)), repeat=arity):
                if self.holds(name, *[values[i] for i in indices]):
                    facts[name].add(indices)
        return facts

    def embeds(self, database: Structure, assignment_limit: int = 100_000) -> bool:
        """Does a finite database over :attr:`schema` embed into this structure?

        A small backtracking search over value assignments; sufficient for the
        finite substructures manipulated by tests and solvers.
        """
        if database.schema != self.schema:
            return False
        elements = sorted(database.domain, key=repr)
        return self._embed_search(database, elements, [], assignment_limit)

    def _embed_search(
        self,
        database: Structure,
        elements: List[object],
        chosen: List[object],
        limit: int,
    ) -> bool:
        index = len(chosen)
        if index == len(elements):
            return self._consistent(database, elements, chosen)
        candidates = list(self.fresh_value_choices(chosen, injective=False))
        for value in candidates[:limit]:
            chosen.append(value)
            if self._consistent(database, elements[: index + 1], chosen):
                if self._embed_search(database, elements, chosen, limit):
                    chosen.pop()
                    return True
            chosen.pop()
        return False

    def _consistent(
        self, database: Structure, elements: Sequence[object], values: Sequence[object]
    ) -> bool:
        position = {element: i for i, element in enumerate(elements)}
        for name in self.schema.relation_names:
            arity = self.schema.relation(name).arity
            for t in itertools.product(elements, repeat=arity):
                expected = database.holds(name, *t)
                actual = self.holds(name, *[values[position[e]] for e in t])
                if expected != actual:
                    return False
        return True


class NaturalsWithEquality(HomogeneousStructure):
    """⟨N, ~⟩: natural numbers where the only relation is value equality.

    The relation is named ``sim`` (for "similar"); guards write
    ``sim(x_old, y_new)`` to test that two registers carry the same data
    value, and ``!(sim(...))`` for inequality.
    """

    name = "naturals with equality"
    SPEC_KIND = "naturals_equality"

    def __init__(self, relation_name: str = "sim") -> None:
        self._relation_name = relation_name
        self._schema = Schema.relational(**{relation_name: 2})

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def relation_name(self) -> str:
        return self._relation_name

    def holds(self, relation: str, *values: object) -> bool:
        if relation != self._relation_name:
            return False
        left, right = values
        return left == right

    def fresh_value_choices(self, existing: Sequence[object], injective: bool) -> Iterator[object]:
        if not injective:
            seen = []
            for value in existing:
                if value not in seen:
                    seen.append(value)
                    yield value
        used = {int(v) for v in existing} if existing else set()
        fresh = 0
        while fresh in used:
            fresh += 1
        yield fresh


class RationalsWithOrder(HomogeneousStructure):
    """⟨Q, <⟩: the dense linear order of the rationals.

    The relation is named ``lt``; guards write ``lt(x_old, y_new)`` for a
    strict data-value comparison.  Fresh values are offered in every gap of
    the existing values (before all, between any two consecutive, after all),
    plus equal to an existing value in the non-injective product.
    """

    name = "rationals with order"
    SPEC_KIND = "rationals_order"

    def __init__(self, relation_name: str = "lt") -> None:
        self._relation_name = relation_name
        self._schema = Schema.relational(**{relation_name: 2})

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def relation_name(self) -> str:
        return self._relation_name

    def holds(self, relation: str, *values: object) -> bool:
        if relation != self._relation_name:
            return False
        left, right = values
        return Fraction(left) < Fraction(right)

    def fresh_value_choices(self, existing: Sequence[object], injective: bool) -> Iterator[object]:
        distinct = sorted({Fraction(v) for v in existing})
        if not injective:
            for value in distinct:
                yield value
        if not distinct:
            yield Fraction(0)
            return
        yield distinct[0] - 1
        for left, right in zip(distinct, distinct[1:]):
            yield (left + right) / 2
        yield distinct[-1] + 1


class NaturalsWithOrder(RationalsWithOrder):
    """⟨N, <⟩ -- Remark 1: same finite substructures as ⟨Q, <⟩.

    The implementation therefore simply reuses the dense-order choices; the
    class exists to make the correspondence with the paper explicit and to
    carry its own name in reports.
    """

    name = "naturals with order (via its substructure closure)"
    SPEC_KIND = "naturals_order"


def homogeneous_from_spec(spec: dict) -> "HomogeneousStructure":
    """Rebuild a shipped homogeneous value domain from its spec."""
    kinds = {
        NaturalsWithEquality.SPEC_KIND: NaturalsWithEquality,
        RationalsWithOrder.SPEC_KIND: RationalsWithOrder,
        NaturalsWithOrder.SPEC_KIND: NaturalsWithOrder,
    }
    try:
        cls = kinds[spec["kind"]]
    except KeyError:
        raise ValueError(f"unknown homogeneous structure kind {spec.get('kind')!r}") from None
    return cls(relation_name=spec["relation_name"])


NATURALS_WITH_EQUALITY = NaturalsWithEquality()
RATIONALS_WITH_ORDER = RationalsWithOrder()
NATURALS_WITH_ORDER = NaturalsWithOrder()
