"""The data-value products C ⊗ F and C ⊙ F (Section 4.4, Proposition 1).

Given a database theory (a semi-Fraïssé class ``C``) and a homogeneous
relational structure ``F``, the product class consists of the databases of
``C`` whose elements additionally carry data values from ``F``; the guards of
a system may then compare data values using the relations of ``F``.  The
paper's two variants are both supported:

* ``C ⊗ F`` -- arbitrary labellings (several elements may share a value), the
  XML-attribute reading of Example 5;
* ``C ⊙ F`` -- injective labellings (every element has its own value), the
  relational-database reading of Example 6; select it with ``injective=True``.

Proposition 1 shows the product is again a Fraïssé class with the *same
blowup function*; accordingly :class:`DataValuedTheory` simply wraps the base
theory: it forwards the structural search to the base theory and decorates
every fresh element with a data value, enumerating value patterns up to
isomorphism over the values already present (equality pattern for ⟨N, ~⟩,
order/equality pattern for ⟨Q, <⟩).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Sequence, Tuple

from repro.datavalues.homogeneous import HomogeneousStructure, homogeneous_from_spec
from repro.errors import TheoryError
from repro.fraisse.base import (
    DatabaseTheory,
    TheoryConfiguration,
    generic_abstraction_key,
)
from repro.logic.schema import Schema
from repro.logic.structures import Element, Structure, sorted_key_list
from repro.perf import BoundedCache
from repro.systems.dds import DatabaseDrivenSystem, Transition


@dataclass(frozen=True)
class _DataWitness:
    """The wrapped witness: the base configuration plus the value labelling."""

    base_config: TheoryConfiguration
    value_items: Tuple[Tuple[Element, object], ...]

    @property
    def values(self) -> Dict[Element, object]:
        return dict(self.value_items)


class DataValuedTheory(DatabaseTheory):
    """The product of a base database theory with a homogeneous value structure."""

    def __init__(
        self,
        base: DatabaseTheory,
        values: HomogeneousStructure,
        injective: bool = False,
    ) -> None:
        for name in values.schema.relation_names:
            if base.schema.has_symbol(name):
                raise TheoryError(
                    f"value relation {name!r} clashes with a symbol of the base schema"
                )
        self._base = base
        self._values = values
        self._injective = injective
        self._schema = base.schema.union(values.schema)
        # The engine renders the expanded product database once for the guard
        # and once for the abstraction key of every candidate; both renders
        # are pure functions of the (immutable) wrapped witness, so they are
        # memoised per witness / per (witness, valuation).
        self._database_cache = BoundedCache("datavalues_database")
        self._key_cache = BoundedCache("datavalues_abstraction_key")

    # -- accessors -----------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def base(self) -> DatabaseTheory:
        return self._base

    @property
    def value_structure(self) -> HomogeneousStructure:
        return self._values

    @property
    def injective(self) -> bool:
        return self._injective

    def blowup(self, n: int) -> int:
        # Proposition 1: the product has the same blowup function as the base.
        return self._base.blowup(n)

    # -- serialization --------------------------------------------------------------

    SPEC_KIND = "data_valued"

    def to_spec(self) -> Dict[str, object]:
        return {
            "kind": self.SPEC_KIND,
            "base": self._base.to_spec(),
            "values": self._values.to_spec(),
            "injective": self._injective,
        }

    @classmethod
    def from_spec(cls, spec: Dict[str, object]) -> "DataValuedTheory":
        # Imported here to avoid a cycle: the specs module imports every theory.
        from repro.service.specs import theory_from_spec

        return cls(
            base=theory_from_spec(spec["base"]),
            values=homogeneous_from_spec(spec["values"]),
            injective=bool(spec.get("injective", False)),
        )

    # -- seeds ----------------------------------------------------------------------

    def initial_configurations(self, system: DatabaseDrivenSystem) -> Iterator[TheoryConfiguration]:
        base_system = self._base_system(system)
        for base_config in self._base.initial_configurations(base_system):
            elements = self._ordered_elements(base_config, base_config.fresh_elements)
            for values in self._value_assignments({}, elements):
                yield self._wrap(base_config, values)

    # -- successors --------------------------------------------------------------------

    def successor_configurations(
        self,
        system: DatabaseDrivenSystem,
        config: TheoryConfiguration,
        transition: Transition,
    ) -> Iterator[TheoryConfiguration]:
        witness: _DataWitness = config.witness
        base_system = self._base_system(system)
        for base_candidate in self._base.successor_configurations(
            base_system, witness.base_config, transition
        ):
            fresh = self._ordered_elements(base_candidate, base_candidate.fresh_elements)
            for values in self._value_assignments(witness.values, fresh):
                yield self._wrap(base_candidate, values)

    # -- rendering -----------------------------------------------------------------------

    def database(self, config: TheoryConfiguration) -> Structure:
        witness: _DataWitness = config.witness
        return self._database_cache.get_or_compute(witness, lambda: self._render_database(witness))

    def _render_database(self, witness: _DataWitness) -> Structure:
        base_database = self._base.database(witness.base_config)
        values = witness.values
        relations: Dict[str, set] = {}
        for name in self._values.schema.relation_names:
            arity = self._values.schema.relation(name).arity
            facts = set()
            for t in itertools.product(sorted_key_list(base_database.domain), repeat=arity):
                if any(e not in values for e in t):
                    continue
                if self._values.holds(name, *[values[e] for e in t]):
                    facts.add(t)
            relations[name] = facts
        return base_database.expand(
            base_database.schema.union(self._values.schema), relations=relations
        )

    def certify(
        self, config: TheoryConfiguration
    ) -> Tuple[Structure, Dict[Element, Element], Dict[str, object]]:
        """Finalize the base witness and record the element-to-value assignment.

        The evidence payload nests the base theory's evidence under ``"base"``
        and adds the final element-to-value map (values rendered as strings,
        so :class:`~fractions.Fraction` survives JSON), letting a validator
        re-derive every value relation of the product without the engine.
        """
        witness: _DataWitness = config.witness
        base_database, mapping, base_evidence = self._base.certify(witness.base_config)
        values = witness.values
        # Carry the recorded values across the mapping; elements introduced by
        # the base theory's expansion (e.g. connector word positions) receive
        # fresh pairwise-distinct values, which is safe for both products.
        final_values: Dict[Element, object] = {}
        for element, value in values.items():
            final_values[mapping.get(element, element)] = value
        for element in sorted_key_list(base_database.domain):
            if element not in final_values:
                existing = list(final_values.values())
                choice = None
                for candidate in self._values.fresh_value_choices(existing, True):
                    choice = candidate
                final_values[element] = choice
        relations: Dict[str, set] = {}
        for name in self._values.schema.relation_names:
            arity = self._values.schema.relation(name).arity
            facts = set()
            for t in itertools.product(sorted_key_list(base_database.domain), repeat=arity):
                if self._values.holds(name, *[final_values[e] for e in t]):
                    facts.add(t)
            relations[name] = facts
        expanded = base_database.expand(
            base_database.schema.union(self._values.schema), relations=relations
        )
        evidence = {
            "base": base_evidence,
            "values": {
                str(element): str(value)
                for element, value in sorted(
                    final_values.items(), key=lambda item: str(item[0])
                )
            },
        }
        return expanded, mapping, evidence

    def abstraction_key(self, config: TheoryConfiguration) -> Hashable:
        witness: _DataWitness = config.witness
        return self._key_cache.get_or_compute(
            (witness, config.valuation_items),
            lambda: self._abstraction_key_uncached(config, witness),
        )

    def _abstraction_key_uncached(
        self, config: TheoryConfiguration, witness: _DataWitness
    ) -> Hashable:
        base_key = self._base.abstraction_key(witness.base_config)
        # The value pattern only matters on the register-generated part; the
        # generic key over the expanded database captures exactly the relations
        # of F among those elements.
        value_key = generic_abstraction_key(self.database(config), config.valuation)
        return (base_key, value_key)

    def membership(self, database: Structure) -> bool:
        """Membership of a database over the union schema in the product class."""
        base_part = database.project(self._base.schema)
        value_part = database.project(self._values.schema)
        if not self._values.embeds(value_part):
            return False
        try:
            return self._base.membership(base_part)
        except NotImplementedError:
            return True

    def describe(self) -> str:
        product = "⊙" if self._injective else "⊗"
        return f"{self._base.describe()} {product} {self._values.name}"

    # -- internals ----------------------------------------------------------------------

    def _base_system(self, system: DatabaseDrivenSystem) -> DatabaseDrivenSystem:
        """The system as seen by the base theory (schema restricted guards untouched).

        The base theory only uses the guard to *prune*; its pruning helpers
        ignore atoms over symbols they do not know, so the system can be
        passed through unchanged apart from the schema annotation.
        """
        if system.schema == self._base.schema:
            return system
        return system

    def _ordered_elements(
        self, config: TheoryConfiguration, elements: Sequence[Element]
    ) -> List[Element]:
        return sorted_key_list(set(elements))

    def _value_assignments(
        self, existing: Dict[Element, object], fresh: Sequence[Element]
    ) -> Iterator[Dict[Element, object]]:
        """All value labellings of the fresh elements, up to isomorphism over F."""

        def recurse(index: int, current: Dict[Element, object]) -> Iterator[Dict[Element, object]]:
            if index == len(fresh):
                yield dict(current)
                return
            element = fresh[index]
            present = list(current.values())
            for value in self._values.fresh_value_choices(present, self._injective):
                current[element] = value
                yield from recurse(index + 1, current)
                del current[element]

        yield from recurse(0, dict(existing))

    def _wrap(
        self, base_config: TheoryConfiguration, values: Dict[Element, object]
    ) -> TheoryConfiguration:
        witness = _DataWitness(base_config, tuple(sorted(values.items(), key=repr)))
        return TheoryConfiguration(witness, base_config.valuation_items, base_config.fresh_elements)


def with_data_values(
    base: DatabaseTheory,
    values: HomogeneousStructure,
    injective: bool = False,
) -> DataValuedTheory:
    """Build ``base ⊗ values`` (or ``base ⊙ values`` with ``injective=True``)."""
    return DataValuedTheory(base, values, injective=injective)
