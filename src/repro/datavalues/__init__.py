"""Data values from homogeneous structures (Section 4.4, Proposition 1)."""

from repro.datavalues.homogeneous import (
    NATURALS_WITH_EQUALITY,
    NATURALS_WITH_ORDER,
    RATIONALS_WITH_ORDER,
    HomogeneousStructure,
    NaturalsWithEquality,
    NaturalsWithOrder,
    RationalsWithOrder,
    homogeneous_from_spec,
)
from repro.datavalues.theory import DataValuedTheory, with_data_values

__all__ = [
    "HomogeneousStructure",
    "NaturalsWithEquality",
    "RationalsWithOrder",
    "NaturalsWithOrder",
    "NATURALS_WITH_EQUALITY",
    "RATIONALS_WITH_ORDER",
    "NATURALS_WITH_ORDER",
    "homogeneous_from_spec",
    "DataValuedTheory",
    "with_data_values",
]
