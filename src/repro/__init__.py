"""Verification of database-driven systems via amalgamation (PODS 2013).

A faithful Python reproduction of the paper's framework:

* the database-driven system model (register automata with quantifier-free
  guards over a read-only database),
* the generic emptiness decision procedure over Fraïssé classes (Theorem 5),
* the relational instantiations -- all databases and HOM(H) templates
  (Theorem 4),
* regular word languages (Theorem 10) and regular tree languages (Theorem 3),
* data-value extensions via homogeneous structures (Proposition 1,
  Corollary 8, Theorem 9),
* the undecidable extensions of Section 6 as bounded demonstrations,
* brute-force baselines used as ground truth.

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

from repro.logic import (
    Formula,
    Schema,
    Structure,
    parse_formula,
    parse_term,
)
from repro.systems import (
    Configuration,
    DatabaseDrivenSystem,
    Run,
    Transition,
    compile_existential_guards,
    find_accepting_run,
    has_accepting_run,
    new,
    old,
)
from repro.fraisse import (
    DatabaseTheory,
    EmptinessResult,
    EmptinessSolver,
    decide_emptiness,
)
from repro.relational import (
    AllDatabasesTheory,
    HomTheory,
    clique_template,
    odd_red_cycle_free_template,
)
from repro.perf import (
    cache_stats_snapshot,
    caches_enabled,
    reset_cache_stats,
    set_caches_enabled,
)
from repro.service import (
    BatchReport,
    BatchRunner,
    JobResult,
    ResultStore,
    RetryPolicy,
    VerificationJob,
    run_batch,
)
from repro.telemetry import (
    MetricsRegistry,
    TraceRecorder,
    chrome_trace,
    configure_logging,
    get_logger,
    validate_exposition,
)
from repro.workloads import generate_jobs

__version__ = "1.7.0"

__all__ = [
    "Schema",
    "Structure",
    "Formula",
    "parse_formula",
    "parse_term",
    "DatabaseDrivenSystem",
    "Transition",
    "Configuration",
    "Run",
    "old",
    "new",
    "compile_existential_guards",
    "find_accepting_run",
    "has_accepting_run",
    "DatabaseTheory",
    "EmptinessSolver",
    "EmptinessResult",
    "decide_emptiness",
    "AllDatabasesTheory",
    "HomTheory",
    "clique_template",
    "odd_red_cycle_free_template",
    "cache_stats_snapshot",
    "reset_cache_stats",
    "caches_enabled",
    "set_caches_enabled",
    "VerificationJob",
    "JobResult",
    "ResultStore",
    "BatchRunner",
    "BatchReport",
    "RetryPolicy",
    "run_batch",
    "generate_jobs",
    "MetricsRegistry",
    "TraceRecorder",
    "chrome_trace",
    "configure_logging",
    "get_logger",
    "validate_exposition",
    "__version__",
]
