"""Seeded random workloads for the batch verification service.

Batches of heterogeneous :class:`~repro.service.jobs.VerificationJob`\\ s are
generated from a single integer seed: random register automata with random
quantifier-free guards over the graph / colored-graph schemas, random HOM
templates, random NFAs lifted through :class:`~repro.words.WordRunTheory`,
tree-language jobs over :class:`~repro.trees.TreeRunTheory`, and data-value
products.  Generation is fully deterministic in ``(seed, count, families)``
-- the same call produces jobs with identical fingerprints in every process,
which is what lets the CI smoke step rerun a batch and assert warm-cache
hits.

Instances are deliberately small (1-2 registers, 2-4 control states): the
point of a batch is many heterogeneous decision problems, not a single hard
one, and the engine's abstract space grows steeply with register count.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datavalues import DataValuedTheory, NaturalsWithEquality
from repro.fraisse.base import DatabaseTheory
from repro.fraisse.search import STRATEGY_NAMES
from repro.library import (
    clique_system,
    odd_red_cycle_system,
    order_workflow_system,
    triangle_system,
)
from repro.logic.schema import Schema
from repro.logic.structures import Structure
from repro.relational import (
    COLORED_GRAPH_SCHEMA,
    GRAPH_SCHEMA,
    AllDatabasesTheory,
    HomTheory,
    clique_template,
)
from repro.service.jobs import VerificationJob
from repro.systems.dds import DatabaseDrivenSystem, new, old
from repro.trees import TreeRunTheory, root_label_automaton, tree_schema, universal_automaton
from repro.words import NFA, WordRunTheory, word_schema

#: Families the generator can mix, in round-robin order.
FAMILIES: Tuple[str, ...] = ("relational", "hom", "word", "tree", "data")

#: Adversarial families targeting known engine hot spots (ROADMAP): deep
#: HOM guard templates stress the per-transition guard pipeline, wide tree
#: branching stresses the skeleton placement enumeration.  Not part of the
#: default mix -- select them explicitly (``repro batch --families ...``) or
#: run the benchmark stress phase.
STRESS_FAMILIES: Tuple[str, ...] = ("hom_deep", "tree_wide")

#: Engine caps per family; tree exploration is the priciest per configuration.
_FAMILY_CAPS: Dict[str, int] = {
    "relational": 20_000,
    "hom": 20_000,
    "word": 10_000,
    "tree": 2_000,
    "data": 10_000,
    "hom_deep": 20_000,
    "tree_wide": 25,
}


# -- random guards -------------------------------------------------------------


def _guard_variables(registers: Sequence[str]) -> List[str]:
    names: List[str] = []
    for register in registers:
        names.append(old(register))
        names.append(new(register))
    return names


def _random_guard(
    rng: random.Random,
    registers: Sequence[str],
    binary_relations: Sequence[str],
    unary_relations: Sequence[str],
    atom_count: Optional[int] = None,
) -> str:
    """A random conjunction of relation / (in)equality atoms over the registers."""
    variables = _guard_variables(registers)
    atoms: List[str] = []
    for _ in range(atom_count if atom_count is not None else rng.randint(1, 3)):
        roll = rng.random()
        if binary_relations and roll < 0.45:
            relation = rng.choice(list(binary_relations))
            atoms.append(f"{relation}({rng.choice(variables)}, {rng.choice(variables)})")
        elif unary_relations and roll < 0.65:
            relation = rng.choice(list(unary_relations))
            atoms.append(f"{relation}({rng.choice(variables)})")
        elif roll < 0.85:
            atoms.append(f"{rng.choice(variables)} = {rng.choice(variables)}")
        else:
            atoms.append(f"!({rng.choice(variables)} = {rng.choice(variables)})")
    return " & ".join(atoms)


def _random_system(
    rng: random.Random,
    schema: Schema,
    binary_relations: Sequence[str],
    unary_relations: Sequence[str],
    max_registers: int = 2,
) -> DatabaseDrivenSystem:
    """A random chain-shaped register automaton with random guards.

    The control graph is a forward chain with an optional extra skip or back
    edge, so every instance has an accepting state that is plausibly (but not
    always) reachable -- batches get a healthy mix of nonempty and empty
    verdicts.
    """
    registers = [f"r{i}" for i in range(rng.randint(1, max_registers))]
    state_count = rng.randint(2, 4)
    states = [f"s{i}" for i in range(state_count)]

    def guard() -> str:
        return _random_guard(rng, registers, binary_relations, unary_relations)

    transitions: List[Tuple[str, str, str]] = [
        (states[i], guard(), states[i + 1]) for i in range(state_count - 1)
    ]
    if state_count > 2 and rng.random() < 0.5:
        source, target = rng.sample(states, 2)
        transitions.append((source, guard(), target))
    return DatabaseDrivenSystem.build(
        schema=schema,
        registers=registers,
        states=states,
        initial=states[0],
        accepting=states[-1],
        transitions=transitions,
    )


# -- theories ------------------------------------------------------------------


def _random_hom_template(rng: random.Random, size: Optional[int] = None) -> Structure:
    """A random directed graph template on 2-3 vertices (loops allowed)."""
    if size is None:
        size = rng.randint(2, 3)
    domain = list(range(size))
    edges = {
        (i, j)
        for i, j in itertools.product(domain, repeat=2)
        if (rng.random() < 0.3 if i == j else rng.random() < 0.55)
    }
    return Structure(GRAPH_SCHEMA, domain, relations={"E": edges})


_FALLBACK_NFA_SPEC = (
    ["p", "q"],
    ["a", "b"],
    [("p", "a", "p"), ("p", "b", "q"), ("q", "b", "q")],
    ["p"],
    ["q"],
)


def _random_nfa(rng: random.Random) -> NFA:
    """A random small NFA with a provably nonempty language.

    Empty languages trim the position automaton to nothing, which makes the
    job trivially empty and wastes a batch slot; five attempts then a fixed
    fallback keeps generation total and deterministic.
    """
    for _ in range(5):
        states = [f"q{i}" for i in range(rng.randint(2, 3))]
        alphabet = ["a", "b"]
        transitions = [
            (p, letter, rng.choice(states))
            for p in states
            for letter in alphabet
            if rng.random() < 0.6
        ]
        accepting = [q for q in states if rng.random() < 0.5] or [states[-1]]
        nfa = NFA.make(states, alphabet, transitions, [states[0]], accepting)
        if any(True for _ in nfa.language_sample(4)):
            return nfa
    return NFA.make(*_FALLBACK_NFA_SPEC)


# -- per-family job builders ----------------------------------------------------


def _relational_job(rng: random.Random) -> Tuple[DatabaseDrivenSystem, DatabaseTheory]:
    colored = rng.random() < 0.5
    schema = COLORED_GRAPH_SCHEMA if colored else GRAPH_SCHEMA
    system = _random_system(rng, schema, ["E"], ["red"] if colored else [])
    return system, AllDatabasesTheory(schema)


def _hom_job(rng: random.Random) -> Tuple[DatabaseDrivenSystem, DatabaseTheory]:
    system = _random_system(rng, GRAPH_SCHEMA, ["E"], [])
    return system, HomTheory(_random_hom_template(rng))


def _word_job(rng: random.Random) -> Tuple[DatabaseDrivenSystem, DatabaseTheory]:
    theory = WordRunTheory(_random_nfa(rng))
    schema = word_schema(["a", "b"])
    system = _random_system(rng, schema, ["before"], ["label_a", "label_b"], max_registers=1)
    return system, theory


def _tree_job(rng: random.Random) -> Tuple[DatabaseDrivenSystem, DatabaseTheory]:
    labels = ["a", "b"]
    automaton = (
        universal_automaton(labels)
        if rng.random() < 0.5
        else root_label_automaton(rng.choice(labels), labels)
    )
    # Guards stay on the relational part of TreeSchema (anc/doc/labels); the
    # cca function symbol needs no mention to exercise the theory.
    system = _random_system(
        rng,
        tree_schema(labels),
        ["anc", "doc"],
        ["label_a", "label_b"],
        max_registers=1,
    )
    return system, TreeRunTheory(automaton)


def _data_job(rng: random.Random) -> Tuple[DatabaseDrivenSystem, DatabaseTheory]:
    values = NaturalsWithEquality()
    theory = DataValuedTheory(AllDatabasesTheory(GRAPH_SCHEMA), values)
    schema = GRAPH_SCHEMA.extend(relations={values.relation_name: 2})
    system = _random_system(rng, schema, ["E", values.relation_name], [], max_registers=1)
    return system, theory


# -- adversarial families --------------------------------------------------------
#
# These target the engine hot spots called out on the ROADMAP.  ``hom_deep``
# pits the compiled transition plans against guards with many relation atoms
# over a three-element HOM lift: every register assignment instantiates a
# large set of guard-relevant tuples, so the factored subset enumeration and
# the selectivity-ordered evaluation both run at full tilt.  ``tree_wide``
# drives two registers over a wide-alphabet universal tree language, making
# the skeleton placement enumeration (every branch slot of every node) the
# dominating cost.


def _deep_guard(rng: random.Random, registers: Sequence[str], atoms: int) -> str:
    """A deep conjunction of edge atoms over all old/new register variables."""
    variables = _guard_variables(registers)
    parts: List[str] = []
    for index in range(atoms):
        a = rng.choice(variables)
        b = rng.choice(variables)
        if index % 4 == 3:
            parts.append(f"!({a} = {b})" if a != b else f"E({a}, {b})")
        else:
            parts.append(f"E({a}, {b})")
    return " & ".join(parts)


def _hom_deep_job(rng: random.Random) -> Tuple[DatabaseDrivenSystem, DatabaseTheory]:
    registers = ["r0", "r1"]
    states = [f"s{i}" for i in range(6)]
    transitions: List[Tuple[str, str, str]] = [
        (states[i], _deep_guard(rng, registers, rng.randint(6, 10)), states[i + 1])
        for i in range(len(states) - 1)
    ]
    # Back edges with more deep guards keep the abstract space cyclic.
    transitions.append((states[3], _deep_guard(rng, registers, 8), states[1]))
    transitions.append((states[4], _deep_guard(rng, registers, 8), states[2]))
    system = DatabaseDrivenSystem.build(
        schema=GRAPH_SCHEMA,
        registers=registers,
        states=states,
        initial=states[0],
        accepting=states[-1],
        transitions=transitions,
    )
    return system, HomTheory(_random_hom_template(rng, size=3))


def _tree_wide_job(rng: random.Random) -> Tuple[DatabaseDrivenSystem, DatabaseTheory]:
    labels = ["a", "b"]
    schema = tree_schema(labels)
    registers = ["r0", "r1"]
    states = ["t0", "t1", "t2"]
    guards = [
        "doc(r0_new, r1_new) & !(r0_new = r1_new)",
        f"label_{rng.choice(labels)}(r0_new) & doc(r0_old, r0_new) & doc(r1_old, r1_new)",
    ]
    system = DatabaseDrivenSystem.build(
        schema=schema,
        registers=registers,
        states=states,
        initial=states[0],
        accepting=states[-1],
        transitions=[(states[0], guards[0], states[1]), (states[1], guards[1], states[2])],
    )
    return system, TreeRunTheory(universal_automaton(labels))


_BUILDERS = {
    "relational": _relational_job,
    "hom": _hom_job,
    "word": _word_job,
    "tree": _tree_job,
    "data": _data_job,
    "hom_deep": _hom_deep_job,
    "tree_wide": _tree_wide_job,
}


def stress_workloads(seed: int = 2026) -> Dict[str, Dict[str, object]]:
    """Fixed representative instances of the adversarial families.

    Used by the benchmark runner's ``stress`` phase: one deterministic
    instance per family, with builders so fast/legacy comparisons construct
    fresh theories per timing round.
    """
    rng_hom = random.Random(seed)
    rng_tree = random.Random(seed + 1)
    hom_system, hom_theory = _hom_deep_job(rng_hom)
    tree_system, tree_theory = _tree_wide_job(rng_tree)
    hom_theory_spec = hom_theory.to_spec()
    tree_theory_spec = tree_theory.to_spec()
    from repro.service.specs import theory_from_spec

    return {
        "stress_hom_deep": {
            "description": "deep HOM guard templates (adversarial, 2 registers, "
            "6-10 edge atoms per guard, 3-element template)",
            "system": lambda: hom_system,
            "theory": lambda: theory_from_spec(hom_theory_spec),
            "max_configurations": _FAMILY_CAPS["hom_deep"],
            "smoke_max_configurations": _FAMILY_CAPS["hom_deep"],
        },
        "stress_tree_wide": {
            "description": "wide tree branching (adversarial, 2 registers over "
            "a 2-label universal tree language, capped exploration)",
            "system": lambda: tree_system,
            "theory": lambda: theory_from_spec(tree_theory_spec),
            "max_configurations": _FAMILY_CAPS["tree_wide"],
            "smoke_max_configurations": 8,
        },
    }


# -- heavy profile --------------------------------------------------------------
#
# The light profile produces millisecond-scale jobs: ideal for exercising the
# store and the wire format, useless for measuring parallel fan-out (pool
# overhead dominates).  Heavy jobs take the engine 0.1-1s each -- library
# systems whose abstract spaces are genuinely large, randomized through their
# HOM templates -- so a heavy batch is what the serial-vs-parallel benchmark
# runs on.


def _random_template(rng: random.Random, schema: Schema, size: int) -> Structure:
    """A random template over an arbitrary relational schema."""
    domain = list(range(size))
    relations = {}
    for name in schema.relation_names:
        arity = schema.relation(name).arity
        relations[name] = {
            t
            for t in itertools.product(domain, repeat=arity)
            if rng.random() < 0.55
        }
    return Structure(schema, domain, relations=relations)


def _heavy_triangle_job(rng: random.Random) -> Tuple[DatabaseDrivenSystem, DatabaseTheory]:
    # Template size is pinned to 2: three-colour templates push the HOM
    # enumeration for the 3-register triangle system past a minute per job.
    return triangle_system(), HomTheory(_random_template(rng, GRAPH_SCHEMA, 2))


def _heavy_clique_job(rng: random.Random) -> Tuple[DatabaseDrivenSystem, DatabaseTheory]:
    # Loops would make the clique system nonempty but multiply the abstract
    # space (~2 minutes under bfs); the loop-free K2 instance is the paper's
    # "no triangle in a bipartite graph" case and exhausts in ~1s.
    return clique_system(3), HomTheory(clique_template(2))


def _heavy_cycle_job(rng: random.Random) -> Tuple[DatabaseDrivenSystem, DatabaseTheory]:
    return (
        odd_red_cycle_system(),
        HomTheory(_random_template(rng, COLORED_GRAPH_SCHEMA, 2)),
    )


def _heavy_workflow_job(rng: random.Random) -> Tuple[DatabaseDrivenSystem, DatabaseTheory]:
    system = order_workflow_system()
    if rng.random() < 0.5:
        return system, AllDatabasesTheory(system.schema)
    return system, HomTheory(_random_template(rng, system.schema, 2))


_HEAVY_BUILDERS = (
    _heavy_triangle_job,
    _heavy_clique_job,
    _heavy_cycle_job,
    _heavy_workflow_job,
)


# -- HTTP client helpers (moved to repro.service.client) -------------------------
#
# These lived here before the client module existed.  The shims below keep
# old imports working for one more release while steering callers to
# `ServiceClient` (or `repro.service.client` for the bare helpers); they
# will be removed in 2.0.


def jobs_to_wire(jobs, wait=True, include_fingerprints=True):
    """Deprecated re-export; use :func:`repro.service.client.jobs_to_wire`."""
    import warnings

    warnings.warn(
        "repro.workloads.jobs_to_wire is deprecated; import it from "
        "repro.service.client (or use ServiceClient.submit_batch)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.service.client import jobs_to_wire as _jobs_to_wire

    return _jobs_to_wire(jobs, wait=wait, include_fingerprints=include_fingerprints)


def post_jobs(base_url, jobs, wait=True, include_fingerprints=True, **kwargs):
    """Deprecated re-export; use :class:`repro.service.client.ServiceClient`."""
    import warnings

    warnings.warn(
        "repro.workloads.post_jobs is deprecated; use "
        "repro.service.client.ServiceClient.submit_batch",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.service.client import post_jobs as _post_jobs

    return _post_jobs(
        base_url, jobs, wait=wait, include_fingerprints=include_fingerprints, **kwargs
    )


# -- public API ----------------------------------------------------------------


def generate_jobs(
    count: int,
    seed: int = 0,
    families: Sequence[str] = FAMILIES,
    max_configurations: Optional[int] = None,
    profile: str = "light",
) -> List[VerificationJob]:
    """Generate ``count`` seeded random verification jobs.

    Families are interleaved round-robin so every batch is heterogeneous;
    each job additionally draws a random search strategy (the verdict is
    strategy-independent, so this doubles as a determinism stressor).  Pass
    ``max_configurations`` to override the per-family engine caps.

    ``profile="light"`` (the default) yields small instances across all
    theories -- the traffic shape for store/warm-cache measurements;
    ``profile="heavy"`` yields fewer-family relational jobs taking the
    engine 0.1-1s each, the shape that makes parallel fan-out measurable.
    """
    if profile not in ("light", "heavy"):
        raise ValueError(f"unknown workload profile {profile!r}")
    unknown = set(families) - set(_BUILDERS)
    if unknown:
        raise ValueError(f"unknown workload families {sorted(unknown)}")
    if not families:
        raise ValueError("at least one workload family is required")
    rng = random.Random(seed)
    jobs: List[VerificationJob] = []
    for index in range(count):
        if profile == "heavy":
            builder = _HEAVY_BUILDERS[index % len(_HEAVY_BUILDERS)]
            family = builder.__name__.replace("_heavy_", "heavy-").replace("_job", "")
            system, theory = builder(rng)
            cap = max_configurations if max_configurations is not None else 50_000
        else:
            family = families[index % len(families)]
            system, theory = _BUILDERS[family](rng)
            cap = max_configurations if max_configurations is not None else _FAMILY_CAPS[family]
        jobs.append(
            VerificationJob(
                system=system,
                theory=theory,
                strategy=rng.choice(STRATEGY_NAMES),
                max_configurations=cap,
                label=f"{family}-{index:04d}",
            )
        )
    return jobs
