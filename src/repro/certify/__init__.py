"""Replayable witness certificates (engine-independent proof objects).

A *certificate* packages everything needed to re-check a positive emptiness
verdict without the solver: the system spec, the theory spec, the witness
database spec, the run (state/valuation trace plus the transition indices
taken), and per-theory *accepting evidence* (the accepted word, the accepting
tree run, the element-to-value assignment).  :mod:`repro.certify.format`
builds, renders, and encodes certificates; :mod:`repro.certify.validator`
re-checks them using only :mod:`repro.logic` primitives -- it deliberately
imports nothing from :mod:`repro.fraisse.engine`, :mod:`repro.fraisse.plans`
or :mod:`repro.perf`, so it cannot share a bug with the fast path.
"""

from repro.certify.format import (
    CERTIFICATE_FORMAT,
    build_certificate,
    decode_certificate,
    encode_certificate,
    render_certificate,
)
from repro.certify.validator import validate_certificate, validate_encoded
from repro.errors import CertificateError

__all__ = [
    "CERTIFICATE_FORMAT",
    "CertificateError",
    "build_certificate",
    "decode_certificate",
    "encode_certificate",
    "render_certificate",
    "validate_certificate",
    "validate_encoded",
]
