"""Engine-independent certificate validation.

Re-checks a certificate from first principles: the run is replayed against
the system spec (guards re-parsed and re-evaluated on the witness database),
and class membership is re-derived per theory kind from the certificate's
evidence.  Everything here is re-implemented from the published spec formats
on top of :mod:`repro.logic` and the standard library -- this module must
stay free of imports from :mod:`repro.fraisse.engine`,
:mod:`repro.fraisse.plans` and :mod:`repro.perf` (enforced by tests), so a
bug in the solver's fast path cannot silently validate its own output.

:func:`validate_certificate` raises :class:`~repro.errors.CertificateError`
on the first failed check and returns a small report dict on success.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import CertificateError, FormulaError, ReproError
from repro.logic.parser import parse_formula
from repro.logic.schema import Schema
from repro.logic.structures import Structure, sorted_key_list

from repro.certify.format import CERTIFICATE_FORMAT, decode_certificate

#: Guard-variable suffixes of the DDS spec format (``x_old`` / ``x_new``).
_OLD_SUFFIX = "_old"
_NEW_SUFFIX = "_new"

#: Relation/prefix names of the word- and tree-database encodings.
_BEFORE = "before"
_LABEL_PREFIX = "label_"
_ANCESTOR = "anc"
_DOCUMENT_ORDER = "doc"
_CCA = "cca"

#: Colour-predicate prefix of the HOM(H) lift.
_HOM_COLOR_PREFIX = "hom_color_"


def validate_encoded(text: str) -> Dict[str, Any]:
    """Decode and validate a wire/store-encoded certificate."""
    return validate_certificate(decode_certificate(text))


def validate_certificate(certificate: Dict[str, Any]) -> Dict[str, Any]:
    """Re-check a certificate; raises :class:`CertificateError` on failure.

    Returns a report dict: ``{"format", "theory_kind", "steps",
    "transitions", "witness_size"}``.
    """
    if not isinstance(certificate, dict):
        raise CertificateError("certificate must be a JSON object")
    if certificate.get("format") != CERTIFICATE_FORMAT:
        raise CertificateError(
            f"unsupported certificate format {certificate.get('format')!r} "
            f"(this validator understands format {CERTIFICATE_FORMAT})"
        )
    for key in ("system", "theory", "database", "steps", "transitions", "evidence"):
        if key not in certificate:
            raise CertificateError(f"certificate is missing the {key!r} field")

    try:
        database = Structure.from_spec(certificate["database"])
    except (ReproError, KeyError, TypeError, ValueError) as exc:
        raise CertificateError(f"malformed witness database spec: {exc}") from exc

    steps = _check_run(certificate["system"], certificate["transitions"],
                       certificate["steps"], database)
    theory_spec = certificate["theory"]
    kind = theory_spec.get("kind") if isinstance(theory_spec, dict) else None
    _check_membership(theory_spec, database, certificate["evidence"])

    return {
        "format": CERTIFICATE_FORMAT,
        "theory_kind": kind,
        "steps": len(steps),
        "transitions": len(certificate["transitions"]),
        "witness_size": database.size,
    }


# -- run replay -----------------------------------------------------------------


def _check_run(
    system_spec: Dict[str, Any],
    transition_indices: Sequence[int],
    steps: Sequence[Any],
    database: Structure,
) -> List[Tuple[str, Dict[str, Any]]]:
    """Replay the run: initial state, valuations, guards, accepting state."""
    if not isinstance(system_spec, dict):
        raise CertificateError("system spec must be a JSON object")
    try:
        states = set(system_spec["states"])
        registers = list(system_spec["registers"])
        initial = set(system_spec["initial"])
        accepting = set(system_spec["accepting"])
        spec_transitions = [list(t) for t in system_spec["transitions"]]
    except (KeyError, TypeError) as exc:
        raise CertificateError(f"malformed system spec: {exc}") from exc

    if not steps:
        raise CertificateError("a run must contain at least one configuration")
    normalized: List[Tuple[str, Dict[str, Any]]] = []
    for index, step in enumerate(steps):
        try:
            state, valuation = step
        except (TypeError, ValueError):
            raise CertificateError(f"step {index} is not a [state, valuation] pair") from None
        if state not in states:
            raise CertificateError(f"step {index} uses unknown state {state!r}")
        if not isinstance(valuation, dict) or set(valuation) != set(registers):
            raise CertificateError(
                f"step {index} valuation does not assign exactly the registers"
            )
        for register, value in valuation.items():
            if value not in database.domain:
                raise CertificateError(
                    f"step {index} assigns register {register!r} to {value!r}, "
                    "which is outside the witness domain"
                )
        normalized.append((state, dict(valuation)))

    first_state = normalized[0][0]
    if first_state not in initial:
        raise CertificateError(f"run starts in non-initial state {first_state!r}")
    final_state = normalized[-1][0]
    if final_state not in accepting:
        raise CertificateError(f"run ends in non-accepting state {final_state!r}")

    if len(transition_indices) != len(normalized) - 1:
        raise CertificateError(
            f"{len(normalized)} steps need {len(normalized) - 1} transitions, "
            f"certificate lists {len(transition_indices)}"
        )
    guard_cache: Dict[int, Any] = {}
    for position, raw_index in enumerate(transition_indices):
        if not isinstance(raw_index, int) or not 0 <= raw_index < len(spec_transitions):
            raise CertificateError(f"transition index {raw_index!r} is out of range")
        source, guard_text, target = spec_transitions[raw_index]
        state_before, valuation_before = normalized[position]
        state_after, valuation_after = normalized[position + 1]
        if source != state_before or target != state_after:
            raise CertificateError(
                f"transition {raw_index} connects {source!r}->{target!r} but step "
                f"{position} goes {state_before!r}->{state_after!r}"
            )
        guard = guard_cache.get(raw_index)
        if guard is None:
            try:
                guard = parse_formula(guard_text)
            except ReproError as exc:
                raise CertificateError(
                    f"unparsable guard {guard_text!r} in system spec: {exc}"
                ) from exc
            guard_cache[raw_index] = guard
        combined = {}
        for register in registers:
            combined[register + _OLD_SUFFIX] = valuation_before[register]
            combined[register + _NEW_SUFFIX] = valuation_after[register]
        try:
            holds = guard.evaluate(database, combined)
        except (ReproError, FormulaError) as exc:
            raise CertificateError(
                f"guard {guard_text!r} cannot be evaluated on the witness: {exc}"
            ) from exc
        if not holds:
            raise CertificateError(
                f"guard {guard_text!r} fails on step {position} of the run"
            )
    return normalized


# -- class membership, per theory kind -------------------------------------------


def _check_membership(
    theory_spec: Any, database: Structure, evidence: Any
) -> None:
    if not isinstance(theory_spec, dict) or "kind" not in theory_spec:
        raise CertificateError("theory spec must be a JSON object with a 'kind' tag")
    if not isinstance(evidence, dict):
        raise CertificateError("certificate evidence must be a JSON object")
    kind = theory_spec["kind"]
    if kind == "all_databases":
        _check_all_databases(theory_spec, database)
    elif kind == "hom":
        _check_hom(theory_spec, database)
    elif kind == "word_run":
        _check_word(theory_spec, database, evidence)
    elif kind == "tree_run":
        _check_tree(theory_spec, database, evidence)
    elif kind == "data_valued":
        _check_data_valued(theory_spec, database, evidence)
    else:
        raise CertificateError(f"unknown theory kind {kind!r}")


def _check_all_databases(theory_spec: Dict[str, Any], database: Structure) -> None:
    """Every finite database over the schema is in the class; check the schema."""
    try:
        schema = Schema.from_spec(theory_spec["schema"])
    except (ReproError, KeyError, TypeError) as exc:
        raise CertificateError(f"malformed all_databases schema: {exc}") from exc
    if database.schema != schema:
        raise CertificateError(
            "witness database schema differs from the all_databases theory schema"
        )


def _check_hom(theory_spec: Dict[str, Any], database: Structure) -> None:
    """HOM(H) lift: the colouring stored in the witness is a homomorphism."""
    try:
        template = Structure.from_spec(theory_spec["template"])
    except (ReproError, KeyError, TypeError) as exc:
        raise CertificateError(f"malformed HOM template spec: {exc}") from exc
    color_names = {
        element: f"{_HOM_COLOR_PREFIX}{index}"
        for index, element in enumerate(sorted_key_list(template.domain))
    }
    expected_schema = template.schema.extend(
        relations={name: 1 for name in color_names.values()}
    )
    if database.schema != expected_schema:
        raise CertificateError(
            "witness schema is not the template schema extended with colour predicates"
        )
    coloring: Dict[Any, Any] = {}
    for template_element, name in color_names.items():
        for (element,) in database.relation(name):
            if element in coloring:
                raise CertificateError(f"witness element {element!r} is multi-coloured")
            coloring[element] = template_element
    if set(coloring) != set(database.domain):
        raise CertificateError("HOM witness colouring does not cover the domain")
    for relation in template.schema.relation_names:
        for t in database.relation(relation):
            image = tuple(coloring[e] for e in t)
            if not template.holds(relation, *image):
                raise CertificateError(
                    f"colouring is not a homomorphism: {relation}{t!r} maps to "
                    f"{relation}{image!r}, which does not hold in the template"
                )


def _check_word(
    theory_spec: Dict[str, Any], database: Structure, evidence: Dict[str, Any]
) -> None:
    """Worddb(L): decode the database into a word and re-check NFA acceptance."""
    word = evidence.get("word")
    if not isinstance(word, list) or not all(isinstance(w, str) for w in word):
        raise CertificateError("word_run evidence must carry the accepted word")
    decoded = _decode_word_database(database)
    if decoded != word:
        raise CertificateError(
            f"witness database decodes to {decoded!r}, evidence claims {word!r}"
        )
    nfa = theory_spec.get("nfa")
    if not isinstance(nfa, dict):
        raise CertificateError("word_run theory spec is missing the NFA")
    if not _nfa_accepts(nfa, word):
        raise CertificateError(f"the NFA rejects the witness word {word!r}")


def _decode_word_database(database: Structure) -> List[str]:
    """Decode a WordSchema database: strict linear order, one label per position."""
    elements = sorted_key_list(database.domain)
    try:
        before = database.relation(_BEFORE)
    except ReproError as exc:
        raise CertificateError(f"word witness has no {_BEFORE!r} relation: {exc}") from exc
    for a in elements:
        if (a, a) in before:
            raise CertificateError(f"word order is not irreflexive at {a!r}")
        for b in elements:
            if a != b and ((a, b) in before) == ((b, a) in before):
                raise CertificateError(
                    f"word order is not a strict linear order on {a!r}, {b!r}"
                )
    ordered = sorted(elements, key=lambda e: sum(1 for b in elements if (b, e) in before))
    label_relations = [
        name for name in database.schema.relation_names if name.startswith(_LABEL_PREFIX)
    ]
    word: List[str] = []
    for element in ordered:
        letters = [
            name[len(_LABEL_PREFIX):]
            for name in label_relations
            if database.holds(name, element)
        ]
        if len(letters) != 1:
            raise CertificateError(
                f"position {element!r} carries {len(letters)} labels instead of one"
            )
        word.append(letters[0])
    return word


def _nfa_accepts(nfa_spec: Dict[str, Any], word: Sequence[str]) -> bool:
    """NFA acceptance by on-the-fly subset construction over the raw spec."""
    try:
        transitions = [tuple(t) for t in nfa_spec["transitions"]]
        current = set(nfa_spec["initial"])
        accepting = set(nfa_spec["accepting"])
    except (KeyError, TypeError) as exc:
        raise CertificateError(f"malformed NFA spec: {exc}") from exc
    for letter in word:
        current = {q for p, a, q in transitions if p in current and a == letter}
        if not current:
            return False
    return bool(current & accepting)


# -- tree certificates -----------------------------------------------------------


def _tree_nodes(tree_spec: Any) -> List[Tuple[Tuple[int, ...], str, int]]:
    """Flatten a tree spec into ``(path, label, child_count)`` in preorder.

    Accepts the native spec shape (bare label string for leaves,
    ``(label, [children])`` pairs otherwise) with tuples or JSON lists.
    """
    nodes: List[Tuple[Tuple[int, ...], str, int]] = []

    def walk(spec: Any, path: Tuple[int, ...]) -> None:
        if isinstance(spec, str):
            nodes.append((path, spec, 0))
            return
        try:
            label, children = spec
        except (TypeError, ValueError):
            raise CertificateError(f"malformed tree spec node {spec!r}") from None
        if not isinstance(label, str):
            raise CertificateError(f"tree node label {label!r} is not a string")
        nodes.append((path, label, len(children)))
        for index, child in enumerate(children):
            walk(child, path + (index,))

    walk(tree_spec, ())
    return nodes


def _check_tree(
    theory_spec: Dict[str, Any], database: Structure, evidence: Dict[str, Any]
) -> None:
    """Treedb(L): the evidence tree matches the database and its run is accepting."""
    if "tree" not in evidence or "run" not in evidence:
        raise CertificateError("tree_run evidence must carry the tree and its run")
    nodes = _tree_nodes(evidence["tree"])
    paths = [path for path, _, _ in nodes]
    label_of = {path: label for path, label, _ in nodes}
    children_of = {path: count for path, _, count in nodes}

    try:
        run = {tuple(path): state for path, state in evidence["run"]}
    except (TypeError, ValueError):
        raise CertificateError("tree_run evidence run must be [path, state] pairs") from None
    if set(run) != set(paths):
        raise CertificateError("tree run does not assign exactly the tree's nodes")
    _check_tree_run(theory_spec.get("automaton"), paths, label_of, children_of, run)
    _check_tree_database(database, nodes)


def _check_tree_run(
    automaton_spec: Any,
    paths: Sequence[Tuple[int, ...]],
    label_of: Dict[Tuple[int, ...], str],
    children_of: Dict[Tuple[int, ...], int],
    run: Dict[Tuple[int, ...], str],
) -> None:
    """Local run rules: letters, leaves, root, firstchild/nextsibling/rightmost."""
    if not isinstance(automaton_spec, dict):
        raise CertificateError("tree_run theory spec is missing the automaton")
    try:
        letter_of = {state: letter for state, letter in automaton_spec["letter"]}
        firstchild = {tuple(pair) for pair in automaton_spec["firstchild"]}
        nextsibling = {tuple(pair) for pair in automaton_spec["nextsibling"]}
        leaf_states = set(automaton_spec["leaf_states"])
        root_states = set(automaton_spec["root_states"])
        rightmost_states = set(automaton_spec["rightmost_states"])
    except (KeyError, TypeError, ValueError) as exc:
        raise CertificateError(f"malformed tree automaton spec: {exc}") from exc

    if run[()] not in root_states:
        raise CertificateError(f"root state {run[()]!r} is not a root state")
    for path in paths:
        state = run[path]
        if letter_of.get(state) != label_of[path]:
            raise CertificateError(
                f"state {state!r} at {path!r} reads {letter_of.get(state)!r}, "
                f"node label is {label_of[path]!r}"
            )
        count = children_of[path]
        if count == 0:
            if state not in leaf_states:
                raise CertificateError(f"leaf state {state!r} at {path!r} is not a leaf state")
            continue
        child_states = [run[path + (i,)] for i in range(count)]
        if (child_states[0], state) not in firstchild:
            raise CertificateError(
                f"({child_states[0]!r}, {state!r}) is not a firstchild pair at {path!r}"
            )
        for left, right in zip(child_states, child_states[1:]):
            if (right, left) not in nextsibling:
                raise CertificateError(
                    f"({right!r}, {left!r}) is not a nextsibling pair under {path!r}"
                )
        if child_states[-1] not in rightmost_states:
            raise CertificateError(
                f"last child state {child_states[-1]!r} under {path!r} is not rightmost"
            )


def _check_tree_database(
    database: Structure, nodes: Sequence[Tuple[Tuple[int, ...], str, int]]
) -> None:
    """The witness database must be exactly Treedb of the evidence tree."""
    paths = [path for path, _, _ in nodes]
    ids = list(range(len(paths)))
    if set(database.domain) != set(ids):
        raise CertificateError(
            "tree witness domain is not the preorder index range of the evidence tree"
        )
    alphabet = sorted(
        name[len(_LABEL_PREFIX):]
        for name in database.schema.relation_names
        if name.startswith(_LABEL_PREFIX)
    )
    labels = {label for _, label, _ in nodes}
    if not labels <= set(alphabet):
        raise CertificateError("evidence tree uses labels outside the witness schema")

    def is_prefix(a: Tuple[int, ...], b: Tuple[int, ...]) -> bool:
        return len(a) <= len(b) and b[: len(a)] == a

    expected_anc = set()
    expected_doc = set()
    for i in ids:
        for j in ids:
            if is_prefix(paths[i], paths[j]):
                expected_anc.add((i, j))
            if i != j and paths[i] < paths[j]:
                expected_doc.add((i, j))
    if set(database.relation(_ANCESTOR)) != expected_anc:
        raise CertificateError("witness ancestor relation disagrees with the evidence tree")
    if set(database.relation(_DOCUMENT_ORDER)) != expected_doc:
        raise CertificateError("witness document order disagrees with the evidence tree")
    for label in alphabet:
        expected = {(i,) for i in ids if nodes[i][1] == label}
        if set(database.relation(_LABEL_PREFIX + label)) != expected:
            raise CertificateError(
                f"witness label predicate {_LABEL_PREFIX + label!r} disagrees with the tree"
            )
    path_index = {path: i for i, path in enumerate(paths)}
    cca = database.function(_CCA)
    for i in ids:
        for j in ids:
            common: List[int] = []
            for a, b in zip(paths[i], paths[j]):
                if a != b:
                    break
                common.append(a)
            if cca.get((i, j)) != path_index[tuple(common)]:
                raise CertificateError(
                    f"witness cca({i}, {j}) disagrees with the evidence tree"
                )


# -- data-value products ----------------------------------------------------------


def _check_data_valued(
    theory_spec: Dict[str, Any], database: Structure, evidence: Dict[str, Any]
) -> None:
    """Check the value relations from the assignment, then recurse on the base."""
    values_raw = evidence.get("values")
    if not isinstance(values_raw, dict):
        raise CertificateError("data_valued evidence must carry the value assignment")
    values_spec = theory_spec.get("values")
    if not isinstance(values_spec, dict) or "kind" not in values_spec:
        raise CertificateError("data_valued theory spec is missing the value domain")
    relation_name = values_spec.get("relation_name")
    if not isinstance(relation_name, str):
        raise CertificateError("value domain spec is missing its relation name")

    elements = sorted_key_list(database.domain)
    assignment: Dict[Any, str] = {}
    for element in elements:
        key = str(element)
        if key not in values_raw:
            raise CertificateError(f"element {element!r} has no data value in the evidence")
        assignment[element] = values_raw[key]

    kind = values_spec["kind"]
    if kind == "naturals_equality":
        def value_holds(left: str, right: str) -> bool:
            return left == right
    elif kind in ("rationals_order", "naturals_order"):
        def value_holds(left: str, right: str) -> bool:
            try:
                return Fraction(left) < Fraction(right)
            except (ValueError, ZeroDivisionError) as exc:
                raise CertificateError(f"non-rational data value: {exc}") from exc
    else:
        raise CertificateError(f"unknown value domain kind {kind!r}")

    if theory_spec.get("injective"):
        if len(set(assignment.values())) != len(assignment):
            raise CertificateError("injective product evidence repeats a data value")

    expected = {
        (a, b)
        for a in elements
        for b in elements
        if value_holds(assignment[a], assignment[b])
    }
    try:
        actual = set(database.relation(relation_name))
    except ReproError as exc:
        raise CertificateError(
            f"witness has no value relation {relation_name!r}: {exc}"
        ) from exc
    if actual != expected:
        raise CertificateError(
            f"witness value relation {relation_name!r} disagrees with the assignment"
        )

    base_spec = theory_spec.get("base")
    if not isinstance(base_spec, dict):
        raise CertificateError("data_valued theory spec is missing its base theory")
    base_database = _project_off_relation(database, relation_name)
    _check_membership(base_spec, base_database, evidence.get("base", {}))


def _project_off_relation(database: Structure, relation_name: str) -> Structure:
    """The witness with the value relation forgotten (the base-schema part)."""
    relations = {
        name: set(database.relation(name))
        for name in database.schema.relation_names
        if name != relation_name
    }
    functions = {
        name: dict(database.function(name)) for name in database.schema.function_names
    }
    schema_relations = {
        name: database.schema.relation(name).arity
        for name in database.schema.relation_names
        if name != relation_name
    }
    schema_functions = {
        name: database.schema.function(name).arity
        for name in database.schema.function_names
    }
    schema = Schema(relations=schema_relations, functions=schema_functions)
    return Structure(
        schema,
        set(database.domain),
        relations=relations,
        functions=functions,
        validate=False,
    )
