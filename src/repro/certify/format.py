"""Certificate construction, canonical rendering, and wire encoding.

The certificate is a plain JSON object (format version
:data:`CERTIFICATE_FORMAT`):

``format``
    The integer format version.
``system`` / ``theory`` / ``database``
    The canonical specs of the verified system, its database theory, and the
    witness database (``DatabaseDrivenSystem.to_spec`` /
    ``DatabaseTheory.to_spec`` / ``Structure.to_spec``).
``steps``
    The accepting run as ``[state, {register: element}]`` pairs.
``transitions``
    For each consecutive step pair, the index of the justifying transition in
    ``system["transitions"]`` (the spec preserves definition order).
``evidence``
    The theory's accepting evidence from
    :meth:`~repro.fraisse.base.DatabaseTheory.certify`.

For storage and the wire the canonical JSON text is zlib-compressed and
base64-encoded (witness databases repeat relation tuples heavily, so the
compressed form is typically a small fraction of the JSON size).
"""

from __future__ import annotations

import base64
import binascii
import json
import zlib
from typing import Any, Dict

from repro.errors import CertificateError

#: Certificate format version; bump on incompatible layout changes.
CERTIFICATE_FORMAT = 1


def build_certificate(system: Any, theory: Any, result: Any) -> Dict[str, Any]:
    """Assemble the certificate object for a nonempty :class:`EmptinessResult`.

    ``system``/``theory``/``result`` are duck-typed (only ``to_spec`` and the
    ``run``/``evidence`` fields are used), so this module stays import-free of
    the engine.
    """
    run = getattr(result, "run", None)
    if run is None:
        raise CertificateError("only nonempty results carry a witness to certify")
    system_spec = system.to_spec()
    try:
        theory_spec = theory.to_spec()
    except NotImplementedError as exc:
        raise CertificateError(
            f"theory {type(theory).__name__} does not support spec serialization"
        ) from exc
    spec_transitions = [list(t) for t in system_spec["transitions"]]
    transition_indices = []
    for transition in run.transitions_taken:
        rendered = [transition.source, str(transition.guard), transition.target]
        try:
            transition_indices.append(spec_transitions.index(rendered))
        except ValueError:  # pragma: no cover - engine only takes system transitions
            raise CertificateError(
                f"run transition {rendered!r} is not a transition of the system"
            ) from None
    return {
        "format": CERTIFICATE_FORMAT,
        "system": system_spec,
        "theory": theory_spec,
        "database": run.database.to_spec(),
        "steps": [[state, dict(valuation)] for state, valuation in run.steps],
        "transitions": transition_indices,
        "evidence": result.evidence if result.evidence is not None else {},
    }


def render_certificate(certificate: Dict[str, Any]) -> str:
    """The canonical textual form of a certificate.

    Single source of truth for both the CLI and the HTTP witness endpoint,
    so the two renderings agree byte for byte.
    """
    return json.dumps(certificate, sort_keys=True, separators=(",", ":"))


def encode_certificate(certificate: Dict[str, Any]) -> str:
    """Compress and base64-encode a certificate for the store and the wire."""
    return base64.b64encode(
        zlib.compress(render_certificate(certificate).encode("utf-8"), level=6)
    ).decode("ascii")


def decode_certificate(text: str) -> Dict[str, Any]:
    """Rebuild a certificate object from :func:`encode_certificate` output."""
    if not isinstance(text, str) or not text:
        raise CertificateError("encoded certificate must be a non-empty string")
    try:
        raw = zlib.decompress(base64.b64decode(text.encode("ascii"), validate=True))
        certificate = json.loads(raw.decode("utf-8"))
    except (binascii.Error, ValueError, zlib.error, UnicodeError) as exc:
        raise CertificateError(f"undecodable certificate: {exc}") from exc
    if not isinstance(certificate, dict):
        raise CertificateError("certificate payload is not a JSON object")
    return certificate
