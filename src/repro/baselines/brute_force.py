"""Brute-force emptiness: enumerate databases, simulate on each.

The baseline against which every abstraction-based decision procedure in this
library is validated (and benchmarked, experiment E9).  It enumerates
candidate databases of the class up to a size bound, filters them by the
class's membership test, and searches the finite configuration graph of each
with :func:`repro.systems.simulate.find_accepting_run`.

The answer is exact *for the explored size bound*: a positive answer is
definitive (a concrete witness is produced); a negative answer only says that
no witness with at most ``max_size`` elements exists.  For the decidable
classes of the paper the abstraction solver provides the matching upper
bound, which is exactly how the integration tests use the two together.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.baselines.enumeration import all_databases_up_to
from repro.logic.schema import Schema
from repro.logic.structures import Structure
from repro.systems.dds import DatabaseDrivenSystem, Run
from repro.systems.simulate import find_accepting_run


@dataclass
class BruteForceResult:
    """Outcome of a brute-force emptiness search."""

    nonempty: bool
    witness_database: Optional[Structure] = None
    run: Optional[Run] = None
    databases_checked: int = 0
    max_size_explored: int = 0
    elapsed_seconds: float = 0.0

    @property
    def empty(self) -> bool:
        return not self.nonempty

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.nonempty


class BruteForceSolver:
    """Enumerate databases up to a size bound and simulate the system on each.

    Parameters
    ----------
    membership:
        Optional class-membership predicate (e.g.
        ``HomTheory(template).membership``); ``None`` means all databases over
        the schema are admitted.
    database_source:
        Optional custom iterator factory ``(schema, max_size) -> Iterable[Structure]``;
        defaults to exhaustive enumeration of all databases over the schema.
    """

    def __init__(
        self,
        membership: Optional[Callable[[Structure], bool]] = None,
        database_source: Optional[Callable[[Schema, int], Iterable[Structure]]] = None,
    ) -> None:
        self._membership = membership
        self._database_source = database_source or (
            lambda schema, max_size: all_databases_up_to(schema, max_size)
        )

    def check(
        self,
        system: DatabaseDrivenSystem,
        max_size: int,
        max_steps: Optional[int] = None,
    ) -> BruteForceResult:
        """Search all admitted databases with at most ``max_size`` elements."""
        start = time.perf_counter()
        checked = 0
        for database in self._database_source(system.schema, max_size):
            if self._membership is not None and not self._membership(database):
                continue
            checked += 1
            run = find_accepting_run(system, database, max_steps=max_steps)
            if run is not None:
                return BruteForceResult(
                    nonempty=True,
                    witness_database=database,
                    run=run,
                    databases_checked=checked,
                    max_size_explored=max_size,
                    elapsed_seconds=time.perf_counter() - start,
                )
        return BruteForceResult(
            nonempty=False,
            databases_checked=checked,
            max_size_explored=max_size,
            elapsed_seconds=time.perf_counter() - start,
        )

    def check_databases(
        self,
        system: DatabaseDrivenSystem,
        databases: Iterable[Structure],
        max_steps: Optional[int] = None,
    ) -> BruteForceResult:
        """Same as :meth:`check` but over an explicit collection of databases."""
        start = time.perf_counter()
        checked = 0
        for database in databases:
            if self._membership is not None and not self._membership(database):
                continue
            checked += 1
            run = find_accepting_run(system, database, max_steps=max_steps)
            if run is not None:
                return BruteForceResult(
                    nonempty=True,
                    witness_database=database,
                    run=run,
                    databases_checked=checked,
                    elapsed_seconds=time.perf_counter() - start,
                )
        return BruteForceResult(
            nonempty=False,
            databases_checked=checked,
            elapsed_seconds=time.perf_counter() - start,
        )


def brute_force_emptiness(
    system: DatabaseDrivenSystem,
    max_size: int,
    membership: Optional[Callable[[Structure], bool]] = None,
    max_steps: Optional[int] = None,
) -> BruteForceResult:
    """One-shot convenience wrapper around :class:`BruteForceSolver`."""
    return BruteForceSolver(membership=membership).check(system, max_size, max_steps=max_steps)
