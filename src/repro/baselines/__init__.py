"""Brute-force baselines: exhaustive database enumeration plus simulation."""

from repro.baselines.brute_force import (
    BruteForceResult,
    BruteForceSolver,
    brute_force_emptiness,
)
from repro.baselines.enumeration import (
    all_databases_of_size,
    all_databases_up_to,
    count_databases_of_size,
    random_colored_graph,
    random_database,
    random_databases,
)

__all__ = [
    "BruteForceSolver",
    "BruteForceResult",
    "brute_force_emptiness",
    "all_databases_of_size",
    "all_databases_up_to",
    "count_databases_of_size",
    "random_database",
    "random_databases",
    "random_colored_graph",
]
