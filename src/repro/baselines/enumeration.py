"""Exhaustive and random enumeration of small databases.

These generators feed the brute-force baseline (:mod:`repro.baselines.brute_force`)
and the property-based tests: they produce *every* database over a relational
schema up to a given domain size (so the baseline answer is exact for that
size), as well as random samples for larger sizes.

The number of databases grows doubly exponentially with the domain size, so
exhaustive enumeration is only meant for sizes up to 3-4; this is exactly the
regime where it serves as ground truth for the abstraction-based solvers.
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, Iterator, List, Optional, Sequence

from repro.logic.schema import Schema
from repro.logic.structures import Element, Structure


def all_tuple_sets(elements: Sequence[Element], arity: int) -> Iterator[frozenset]:
    """All subsets of the full tuple space ``elements^arity``."""
    tuples = list(itertools.product(elements, repeat=arity))
    for size in range(len(tuples) + 1):
        for chosen in itertools.combinations(tuples, size):
            yield frozenset(chosen)


def all_databases_of_size(schema: Schema, size: int) -> Iterator[Structure]:
    """Every database over a relational schema with domain ``{0, ..., size-1}``.

    Databases are enumerated up to nothing (no isomorphism reduction); the
    callers that care about counts de-duplicate themselves.
    """
    if not schema.is_relational:
        raise ValueError("exhaustive enumeration is only supported for relational schemas")
    elements = list(range(size))
    relation_names = list(schema.relation_names)
    spaces = [
        list(all_tuple_sets(elements, schema.relation(name).arity)) for name in relation_names
    ]
    for combination in itertools.product(*spaces):
        relations = dict(zip(relation_names, combination))
        yield Structure(schema, elements, relations=relations, validate=False)


def all_databases_up_to(schema: Schema, max_size: int) -> Iterator[Structure]:
    """Every database with at most ``max_size`` elements (sizes 1..max_size)."""
    for size in range(1, max_size + 1):
        yield from all_databases_of_size(schema, size)


def count_databases_of_size(schema: Schema, size: int) -> int:
    """The number of databases of a given size (without building them)."""
    total = 1
    for name in schema.relation_names:
        arity = schema.relation(name).arity
        total *= 2 ** (size ** arity)
    return total


def random_database(
    schema: Schema,
    size: int,
    tuple_probability: float = 0.3,
    rng: Optional[random.Random] = None,
) -> Structure:
    """A random database: each potential tuple is included independently."""
    rng = rng or random.Random()
    elements = list(range(size))
    relations = {}
    for name in schema.relation_names:
        arity = schema.relation(name).arity
        chosen = {
            t for t in itertools.product(elements, repeat=arity) if rng.random() < tuple_probability
        }
        relations[name] = chosen
    return Structure(schema, elements, relations=relations, validate=False)


def random_databases(
    schema: Schema,
    count: int,
    size: int,
    tuple_probability: float = 0.3,
    seed: Optional[int] = None,
) -> List[Structure]:
    """A reproducible batch of random databases."""
    rng = random.Random(seed)
    return [random_database(schema, size, tuple_probability, rng) for _ in range(count)]


def random_colored_graph(
    size: int,
    edge_probability: float = 0.3,
    red_probability: float = 0.5,
    rng: Optional[random.Random] = None,
) -> Structure:
    """A random graph over the Example 1 schema (edge relation + red predicate)."""
    from repro.relational.csp import COLORED_GRAPH_SCHEMA

    rng = rng or random.Random()
    elements = list(range(size))
    edges = {
        (a, b) for a, b in itertools.product(elements, repeat=2) if rng.random() < edge_probability
    }
    red = {(e,) for e in elements if rng.random() < red_probability}
    return Structure(
        COLORED_GRAPH_SCHEMA, elements, relations={"E": edges, "red": red}, validate=False
    )


def filtered(
    databases: Iterator[Structure], predicate: Callable[[Structure], bool]
) -> Iterator[Structure]:
    """Keep only databases satisfying a class-membership predicate."""
    return (database for database in databases if predicate(database))
