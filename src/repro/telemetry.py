"""Unified telemetry: metrics registry, search traces, and structured logs.

Three pillars, shared by every layer of the stack (engine, store, batch
runner, HTTP front door):

**Metrics.**  :class:`MetricsRegistry` holds named counters, gauges and
summaries with Prometheus-style labels and renders the text exposition
format (0.0.4) consumed by ``GET /v1/metrics``.  Collection is pull-based:
hot paths never touch the registry.  Engine-side numbers are ingested from
existing snapshots (:func:`repro.perf.cache_stats_snapshot`, the solver's
``SearchStatistics``) at scrape or job-completion time, so the instrumented
engine runs the exact same code as before -- zero overhead when nobody
scrapes.  :func:`validate_exposition` is a lint-style checker for the
rendered text (``# HELP``/``# TYPE`` pairing, label escaping, summary
``_sum``/``_count`` consistency) used by the test suite against every
exposition the server produces.

**Traces.**  :class:`TraceRecorder` is an opt-in span recorder the solver
threads through one search (plan compilation, per-transition drives,
frontier milestones).  Recording is off unless a job asked for it
(``trace=true`` on submit, ``--trace`` on ``repro batch``); the recorded
spans persist next to the verdict row and export as Chrome trace-event
JSON (:func:`chrome_trace`) so they open directly in Perfetto or
``about://tracing``.

**Logs.**  Stdlib-``logging`` JSON lines with request-id / fingerprint
correlation carried in a :class:`~contextvars.ContextVar`
(:func:`log_context`), shippable across process boundaries to batch
workers via :func:`current_log_context`.  Nothing is emitted unless
:func:`configure_logging` ran (``repro serve --log-level``), so library
use stays silent.

The module is intentionally dependency-free (stdlib + :mod:`repro.perf`)
so any layer may import it without cycles.
"""

from __future__ import annotations

import json
import logging
import math
import re
import sys
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.perf import cache_stats_snapshot

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Summary",
    "validate_exposition",
    "parse_exposition",
    "counter_regressions",
    "TraceRecorder",
    "chrome_trace",
    "EngineRollup",
    "engine_counters_snapshot",
    "engine_counters_delta",
    "merge_worker_counters",
    "worker_counters_snapshot",
    "reset_worker_counters",
    "note_plan_compilation",
    "plan_compilation_count",
    "telemetry_enabled",
    "set_telemetry_enabled",
    "telemetry_disabled",
    "configure_logging",
    "get_logger",
    "log_context",
    "current_log_context",
]

# ---------------------------------------------------------------------------
# Global on/off switch
# ---------------------------------------------------------------------------

_telemetry_enabled: bool = True


def telemetry_enabled() -> bool:
    """Whether telemetry ingestion (rollups, worker merges) is active."""
    return _telemetry_enabled


def set_telemetry_enabled(enabled: bool) -> None:
    global _telemetry_enabled
    _telemetry_enabled = bool(enabled)


@contextmanager
def telemetry_disabled() -> Iterator[None]:
    """Run a block with telemetry ingestion off (benchmark baseline mode)."""
    global _telemetry_enabled
    previous = _telemetry_enabled
    _telemetry_enabled = False
    try:
        yield
    finally:
        _telemetry_enabled = previous


# ---------------------------------------------------------------------------
# Metric primitives
# ---------------------------------------------------------------------------

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelKey = Tuple[Tuple[str, str], ...]


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_sample(name: str, labels: LabelKey, value: float) -> str:
    if labels:
        body = ",".join(f'{key}="{_escape_label_value(str(val))}"' for key, val in labels)
        return f"{name}{{{body}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


class _MetricBase:
    """Shared name/help/label plumbing for all metric kinds."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> None:
        if not _METRIC_NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_NAME_RE.match(label):
                raise ValueError(f"invalid label name {label!r} on metric {name!r}")
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: Mapping[str, Any]) -> LabelKey:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, got {tuple(labels)}"
            )
        return tuple((name, str(labels[name])) for name in self.labelnames)

    def header_lines(self) -> List[str]:
        return [
            f"# HELP {self.name} {_escape_help(self.help_text)}",
            f"# TYPE {self.name} {self.kind}",
        ]

    def sample_lines(self) -> List[str]:  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(_MetricBase):
    """A monotonically increasing value, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help_text, labelnames)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def sample_lines(self) -> List[str]:
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.labelnames:
            items = [((), 0.0)]
        return [_format_sample(self.name, labels, value) for labels, value in items]


class Gauge(_MetricBase):
    """A value that can go up and down, or be computed at scrape time.

    Pass ``callback`` to make collection pull-based: the callable runs at
    render time and returns either a number (unlabelled gauge) or a mapping
    of label-value tuples to numbers (labelled gauge).
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        callback: Optional[Callable[[], Any]] = None,
    ) -> None:
        super().__init__(name, help_text, labelnames)
        self._values: Dict[LabelKey, float] = {}
        self._callback = callback

    def set(self, value: float, **labels: Any) -> None:
        if self._callback is not None:
            raise ValueError(f"gauge {self.name!r} is callback-driven")
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if self._callback is not None:
            raise ValueError(f"gauge {self.name!r} is callback-driven")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def _collect(self) -> List[Tuple[LabelKey, float]]:
        if self._callback is None:
            with self._lock:
                items = sorted(self._values.items())
            if not items and not self.labelnames:
                items = [((), 0.0)]
            return items
        produced = self._callback()
        if isinstance(produced, Mapping):
            items = []
            for raw_key, value in produced.items():
                if isinstance(raw_key, Mapping):
                    key = self._key(raw_key)
                else:
                    values = (raw_key,) if isinstance(raw_key, str) else tuple(raw_key)
                    key = tuple(zip(self.labelnames, (str(v) for v in values)))
                items.append((key, float(value)))
            return sorted(items)
        return [((), float(produced))]

    def sample_lines(self) -> List[str]:
        return [_format_sample(self.name, labels, value) for labels, value in self._collect()]


class CounterCallback(_MetricBase):
    """A counter whose cumulative values are read from elsewhere at scrape time.

    Used to expose monotonic totals that already live in another subsystem
    (engine cache hit counts, store counters) without double bookkeeping.
    The callback contract matches :class:`Gauge`'s.
    """

    kind = "counter"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        callback: Callable[[], Any],
    ) -> None:
        super().__init__(name, help_text, labelnames)
        self._callback = callback

    def sample_lines(self) -> List[str]:
        produced = self._callback()
        items: List[Tuple[LabelKey, float]] = []
        if isinstance(produced, Mapping):
            for raw_key, value in produced.items():
                if isinstance(raw_key, Mapping):
                    key = self._key(raw_key)
                else:
                    values = (raw_key,) if isinstance(raw_key, str) else tuple(raw_key)
                    key = tuple(zip(self.labelnames, (str(v) for v in values)))
                items.append((key, float(value)))
            items.sort()
        else:
            items = [((), float(produced))]
        return [_format_sample(self.name, labels, value) for labels, value in items]


class Summary(_MetricBase):
    """Sliding-window quantiles plus lifetime ``_sum``/``_count`` totals.

    Quantiles are computed over the last ``window`` observations per label
    set (recent behaviour), while ``_sum``/``_count`` accumulate for the
    process lifetime (Prometheus ``rate()`` semantics).
    """

    kind = "summary"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        window: int = 512,
        quantiles: Sequence[float] = (0.5, 0.95, 0.99),
    ) -> None:
        super().__init__(name, help_text, labelnames)
        self._window = window
        self._quantiles = tuple(quantiles)
        self._samples: Dict[LabelKey, List[float]] = {}
        self._counts: Dict[LabelKey, int] = {}
        self._sums: Dict[LabelKey, float] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            bucket = self._samples.setdefault(key, [])
            bucket.append(float(value))
            if len(bucket) > self._window:
                del bucket[: len(bucket) - self._window]
            self._counts[key] = self._counts.get(key, 0) + 1
            self._sums[key] = self._sums.get(key, 0.0) + float(value)

    def count(self, **labels: Any) -> int:
        key = self._key(labels)
        with self._lock:
            return self._counts.get(key, 0)

    def snapshot(self) -> Dict[LabelKey, Tuple[List[float], int, float]]:
        """Per-labelset ``(window, lifetime count, lifetime sum)`` copies."""
        with self._lock:
            return {
                key: (list(self._samples[key]), self._counts[key], self._sums[key])
                for key in sorted(self._samples)
            }

    def sample_lines(self) -> List[str]:
        lines: List[str] = []
        with self._lock:
            keys = sorted(self._samples)
            snapshot = {
                key: (list(self._samples[key]), self._counts[key], self._sums[key])
                for key in keys
            }
        for key, (window, count, total) in snapshot.items():
            ordered = sorted(window)
            for quantile in self._quantiles:
                index = min(len(ordered) - 1, max(0, math.ceil(quantile * len(ordered)) - 1))
                labels = key + (("quantile", _format_quantile(quantile)),)
                lines.append(_format_sample(self.name, labels, ordered[index]))
            lines.append(_format_sample(f"{self.name}_sum", key, total))
            lines.append(_format_sample(f"{self.name}_count", key, count))
        return lines


def _format_quantile(quantile: float) -> str:
    text = f"{quantile:g}"
    return text


class MetricsRegistry:
    """A named collection of metrics rendered as one Prometheus exposition."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _MetricBase] = {}
        self._lock = threading.Lock()

    def _register(self, metric: _MetricBase) -> _MetricBase:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                raise ValueError(f"metric {metric.name!r} already registered")
            self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> Counter:
        metric = Counter(name, help_text, labelnames)
        self._register(metric)
        return metric

    def counter_callback(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        callback: Callable[[], Any],
    ) -> CounterCallback:
        metric = CounterCallback(name, help_text, labelnames, callback)
        self._register(metric)
        return metric

    def gauge(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        callback: Optional[Callable[[], Any]] = None,
    ) -> Gauge:
        metric = Gauge(name, help_text, labelnames, callback)
        self._register(metric)
        return metric

    def summary(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        window: int = 512,
        quantiles: Sequence[float] = (0.5, 0.95, 0.99),
    ) -> Summary:
        metric = Summary(name, help_text, labelnames, window, quantiles)
        self._register(metric)
        return metric

    def get(self, name: str) -> Optional[_MetricBase]:
        with self._lock:
            return self._metrics.get(name)

    def render(self) -> str:
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: List[str] = []
        for metric in metrics:
            lines.extend(metric.header_lines())
            lines.extend(metric.sample_lines())
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Exposition lint: parse + validate the Prometheus text format
# ---------------------------------------------------------------------------

_HELP_RE = re.compile(r"^# HELP (\S+) (.*)$")
_TYPE_RE = re.compile(r"^# TYPE (\S+) (\S+)$")
_VALUE_RE = re.compile(r"^(?:[+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?|NaN|[+-]Inf)$")
_KNOWN_TYPES = frozenset({"counter", "gauge", "summary", "histogram", "untyped"})


class ExpositionError(ValueError):
    """A sample line that cannot be parsed at all."""


def _parse_labels(body: str) -> LabelKey:
    """Parse ``key="value",...`` with Prometheus escape handling."""
    labels: List[Tuple[str, str]] = []
    index = 0
    length = len(body)
    while index < length:
        match = re.match(r"[a-zA-Z_][a-zA-Z0-9_]*", body[index:])
        if not match:
            raise ExpositionError(f"bad label name at {body[index:]!r}")
        name = match.group(0)
        index += len(name)
        if body[index : index + 2] != '="':
            raise ExpositionError(f"expected '=\"' after label {name!r}")
        index += 2
        chars: List[str] = []
        while True:
            if index >= length:
                raise ExpositionError(f"unterminated label value for {name!r}")
            char = body[index]
            if char == "\\":
                if index + 1 >= length:
                    raise ExpositionError(f"dangling escape in label {name!r}")
                escape = body[index + 1]
                if escape == "n":
                    chars.append("\n")
                elif escape in ('"', "\\"):
                    chars.append(escape)
                else:
                    raise ExpositionError(f"invalid escape \\{escape} in label {name!r}")
                index += 2
                continue
            if char == '"':
                index += 1
                break
            if char == "\n":
                raise ExpositionError(f"raw newline in label {name!r}")
            chars.append(char)
            index += 1
        labels.append((name, "".join(chars)))
        if index < length:
            if body[index] != ",":
                raise ExpositionError(f"expected ',' between labels, got {body[index]!r}")
            index += 1
    return tuple(labels)


def _parse_sample(line: str) -> Tuple[str, LabelKey, float]:
    name_match = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)", line)
    if not name_match:
        raise ExpositionError(f"bad sample line {line!r}")
    name = name_match.group(1)
    rest = line[len(name) :]
    labels: LabelKey = ()
    if rest.startswith("{"):
        closing = rest.rfind("}")
        if closing < 0:
            raise ExpositionError(f"unterminated label set in {line!r}")
        labels = _parse_labels(rest[1:closing])
        rest = rest[closing + 1 :]
    parts = rest.split()
    if not parts or len(parts) > 2:
        raise ExpositionError(f"bad value/timestamp section in {line!r}")
    if not _VALUE_RE.match(parts[0]):
        raise ExpositionError(f"bad sample value {parts[0]!r} in {line!r}")
    return name, labels, float(parts[0])


class Exposition:
    """Parsed exposition text: families plus every sample keyed by labels."""

    def __init__(self) -> None:
        self.types: Dict[str, str] = {}
        self.help: Dict[str, str] = {}
        self.samples: Dict[Tuple[str, LabelKey], float] = {}

    def family_of(self, sample_name: str) -> Optional[str]:
        """Resolve a sample name to its family (handles _sum/_count suffixes)."""
        if sample_name in self.types:
            return sample_name
        for suffix in ("_sum", "_count", "_bucket"):
            if sample_name.endswith(suffix):
                base = sample_name[: -len(suffix)]
                if self.types.get(base) in ("summary", "histogram"):
                    return base
        return None


def parse_exposition(text: str) -> Exposition:
    """Parse exposition text; raises :class:`ExpositionError` on bad syntax."""
    parsed = Exposition()
    for line in text.splitlines():
        if not line.strip():
            continue
        help_match = _HELP_RE.match(line)
        if help_match:
            parsed.help[help_match.group(1)] = help_match.group(2)
            continue
        type_match = _TYPE_RE.match(line)
        if type_match:
            parsed.types[type_match.group(1)] = type_match.group(2)
            continue
        if line.startswith("#"):
            continue
        name, labels, value = _parse_sample(line)
        parsed.samples[(name, labels)] = value
    return parsed


def validate_exposition(text: str) -> List[str]:
    """Lint exposition text; returns a list of problems (empty = valid).

    Checks the properties the test suite guards: every sample belongs to a
    family announced by a ``# HELP``/``# TYPE`` pair that precedes it, no
    duplicate announcements, parseable (properly escaped) label sets,
    non-negative finite counters, quantile labels within [0, 1], and a
    matching ``_sum``/``_count`` pair per label set for every summary.
    """
    errors: List[str] = []
    types: Dict[str, str] = {}
    helps: Dict[str, str] = {}
    seen_samples: Dict[Tuple[str, LabelKey], float] = {}
    summary_parts: Dict[Tuple[str, LabelKey], Dict[str, float]] = {}

    def family_of(sample_name: str) -> Optional[str]:
        if sample_name in types:
            return sample_name
        for suffix in ("_sum", "_count", "_bucket"):
            if sample_name.endswith(suffix):
                base = sample_name[: -len(suffix)]
                if types.get(base) in ("summary", "histogram"):
                    return base
        return None

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        help_match = _HELP_RE.match(line)
        if help_match:
            name = help_match.group(1)
            if name in helps:
                errors.append(f"line {lineno}: duplicate HELP for {name}")
            helps[name] = help_match.group(2)
            continue
        type_match = _TYPE_RE.match(line)
        if type_match:
            name, kind = type_match.groups()
            if name in types:
                errors.append(f"line {lineno}: duplicate TYPE for {name}")
            if kind not in _KNOWN_TYPES:
                errors.append(f"line {lineno}: unknown metric type {kind!r} for {name}")
            if name not in helps:
                errors.append(f"line {lineno}: TYPE for {name} not preceded by HELP")
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        try:
            name, labels, value = _parse_sample(line)
        except ExpositionError as error:
            errors.append(f"line {lineno}: {error}")
            continue
        family = family_of(name)
        if family is None:
            errors.append(f"line {lineno}: sample {name} has no preceding # TYPE")
            continue
        if family not in helps:
            errors.append(f"line {lineno}: family {family} has no # HELP")
        key = (name, labels)
        if key in seen_samples:
            errors.append(f"line {lineno}: duplicate sample {name}{dict(labels)}")
        seen_samples[key] = value
        kind = types[family]
        label_names = [label for label, _ in labels]
        if len(label_names) != len(set(label_names)):
            errors.append(f"line {lineno}: repeated label name in sample {name}")
        if kind == "counter":
            if value < 0 or value != value or value in (math.inf, -math.inf):
                errors.append(f"line {lineno}: counter {name} has invalid value {value}")
        if kind == "summary":
            base_labels = tuple(
                (label, val) for label, val in labels if label != "quantile"
            )
            parts = summary_parts.setdefault((family, base_labels), {})
            if name == family:
                quantile = dict(labels).get("quantile")
                if quantile is None:
                    errors.append(f"line {lineno}: summary {name} sample missing quantile label")
                else:
                    try:
                        numeric = float(quantile)
                    except ValueError:
                        numeric = -1.0
                    if not 0.0 <= numeric <= 1.0:
                        errors.append(
                            f"line {lineno}: summary {name} quantile {quantile!r} out of [0, 1]"
                        )
                parts["quantiles"] = parts.get("quantiles", 0) + 1
            elif name == f"{family}_sum":
                parts["sum"] = value
            elif name == f"{family}_count":
                parts["count"] = value
                if value < 0 or value != int(value):
                    errors.append(f"line {lineno}: summary {name} count {value} not a natural")

    for (family, labels), parts in summary_parts.items():
        if ("sum" in parts) != ("count" in parts):
            errors.append(
                f"summary {family}{dict(labels)}: _sum and _count must appear together"
            )
        if parts.get("quantiles") and "count" not in parts:
            errors.append(f"summary {family}{dict(labels)}: quantiles without _sum/_count")
    return errors


def counter_regressions(before: str, after: str) -> List[str]:
    """Counters that went *down* between two scrapes (must be empty).

    Both arguments are exposition texts from the same process; any counter
    sample present in both whose value decreased is a monotonicity bug.
    """
    earlier = parse_exposition(before)
    later = parse_exposition(after)
    problems: List[str] = []
    for (name, labels), value in earlier.samples.items():
        family = earlier.family_of(name)
        if family is None or earlier.types.get(family) != "counter":
            continue
        current = later.samples.get((name, labels))
        if current is not None and current < value:
            problems.append(f"{name}{dict(labels)}: {value} -> {current}")
    return problems


# ---------------------------------------------------------------------------
# Engine-side counters shared across the process
# ---------------------------------------------------------------------------

_plan_compilations = 0


def note_plan_compilation() -> None:
    """Record one compiled transition guard (cold path: compilation only)."""
    global _plan_compilations
    _plan_compilations += 1


def plan_compilation_count() -> int:
    return _plan_compilations


def reset_plan_compilation_count() -> None:
    global _plan_compilations
    _plan_compilations = 0


def engine_counters_snapshot() -> Dict[str, Any]:
    """Monotonic engine counters of this process (caches + compilations)."""
    return {
        "caches": {
            name: {key: stats[key] for key in ("hits", "misses", "evictions")}
            for name, stats in cache_stats_snapshot().items()
        },
        "plan_compilations": _plan_compilations,
    }


def engine_counters_delta(before: Dict[str, Any], after: Dict[str, Any]) -> Dict[str, Any]:
    """Counter movement between two :func:`engine_counters_snapshot` calls."""
    caches: Dict[str, Dict[str, int]] = {}
    for name, counters in after.get("caches", {}).items():
        base = before.get("caches", {}).get(name, {})
        moved = {
            key: counters[key] - base.get(key, 0)
            for key in ("hits", "misses", "evictions")
            if counters[key] - base.get(key, 0)
        }
        if moved:
            caches[name] = moved
    return {
        "caches": caches,
        "plan_compilations": after.get("plan_compilations", 0)
        - before.get("plan_compilations", 0),
    }


#: Engine counters observed in pool worker processes, merged back by the
#: parent alongside job results.  Kept separate from the parent's own live
#: cache stats: a worker's cache hits happened in another process.
_worker_totals_lock = threading.Lock()
_worker_totals: Dict[str, Any] = {"jobs": 0, "plan_compilations": 0, "caches": {}}


def merge_worker_counters(delta: Optional[Dict[str, Any]]) -> None:
    """Fold one worker job's counter delta into the process-wide totals."""
    if not delta or not _telemetry_enabled:
        return
    with _worker_totals_lock:
        _worker_totals["jobs"] += 1
        _worker_totals["plan_compilations"] += delta.get("plan_compilations", 0)
        caches = _worker_totals["caches"]
        for name, counters in delta.get("caches", {}).items():
            bucket = caches.setdefault(name, {"hits": 0, "misses": 0, "evictions": 0})
            for key, amount in counters.items():
                bucket[key] = bucket.get(key, 0) + amount


def worker_counters_snapshot() -> Dict[str, Any]:
    with _worker_totals_lock:
        return {
            "jobs": _worker_totals["jobs"],
            "plan_compilations": _worker_totals["plan_compilations"],
            "caches": {name: dict(counters) for name, counters in _worker_totals["caches"].items()},
        }


def reset_worker_counters() -> None:
    with _worker_totals_lock:
        _worker_totals["jobs"] = 0
        _worker_totals["plan_compilations"] = 0
        _worker_totals["caches"] = {}


# ---------------------------------------------------------------------------
# Engine rollup: cumulative SearchStatistics across completed jobs
# ---------------------------------------------------------------------------

#: SearchStatistics fields accumulated by the rollup, in exposition order.
_ROLLUP_FIELDS = (
    "configurations_explored",
    "configurations_enqueued",
    "candidates_generated",
    "guard_evaluations",
    "guard_rejections",
    "duplicate_keys_pruned",
    "key_cache_hits",
    "key_cache_misses",
    "plan_rejected_pre_materialization",
    "plan_compiled_guard_hits",
    "plan_fallback_evaluations",
    "plan_enumeration_pruned",
)


class EngineRollup:
    """Cumulative engine search statistics across completed jobs.

    Fed from each finished job's ``SearchStatistics`` dict (one call per
    job, off the solver hot path).  Powers the ``engine`` section of
    ``GET /v1/stats`` and the ``repro_engine_*`` metric families.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.jobs = 0
        self.engine_seconds = 0.0
        self.totals: Dict[str, int] = {field: 0 for field in _ROLLUP_FIELDS}

    def record(self, statistics: Optional[Mapping[str, Any]]) -> None:
        if not statistics or not _telemetry_enabled:
            return
        with self._lock:
            self.jobs += 1
            elapsed = statistics.get("elapsed_seconds")
            if isinstance(elapsed, (int, float)):
                self.engine_seconds += float(elapsed)
            for field in _ROLLUP_FIELDS:
                value = statistics.get(field)
                if isinstance(value, (int, float)):
                    self.totals[field] += int(value)

    @property
    def candidates_pruned(self) -> int:
        """Candidates discarded before expansion, however the engine did it."""
        totals = self.totals
        return (
            totals["guard_rejections"]
            + totals["duplicate_keys_pruned"]
            + totals["plan_rejected_pre_materialization"]
            + totals["plan_enumeration_pruned"]
        )

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.totals["key_cache_hits"] + self.totals["key_cache_misses"]
        return self.totals["key_cache_hits"] / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            payload: Dict[str, Any] = {"jobs": self.jobs}
            payload.update(self.totals)
            payload["candidates_pruned"] = self.candidates_pruned
            payload["cache_hit_rate"] = round(self.cache_hit_rate, 4)
            payload["engine_seconds"] = round(self.engine_seconds, 6)
            return payload


# ---------------------------------------------------------------------------
# Per-job search traces
# ---------------------------------------------------------------------------

TRACE_FORMAT_VERSION = 1

#: Hard cap on recorded spans per trace: a runaway search must not turn a
#: verdict row into a gigabyte blob.  Overflow increments ``dropped``.
DEFAULT_MAX_SPANS = 20_000


class TraceRecorder:
    """Opt-in span recorder for one solver run.

    Timestamps are seconds relative to recorder construction (perf_counter
    deltas), converted to microseconds on Chrome export.  The recorder is
    only ever consulted behind ``if trace is not None`` guards in the
    engine, so untraced runs pay a single predicate per call site.
    """

    __slots__ = ("max_spans", "dropped", "spans", "events", "_zero")

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self.max_spans = max_spans
        self.dropped = 0
        self.spans: List[Dict[str, Any]] = []
        self.events: List[Dict[str, Any]] = []
        self._zero = time.perf_counter()

    def now(self) -> float:
        """Seconds since the recorder started."""
        return time.perf_counter() - self._zero

    def add_span(
        self,
        name: str,
        cat: str,
        start: float,
        end: float,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        span: Dict[str, Any] = {
            "name": name,
            "cat": cat,
            "start": start,
            "dur": max(0.0, end - start),
        }
        if args:
            span["args"] = args
        self.spans.append(span)

    @contextmanager
    def span(self, name: str, cat: str = "engine", **args: Any) -> Iterator[Dict[str, Any]]:
        """Record a timed span around a block; mutate the yielded dict to
        attach results computed inside the block as span arguments."""
        start = self.now()
        collected: Dict[str, Any] = dict(args)
        try:
            yield collected
        finally:
            self.add_span(name, cat, start, self.now(), collected or None)

    def instant(self, name: str, cat: str = "engine", **args: Any) -> None:
        if len(self.events) >= self.max_spans:
            self.dropped += 1
            return
        event: Dict[str, Any] = {"name": name, "cat": cat, "ts": self.now()}
        if args:
            event["args"] = args
        self.events.append(event)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "version": TRACE_FORMAT_VERSION,
            "unit": "seconds",
            "spans": self.spans,
            "events": self.events,
            "dropped": self.dropped,
        }


def chrome_trace(trace: Mapping[str, Any], pid: int = 1, tid: int = 1) -> Dict[str, Any]:
    """Convert a stored trace dict to Chrome trace-event JSON.

    The result loads directly in Perfetto (https://ui.perfetto.dev) or
    Chrome's ``about://tracing``: complete (``ph: "X"``) events for spans,
    instant (``ph: "i"``) events for milestones, timestamps in microseconds.
    """
    trace_events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": "repro-engine"},
        }
    ]
    for span in trace.get("spans", ()):
        event = {
            "name": span["name"],
            "cat": span.get("cat", "engine"),
            "ph": "X",
            "ts": round(span["start"] * 1e6, 3),
            "dur": round(span["dur"] * 1e6, 3),
            "pid": pid,
            "tid": tid,
        }
        if span.get("args"):
            event["args"] = span["args"]
        trace_events.append(event)
    for instant in trace.get("events", ()):
        event = {
            "name": instant["name"],
            "cat": instant.get("cat", "engine"),
            "ph": "i",
            "s": "t",
            "ts": round(instant["ts"] * 1e6, 3),
            "pid": pid,
            "tid": tid,
        }
        if instant.get("args"):
            event["args"] = instant["args"]
        trace_events.append(event)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


# ---------------------------------------------------------------------------
# Structured logging
# ---------------------------------------------------------------------------

_LOG_CONTEXT: ContextVar[Tuple[Tuple[str, str], ...]] = ContextVar(
    "repro_log_context", default=()
)

#: LogRecord attributes that are plumbing, not user-supplied extras.
_RESERVED_RECORD_FIELDS = frozenset(
    {
        "name",
        "msg",
        "args",
        "levelname",
        "levelno",
        "pathname",
        "filename",
        "module",
        "exc_info",
        "exc_text",
        "stack_info",
        "lineno",
        "funcName",
        "created",
        "msecs",
        "relativeCreated",
        "thread",
        "threadName",
        "processName",
        "process",
        "message",
        "asctime",
        "taskName",
    }
)


@contextmanager
def log_context(**fields: Any) -> Iterator[None]:
    """Bind correlation fields (request_id, fingerprint, ...) to this context.

    Fields set here appear on every log line emitted inside the block, in
    this task/thread, including lines from deeper layers that know nothing
    about HTTP requests.
    """
    merged = dict(_LOG_CONTEXT.get())
    merged.update({key: str(value) for key, value in fields.items() if value is not None})
    token = _LOG_CONTEXT.set(tuple(merged.items()))
    try:
        yield
    finally:
        _LOG_CONTEXT.reset(token)


def current_log_context() -> Dict[str, str]:
    """The active correlation fields, e.g. for shipping to worker processes."""
    return dict(_LOG_CONTEXT.get())


def _record_extras(record: logging.LogRecord) -> Dict[str, Any]:
    return {
        key: value
        for key, value in record.__dict__.items()
        if key not in _RESERVED_RECORD_FIELDS and not key.startswith("_")
    }


class JsonLogFormatter(logging.Formatter):
    """One JSON object per line: ts, level, logger, message, context, extras."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        payload.update(_LOG_CONTEXT.get())
        payload.update(_record_extras(record))
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str, separators=(",", ":"))


class TextLogFormatter(logging.Formatter):
    """Human-oriented single line with the correlation context appended."""

    def format(self, record: logging.LogRecord) -> str:
        base = (
            f"{self.formatTime(record, '%H:%M:%S')} {record.levelname.lower():7s} "
            f"{record.name} {record.getMessage()}"
        )
        fields = dict(_LOG_CONTEXT.get())
        fields.update(
            {key: value for key, value in _record_extras(record).items() if value is not None}
        )
        if fields:
            rendered = " ".join(f"{key}={value}" for key, value in fields.items())
            base = f"{base} [{rendered}]"
        if record.exc_info:
            base = f"{base}\n{self.formatException(record.exc_info)}"
        return base


def configure_logging(
    level: str = "info",
    json_lines: bool = False,
    stream: Any = None,
) -> logging.Logger:
    """Configure the ``repro`` logger tree; idempotent (reconfigures).

    Until this runs the library emits nothing below WARNING (stdlib default
    last-resort behaviour), which keeps programmatic use silent.
    """
    logger = logging.getLogger("repro")
    numeric = getattr(logging, level.upper(), None)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    logger.setLevel(numeric)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_telemetry", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLogFormatter() if json_lines else TextLogFormatter())
    handler._repro_telemetry = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.propagate = False
    return logger


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``get_logger('serve')``)."""
    if name == "repro" or name.startswith("repro."):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")
