"""Engine-wide performance switches and cache instrumentation.

The fast-path engine core introduced with the canonicalisation layer keeps a
number of memo tables (canonical abstraction keys, interned structures,
guard-evaluation results on canonical deltas, skeleton placement tables).
All of them are *behaviour-preserving*: with caching disabled the solvers
recompute every canonical form from scratch, exactly like the pre-refactor
engine.  The global switch exists so the benchmark runner can measure the
legacy path against the cached path on the same build, and so debugging
sessions can rule caches out with one call.

Every cache registers a :class:`CacheStats` under a stable name; the
benchmark runner and the search statistics snapshot them via
:func:`cache_stats_snapshot`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator

_caches_enabled: bool = True

#: Default upper bound on entries held by any single engine cache.  The
#: abstract configuration spaces explored by the solvers are finite, but a
#: cap keeps long-running processes (servers replaying many systems) from
#: accumulating unbounded memo tables.
DEFAULT_CACHE_CAP = 1 << 16


class CacheStats:
    """Hit/miss counters for one named engine cache."""

    __slots__ = ("name", "hits", "misses", "evictions")

    def __init__(self, name: str) -> None:
        self.name = name
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CacheStats({self.name}: {self.hits}h/{self.misses}m)"


_registry: Dict[str, CacheStats] = {}


def register_cache(name: str) -> CacheStats:
    """Create (or fetch) the stats record for a named cache."""
    if name not in _registry:
        _registry[name] = CacheStats(name)
    return _registry[name]


def cache_stats_snapshot() -> Dict[str, Dict[str, float]]:
    """A JSON-ready snapshot of every registered cache's counters."""
    return {name: stats.as_dict() for name, stats in sorted(_registry.items())}


def reset_cache_stats() -> None:
    for stats in _registry.values():
        stats.reset()


def caches_enabled() -> bool:
    """Whether the engine's canonical-form caches are active."""
    return _caches_enabled


def set_caches_enabled(enabled: bool) -> None:
    global _caches_enabled
    _caches_enabled = bool(enabled)


@contextmanager
def caches_disabled() -> Iterator[None]:
    """Run a block on the legacy (cache-free) engine path.

    Used by ``benchmarks/run_all.py`` to measure the pre-refactor engine on
    the same build, and handy when bisecting a suspected cache bug.
    """
    global _caches_enabled
    previous = _caches_enabled
    _caches_enabled = False
    try:
        yield
    finally:
        _caches_enabled = previous


class BoundedCache:
    """A dict-backed memo table with hit/miss stats and a size cap.

    Eviction is wholesale (clear on overflow): the engine's access patterns
    are bursty per solver run, an LRU would add bookkeeping on the hot path
    for little benefit, and a full clear keeps the worst case trivially
    bounded.
    """

    __slots__ = ("_table", "_cap", "stats")

    _MISSING = object()

    def __init__(self, name: str, cap: int = DEFAULT_CACHE_CAP) -> None:
        self._table: dict = {}
        self._cap = cap
        self.stats = register_cache(name)

    def get(self, key):
        value = self._table.get(key, self._MISSING)
        if value is self._MISSING:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return value

    def put(self, key, value) -> None:
        if len(self._table) >= self._cap:
            self._table.clear()
            self.stats.evictions += 1
        self._table[key] = value

    def get_or_compute(self, key, factory):
        """Memoised ``factory()``: the one-stop caching idiom of the engine.

        Bypasses the table entirely (recompute every time) when the global
        cache switch is off, so call sites gate on :func:`caches_enabled`
        for free.  Values must not be None (None marks a miss); False and
        empty containers cache fine.
        """
        if not caches_enabled():
            return factory()
        value = self.get(key)
        if value is None:
            value = factory()
            self.put(key, value)
        return value

    def __len__(self) -> int:
        return len(self._table)

    def clear(self) -> None:
        self._table.clear()
