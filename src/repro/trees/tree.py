"""Unranked, ordered, labelled trees (Section 3.1).

:class:`Tree` is a plain recursive value object -- a label and an ordered list
of child trees.  Nodes acquire identities (their preorder / document-order
index) only when a tree is rendered as a database by
:mod:`repro.trees.treedb` or annotated by a run of a tree automaton.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple


@dataclass(frozen=True)
class Tree:
    """An unranked ordered tree: a label and a tuple of child trees."""

    label: str
    children: Tuple["Tree", ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "children", tuple(self.children))

    # -- construction ------------------------------------------------------------

    @classmethod
    def leaf(cls, label: str) -> "Tree":
        return cls(label, ())

    @classmethod
    def node(cls, label: str, *children: "Tree") -> "Tree":
        return cls(label, tuple(children))

    @classmethod
    def from_spec(cls, spec) -> "Tree":
        """Build a tree from nested ``(label, [children...])`` pairs or a bare label."""
        if isinstance(spec, str):
            return cls.leaf(spec)
        label, children = spec
        return cls(label, tuple(cls.from_spec(child) for child in children))

    # -- basic measures -----------------------------------------------------------

    @property
    def size(self) -> int:
        return 1 + sum(child.size for child in self.children)

    @property
    def height(self) -> int:
        if not self.children:
            return 0
        return 1 + max(child.height for child in self.children)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def labels(self) -> List[str]:
        """All labels in document order."""
        return [label for label, _ in self.preorder()]

    # -- traversal ------------------------------------------------------------------

    def preorder(self) -> Iterator[Tuple[str, Tuple[int, ...]]]:
        """Yield ``(label, path)`` pairs in document order.

        The *path* of a node is the sequence of child indices from the root,
        which doubles as a stable node identifier.
        """

        def walk(tree: "Tree", path: Tuple[int, ...]) -> Iterator[Tuple[str, Tuple[int, ...]]]:
            yield tree.label, path
            for index, child in enumerate(tree.children):
                yield from walk(
                    child,
                    path + (index,),
                )

        return walk(self, ())

    def node_paths(self) -> List[Tuple[int, ...]]:
        """All node paths in document order."""
        return [path for _, path in self.preorder()]

    def subtree(self, path: Sequence[int]) -> "Tree":
        """The subtree rooted at a path."""
        tree = self
        for index in path:
            tree = tree.children[index]
        return tree

    def label_at(self, path: Sequence[int]) -> str:
        return self.subtree(path).label

    # -- node relations (on paths) ------------------------------------------------------

    @staticmethod
    def is_ancestor(path_a: Sequence[int], path_b: Sequence[int]) -> bool:
        """``a`` is an ancestor of or equal to ``b`` (prefix of paths)."""
        return len(path_a) <= len(path_b) and tuple(path_b[: len(path_a)]) == tuple(path_a)

    @staticmethod
    def closest_common_ancestor(path_a: Sequence[int], path_b: Sequence[int]) -> Tuple[int, ...]:
        """The longest common prefix of two paths."""
        common: List[int] = []
        for a, b in zip(path_a, path_b):
            if a != b:
                break
            common.append(a)
        return tuple(common)

    @staticmethod
    def document_before(path_a: Sequence[int], path_b: Sequence[int]) -> bool:
        """Strict document (preorder) order on node paths."""
        return tuple(path_a) != tuple(path_b) and tuple(path_a) < tuple(path_b)

    # -- editing (functional) --------------------------------------------------------------

    def with_child_inserted(self, path: Sequence[int], index: int, child: "Tree") -> "Tree":
        """Insert ``child`` as the ``index``-th child of the node at ``path``."""
        if not path:
            children = list(self.children)
            children.insert(index, child)
            return Tree(self.label, tuple(children))
        head, rest = path[0], path[1:]
        children = list(self.children)
        children[head] = children[head].with_child_inserted(rest, index, child)
        return Tree(self.label, tuple(children))

    def with_subtree_replaced(self, path: Sequence[int], replacement: "Tree") -> "Tree":
        if not path:
            return replacement
        head, rest = path[0], path[1:]
        children = list(self.children)
        children[head] = children[head].with_subtree_replaced(rest, replacement)
        return Tree(self.label, tuple(children))

    # -- rendering ---------------------------------------------------------------------------

    def to_spec(self):
        if not self.children:
            return self.label
        return (self.label, [child.to_spec() for child in self.children])

    def __str__(self) -> str:
        if not self.children:
            return self.label
        return f"{self.label}({', '.join(str(child) for child in self.children)})"


def all_trees(labels: Sequence[str], max_size: int) -> Iterator[Tree]:
    """Every labelled unranked tree with at most ``max_size`` nodes.

    Used by the brute-force baseline; the count grows very quickly, so callers
    keep ``max_size`` small (4-5).
    """
    for size in range(1, max_size + 1):
        yield from trees_of_size(labels, size)


def trees_of_size(labels: Sequence[str], size: int) -> Iterator[Tree]:
    """Every labelled tree with exactly ``size`` nodes."""
    if size <= 0:
        return
    if size == 1:
        for label in labels:
            yield Tree.leaf(label)
        return
    for label in labels:
        for children in _forests_of_size(labels, size - 1):
            yield Tree(label, children)


def _forests_of_size(labels: Sequence[str], size: int) -> Iterator[Tuple[Tree, ...]]:
    """Every non-empty ordered forest with exactly ``size`` nodes."""
    if size == 0:
        yield ()
        return
    for first_size in range(1, size + 1):
        for first in trees_of_size(labels, first_size):
            for rest in _forests_of_size(labels, size - first_size):
                yield (first,) + rest


def random_tree(
    labels: Sequence[str],
    max_size: int,
    rng,
    branching: float = 0.6,
) -> Tree:
    """A random tree with at most ``max_size`` nodes (used by property tests)."""
    budget = [max(1, max_size)]

    def build() -> Tree:
        budget[0] -= 1
        label = rng.choice(list(labels))
        children = []
        while budget[0] > 0 and rng.random() < branching and len(children) < 3:
            children.append(build())
        return Tree(label, tuple(children))

    return build()
