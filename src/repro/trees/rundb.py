"""Tree run databases with pointer functions, and the Lemma 23 conditions.

A *pre-run* is a tree whose nodes carry states of a tree automaton (with the
matching labels).  Its run database extends ``Treedb`` with

* a unary predicate per state,
* ``leftmost_q(x)`` / ``rightmost_q(x)``: the left-most / right-most child of
  ``x`` with state ``q``, defined only when ``x`` is *component maximal* (no
  child shares its descendant component), else ``x`` itself,
* ``ancestormost_Γ(x)``: the highest node on the path from ``x`` to the root
  whose state lies in the descendant component Γ, else ``x``,
* ``descendantmost(x)``: for a node whose state lies in a *linear* descendant
  component, the unique lowest descendant in the same component, else ``x``.

The class ``C`` of Section 5.4 is the substructure closure of the run
databases of actual runs; Lemma 23 characterises the pre-runs whose run
database lies in ``C`` through the local condition (*), which
:func:`satisfies_local_condition` implements.  These constructions are used
by the amalgamation / characterisation tests; the decision procedure itself
(:mod:`repro.trees.theory`) works with contracted skeletons.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.logic.schema import Schema
from repro.logic.structures import Structure
from repro.perf import BoundedCache
from repro.trees.automata import TreeAutomaton
from repro.trees.tree import Tree
from repro.trees.treedb import CCA, treedb

STATE_PREFIX = "state_"
LEFTMOST_PREFIX = "leftmost_"
RIGHTMOST_PREFIX = "rightmost_"
ANCESTORMOST_PREFIX = "ancestormost_"
DESCENDANTMOST = "descendantmost"

AnnotatedTree = Tuple[Tree, Dict[Tuple[int, ...], str]]
"""A pre-run: a tree together with a mapping from node paths to states."""


_RUN_SCHEMA_CACHE = BoundedCache("trees_run_schema", cap=256)


def run_schema(automaton: TreeAutomaton) -> Schema:
    """The extended schema of tree run databases (memoised per automaton)."""
    return _RUN_SCHEMA_CACHE.get_or_compute(automaton, lambda: _run_schema_uncached(automaton))


def _run_schema_uncached(automaton: TreeAutomaton) -> Schema:
    analysis = automaton.analysis()
    base = treedb(Tree.leaf(automaton.alphabet[0]), automaton.alphabet).schema
    relations = {name: base.relation(name).arity for name in base.relation_names}
    for state in sorted(automaton.states):
        relations[f"{STATE_PREFIX}{state}"] = 1
    functions = {CCA: 2, DESCENDANTMOST: 1}
    for state in sorted(automaton.states):
        functions[f"{LEFTMOST_PREFIX}{state}"] = 1
        functions[f"{RIGHTMOST_PREFIX}{state}"] = 1
    for index in range(len(analysis.descendant_components)):
        functions[f"{ANCESTORMOST_PREFIX}{index}"] = 1
    return Schema(relations=relations, functions=functions)


def rundb(automaton: TreeAutomaton, pre_run: AnnotatedTree) -> Structure:
    """``Rundb(pi)`` for a pre-run ``pi``: the tree database plus states and pointers."""
    tree, states = pre_run
    analysis = automaton.analysis()
    base = treedb(tree, automaton.alphabet)
    paths = [path for _, path in tree.preorder()]
    index_of = {path: i for i, path in enumerate(paths)}
    component_of = analysis.descendant_component_of

    def state_of(path: Tuple[int, ...]) -> str:
        return states[path]

    def children_of(path: Tuple[int, ...]) -> Sequence[Tuple[int, ...]]:
        subtree = tree.subtree(path)
        return [path + (i,) for i in range(len(subtree.children))]

    def component_maximal(path: Tuple[int, ...]) -> bool:
        own = component_of.get(state_of(path))
        return all(component_of.get(state_of(child)) != own for child in children_of(path))

    relations: Dict[str, set] = {}
    for state in sorted(automaton.states):
        relations[f"{STATE_PREFIX}{state}"] = set()
    for path in paths:
        relations[f"{STATE_PREFIX}{state_of(path)}"].add((index_of[path],))

    functions: Dict[str, Dict[Tuple[int, ...], int]] = {}
    # leftmost_q / rightmost_q: children pointers of component-maximal nodes.
    for state in sorted(automaton.states):
        left_table: Dict[Tuple[int, ...], int] = {}
        right_table: Dict[Tuple[int, ...], int] = {}
        for path in paths:
            identifier = index_of[path]
            matching = [child for child in children_of(path) if state_of(child) == state]
            if component_maximal(path) and matching:
                left_table[(identifier,)] = index_of[matching[0]]
                right_table[(identifier,)] = index_of[matching[-1]]
            else:
                left_table[(identifier,)] = identifier
                right_table[(identifier,)] = identifier
        functions[f"{LEFTMOST_PREFIX}{state}"] = left_table
        functions[f"{RIGHTMOST_PREFIX}{state}"] = right_table

    # ancestormost_Γ: highest ancestor-or-self in component Γ on the path to the root.
    for index in range(len(analysis.descendant_components)):
        table: Dict[Tuple[int, ...], int] = {}
        for path in paths:
            identifier = index_of[path]
            best: Optional[Tuple[int, ...]] = None
            for depth in range(len(path) + 1):
                ancestor = path[:depth]
                if component_of.get(state_of(ancestor)) == index:
                    best = ancestor
                    break
            table[(identifier,)] = index_of[best] if best is not None else identifier
        functions[f"{ANCESTORMOST_PREFIX}{index}"] = table

    # descendantmost: for linear components, the unique lowest same-component descendant.
    table: Dict[Tuple[int, ...], int] = {}
    for path in paths:
        identifier = index_of[path]
        own = component_of.get(state_of(path))
        if own is None or own in analysis.branching_components:
            table[(identifier,)] = identifier
            continue
        current = path
        while True:
            same = [
                child for child in children_of(current) if component_of.get(state_of(child)) == own
            ]
            if not same:
                break
            current = same[0]
        table[(identifier,)] = index_of[current]
    functions[DESCENDANTMOST] = table

    schema = run_schema(automaton)
    merged_relations = {name: set(base.relation(name)) for name in base.schema.relation_names}
    merged_relations.update(relations)
    merged_functions = {CCA: dict(base.function(CCA))}
    merged_functions.update(functions)
    return Structure(
        schema,
        base.domain,
        relations=merged_relations,
        functions=merged_functions,
        validate=False,
    )


def satisfies_local_condition(automaton: TreeAutomaton, pre_run: AnnotatedTree) -> bool:
    """Lemma 23's condition (*): does the pre-run's database belong to C?

    The root must carry a root state and every node must satisfy the local
    condition relating its state to the states of its children (leaf states at
    leaves; chain through ``leftmost``/``->h`` at component-maximal nodes;
    left(Γ)/Γ/right(Γ) split below linear components; ``->v`` below branching
    components).
    """
    tree, states = pre_run
    analysis = automaton.analysis()
    component_of = analysis.descendant_component_of

    if states[()] not in automaton.root_states:
        return False

    for _, path in tree.preorder():
        state = states[path]
        subtree = tree.subtree(path)
        children = [path + (i,) for i in range(len(subtree.children))]
        child_states = [states[c] for c in children]
        if not children:
            if state not in automaton.leaf_states:
                return False
            continue
        own_component = component_of.get(state)
        maximal = all(component_of.get(s) != own_component for s in child_states)
        if maximal:
            # x ->leftmost x1 ->h+ x2 ->h+ ... ->h+ xn and xn completable right.
            first = child_states[0]
            if first not in analysis.can_first.get(state, set()):
                return False
            for left, right in zip(child_states, child_states[1:]):
                if right not in analysis.sib_reach_plus.get(left, set()):
                    return False
            if not analysis.sib_reach_star_of(child_states[-1]) & automaton.rightmost_states:
                return False
        elif own_component is not None and own_component not in analysis.branching_components:
            # Linear component: left(Γ)* Γ right(Γ)* split.
            in_component = [
                i for i, s in enumerate(child_states) if component_of.get(s) == own_component
            ]
            if len(in_component) != 1:
                return False
            pivot = in_component[0]
            left_set = analysis.left_of_component[own_component]
            right_set = analysis.right_of_component[own_component]
            if any(s not in left_set for s in child_states[:pivot]):
                return False
            if any(s not in right_set for s in child_states[pivot + 1:]):
                return False
        else:
            # Branching component: every child state is ->v below the node's state.
            for child_state in child_states:
                if not analysis.proper_descendant(child_state, state):
                    return False
    return True


def run_of_tree(automaton: TreeAutomaton, tree: Tree) -> Optional[AnnotatedTree]:
    """An accepting pre-run of a tree, or ``None`` when the tree is rejected."""
    run = automaton.find_run(tree)
    if run is None:
        return None
    return tree, run
