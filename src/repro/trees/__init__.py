"""Regular tree languages: trees, tree automata, tree databases, Theorem 3."""

from repro.trees.tree import Tree, all_trees, random_tree, trees_of_size
from repro.trees.treedb import (
    ANCESTOR,
    CCA,
    DOCUMENT_ORDER,
    label_predicate,
    node_index_by_path,
    tree_schema,
    treedb,
)
from repro.trees.automata import (
    AutomatonAnalysis,
    TreeAutomaton,
    caterpillar_automaton,
    grid_encoding_automaton,
    root_label_automaton,
    universal_automaton,
)
from repro.trees.rundb import (
    rundb,
    run_of_tree,
    run_schema,
    satisfies_local_condition,
)
from repro.trees.theory import Skeleton, TreeRunTheory

__all__ = [
    "Tree",
    "all_trees",
    "trees_of_size",
    "random_tree",
    "tree_schema",
    "treedb",
    "label_predicate",
    "node_index_by_path",
    "ANCESTOR",
    "DOCUMENT_ORDER",
    "CCA",
    "TreeAutomaton",
    "AutomatonAnalysis",
    "universal_automaton",
    "root_label_automaton",
    "caterpillar_automaton",
    "grid_encoding_automaton",
    "rundb",
    "run_schema",
    "run_of_tree",
    "satisfies_local_condition",
    "Skeleton",
    "TreeRunTheory",
]
