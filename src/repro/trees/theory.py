"""Emptiness of database-driven systems over regular tree languages (Theorem 3).

:class:`TreeRunTheory` plugs a regular tree language (given by a
:class:`~repro.trees.automata.TreeAutomaton`) into the generic engine.  Its
witnesses are *skeletons*: cca-closed patterns of virtual nodes, each carrying
a state of the (trimmed) automaton, arranged in a contracted tree shape --
skeleton edges stand for ancestor/descendant relationships that may be
realised by arbitrarily long paths in the eventual tree, and the order of a
node's skeleton children is their document order.

A skeleton is kept *completable* at every step:

* vertical condition -- along every skeleton edge the child's state is a
  ``->v``-descendant state of the parent's state;
* horizontal condition -- at every skeleton node there is a choice of real
  child states, one per skeleton child, that embeds (in document order) into
  a valid children sequence of the node's state.

These conditions are necessary and sufficient for the skeleton to embed into
``Rundb(rho)`` of some accepting run ``rho``, which is the concrete content
of the class C of Section 5.4 restricted to the structure a quantifier-free
guard can observe.  Soundness of the overall procedure never relies on the
abstraction: :meth:`finalize` expands the final skeleton into an actual
accepted tree on which the engine replays the run.  The abstraction key used
for memoisation is the register-generated (cca-closed) sub-skeleton; it is a
projection of the paper's pointer-function abstraction (Section 5.4), which
the test-suite cross-validates against brute-force enumeration.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import TheoryError
from repro.fraisse.base import (
    CandidateDelta,
    DatabaseTheory,
    TheoryConfiguration,
    generic_abstraction_key,
    set_partitions,
)
from repro.fraisse.plans import DeltaContext
from repro.logic.schema import Schema
from repro.logic.structures import Element, Structure
from repro.logic.threevalued import UNKNOWN
from repro.perf import BoundedCache, caches_enabled
from repro.systems.dds import DatabaseDrivenSystem, Transition
from repro.trees.automata import AutomatonAnalysis, TreeAutomaton
from repro.trees.tree import Tree
from repro.trees.treedb import (
    ANCESTOR,
    CCA,
    DOCUMENT_ORDER,
    label_predicate,
    node_index_by_path,
    tree_schema,
    treedb,
)

STATE_PREFIX = "skstate_"


@dataclass(frozen=True)
class Skeleton:
    """A cca-closed, state-annotated contracted tree pattern."""

    states: Tuple[Tuple[int, str], ...]
    """(node id, automaton state) pairs."""
    parents: Tuple[Tuple[int, Optional[int]], ...]
    """(node id, skeleton parent id or None for the skeleton root)."""
    children: Tuple[Tuple[int, Tuple[int, ...]], ...]
    """(node id, ordered skeleton children) -- order is document order."""

    def __hash__(self) -> int:
        # Skeletons key several hot memo tables; the generated dataclass
        # hash walks all three field tuples on every lookup, so cache it
        # (skeletons are immutable).
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.states, self.parents, self.children))
            object.__setattr__(self, "_hash", cached)
        return cached

    # -- views (cached: skeletons are immutable) ---------------------------------------

    @property
    def state_of(self) -> Dict[int, str]:
        cached = self.__dict__.get("_state_of")
        if cached is None:
            cached = dict(self.states)
            object.__setattr__(self, "_state_of", cached)
        return cached

    @property
    def parent_of(self) -> Dict[int, Optional[int]]:
        cached = self.__dict__.get("_parent_of")
        if cached is None:
            cached = dict(self.parents)
            object.__setattr__(self, "_parent_of", cached)
        return cached

    @property
    def children_of(self) -> Dict[int, Tuple[int, ...]]:
        cached = self.__dict__.get("_children_of")
        if cached is None:
            cached = dict(self.children)
            object.__setattr__(self, "_children_of", cached)
        return cached

    @property
    def node_ids(self) -> Tuple[int, ...]:
        return tuple(sorted(n for n, _ in self.states))

    @property
    def root(self) -> int:
        for node, parent in self.parents:
            if parent is None:
                return node
        raise TheoryError("skeleton has no root")

    def next_id(self) -> int:
        return max((n for n, _ in self.states), default=-1) + 1

    # -- relations ----------------------------------------------------------------------

    def ancestors_or_self(self, node: int) -> List[int]:
        parent_of = self.parent_of
        chain = [node]
        while parent_of[chain[-1]] is not None:
            chain.append(parent_of[chain[-1]])
        return chain

    def is_ancestor(self, above: int, below: int) -> bool:
        return above in self.ancestors_or_self(below)

    def cca(self, a: int, b: int) -> int:
        ancestors_a = self.ancestors_or_self(a)
        ancestors_b = set(self.ancestors_or_self(b))
        for node in ancestors_a:
            if node in ancestors_b:
                return node
        raise TheoryError("skeleton is not connected")  # pragma: no cover

    def branch_towards(self, ancestor: int, descendant: int) -> int:
        """The skeleton child of ``ancestor`` on the path to ``descendant``."""
        parent_of = self.parent_of
        current = descendant
        while parent_of[current] != ancestor:
            current = parent_of[current]
            if current is None:  # pragma: no cover - callers guarantee ancestry
                raise TheoryError("not an ancestor")
        return current

    def document_before(self, a: int, b: int) -> bool:
        """Strict document order between two distinct skeleton nodes."""
        if a == b:
            return False
        if self.is_ancestor(a, b):
            return True
        if self.is_ancestor(b, a):
            return False
        meet = self.cca(a, b)
        children = self.children_of[meet]
        branch_a = self.branch_towards(meet, a)
        branch_b = self.branch_towards(meet, b)
        return children.index(branch_a) < children.index(branch_b)

    # -- functional updates -----------------------------------------------------------------

    @classmethod
    def single(cls, state: str) -> "Skeleton":
        return cls(
            states=((0, state),),
            parents=((0, None),),
            children=((0, ()),),
        )

    def _replace(self, states, parents, children) -> "Skeleton":
        """Build the updated skeleton from the working dictionaries.

        The working dictionaries are copies of the cached views (whose
        insertion order is the sorted field order) updated either in place or
        by appending a fresh id larger than every existing one, so their
        iteration order is already the canonical sorted order -- no re-sort
        needed on this hot construction path.
        """
        return Skeleton(
            states=tuple(states.items()),
            parents=tuple(parents.items()),
            children=tuple((k, tuple(v)) for k, v in children.items()),
        )

    def with_root_above(self, new_id: int, state: str) -> "Skeleton":
        states = dict(self.state_of)
        parents = dict(self.parent_of)
        children = {k: list(v) for k, v in self.children_of.items()}
        old_root = self.root
        states[new_id] = state
        parents[new_id] = None
        parents[old_root] = new_id
        children[new_id] = [old_root]
        return self._replace(states, parents, children)

    def with_node_on_edge(self, new_id: int, state: str, child: int) -> "Skeleton":
        """Insert a node between ``child`` and its skeleton parent."""
        states = dict(self.state_of)
        parents = dict(self.parent_of)
        children = {k: list(v) for k, v in self.children_of.items()}
        parent = parents[child]
        if parent is None:
            raise TheoryError("use with_root_above to insert above the root")
        states[new_id] = state
        parents[new_id] = parent
        parents[child] = new_id
        siblings = children[parent]
        siblings[siblings.index(child)] = new_id
        children[new_id] = [child]
        return self._replace(states, parents, children)

    def with_branch(self, new_id: int, state: str, under: int, slot: int) -> "Skeleton":
        """Add a new leaf branch under ``under`` at child position ``slot``."""
        states = dict(self.state_of)
        parents = dict(self.parent_of)
        children = {k: list(v) for k, v in self.children_of.items()}
        states[new_id] = state
        parents[new_id] = under
        children[under].insert(slot, new_id)
        children[new_id] = []
        return self._replace(states, parents, children)


class TreeRunTheory(DatabaseTheory):
    """Treedb(L) for the regular tree language of a tree automaton."""

    def __init__(self, automaton: TreeAutomaton) -> None:
        self._automaton = automaton
        self._analysis = automaton.analysis()
        if not self._analysis.trimmed_states:
            # The language is empty; seeds will simply be empty.
            pass
        self._schema = tree_schema(automaton.alphabet)
        key_relations = {STATE_PREFIX + q: 1 for q in sorted(automaton.states)}
        self._key_schema = self._schema.extend(relations=key_relations)
        self._anchor_cache: Dict[Tuple[str, Tuple[str, ...]], Optional[List[str]]] = {}
        self._up_cache: Dict[str, Set[str]] = {}
        # Canonical-form caches (see repro.perf): node placement only depends
        # on the (immutable) skeleton and the number of fresh nodes, yet the
        # successor enumeration used to recompute it for every register-target
        # combination; completability and abstraction keys are likewise pure
        # functions of the skeleton (and valuation).
        self._placement_cache = BoundedCache("trees_placements", cap=1 << 12)
        self._completable_cache = BoundedCache("trees_completable")
        self._key_cache = BoundedCache("trees_abstraction_key")

    # -- accessors -----------------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def automaton(self) -> TreeAutomaton:
        return self._automaton

    # -- serialization -------------------------------------------------------------

    SPEC_KIND = "tree_run"

    def to_spec(self) -> Dict[str, object]:
        return {"kind": self.SPEC_KIND, "automaton": self._automaton.to_spec()}

    @classmethod
    def from_spec(cls, spec: Dict[str, object]) -> "TreeRunTheory":
        return cls(TreeAutomaton.from_spec(spec["automaton"]))

    @property
    def analysis(self) -> AutomatonAnalysis:
        return self._analysis

    def blowup(self, n: int) -> int:
        # Lemma 14: blowup is linear with a constant exponential in the state space.
        return n * max(1, 2 ** min(len(self._automaton.states), 20))

    def membership(self, database: Structure) -> bool:
        raise NotImplementedError(
            "use TreeAutomaton.accepts on concrete trees; arbitrary TreeSchema "
            "databases are not decoded back into trees"
        )

    # -- completability ------------------------------------------------------------------------

    def _up_states(self, state: str) -> Set[str]:
        """States that can appear (weakly) above ``state`` on a vertical path."""
        if state not in self._up_cache:
            self._up_cache[state] = {
                s
                for s in self._analysis.trimmed_states
                if self._analysis.descendant_or_equal(state, s)
            }
        return self._up_cache[state]

    def skeleton_completable(self, skeleton: Skeleton) -> bool:
        """The vertical + horizontal conditions at every skeleton node."""
        return self._completable_cache.get_or_compute(
            skeleton, lambda: self._skeleton_completable_uncached(skeleton)
        )

    def _skeleton_completable_uncached(self, skeleton: Skeleton) -> bool:
        for node in skeleton.children_of:
            if not self._node_completable(skeleton, node):
                return False
        return True

    def _node_completable(self, skeleton: Skeleton, node: int) -> bool:
        """The vertical + horizontal conditions at one skeleton node.

        Every placement move touches at most two nodes (the fresh node and
        the node whose child list changed), so candidates grown from a
        completable skeleton only need this local check at the touched nodes
        -- the fast path of :meth:`_single_placements`.
        """
        analysis = self._analysis
        state_of = skeleton.state_of
        parent_state = state_of[node]
        if parent_state not in analysis.trimmed_states:
            return False
        children = skeleton.children_of[node]
        for child in children:
            if not analysis.proper_descendant(state_of[child], parent_state):
                return False
        if children and not self._horizontal_ok(parent_state, [state_of[c] for c in children]):
            return False
        return True

    def _horizontal_ok(self, parent_state: str, child_states: Sequence[str]) -> bool:
        return self._choose_anchor_states(parent_state, child_states) is not None

    def _choose_anchor_states(
        self, parent_state: str, child_states: Sequence[str]
    ) -> Optional[List[str]]:
        """Pick real child states s_i (anchors) realising the skeleton children."""
        key = (parent_state, tuple(child_states))
        if key in self._anchor_cache:
            return self._anchor_cache[key]
        result: Optional[List[str]] = None
        candidate_sets = [sorted(self._up_states(state)) for state in child_states]
        for anchors in itertools.product(*candidate_sets):
            if self._analysis.children_subsequence_possible(parent_state, anchors):
                result = list(anchors)
                break
        self._anchor_cache[key] = result
        return result

    # -- seeds -------------------------------------------------------------------------------------

    def initial_configurations(self, system: DatabaseDrivenSystem) -> Iterator[TheoryConfiguration]:
        registers = list(system.registers)
        if not self._analysis.trimmed_states:
            return
        for partition in set_partitions(registers):
            blocks = list(partition)
            for first_state in sorted(self._analysis.trimmed_states):
                base = Skeleton.single(first_state)
                for skeleton, new_ids in self._place_nodes(base, len(blocks) - 1):
                    node_ids = [0] + list(new_ids)
                    valuation = {}
                    for block, node in zip(blocks, node_ids):
                        for register in block:
                            valuation[register] = node
                    yield TheoryConfiguration.make(
                        skeleton, valuation, fresh_elements=tuple(skeleton.node_ids)
                    )

    # -- successors --------------------------------------------------------------------

    def successor_configurations(
        self,
        system: DatabaseDrivenSystem,
        config: TheoryConfiguration,
        transition: Transition,
    ) -> Iterator[TheoryConfiguration]:
        if caches_enabled():
            plan = self._transition_plan(transition)
            for delta in self.enumerate_deltas(system, config, transition, plan):
                yield self.apply_delta(config, delta)
            return
        registers = list(system.registers)
        skeleton: Skeleton = config.witness
        existing = list(skeleton.node_ids)
        valuation_old = config.valuation
        max_fresh = len(registers)
        for targets in itertools.product(
            existing + [("fresh", slot) for slot in range(max_fresh)],
            repeat=len(registers),
        ):
            fresh_slots = sorted({target[1] for target in targets if isinstance(target, tuple)})
            if fresh_slots != list(range(len(fresh_slots))):
                continue
            if not fresh_slots:
                valuation_new = dict(zip(registers, targets))
                if not self._guard_prefilter(
                    skeleton, system, transition, valuation_old, valuation_new
                ):
                    continue
                yield TheoryConfiguration.make(skeleton, valuation_new, ())
                continue
            for extended, new_ids in self._place_nodes(skeleton, len(fresh_slots)):
                valuation_new = {}
                for register, target in zip(registers, targets):
                    if isinstance(target, tuple):
                        valuation_new[register] = new_ids[target[1]]
                    else:
                        valuation_new[register] = target
                if not self._guard_prefilter(
                    extended, system, transition, valuation_old, valuation_new
                ):
                    continue
                yield TheoryConfiguration.make(extended, valuation_new, tuple(new_ids))

    # -- incremental candidate protocol --------------------------------------------

    def plan_guard_schema(self) -> Schema:
        return self._schema

    def plan_function_symbols(self):
        return frozenset((CCA,))

    def witness_size(self, config: TheoryConfiguration) -> int:
        return len(config.witness.states)

    def enumerate_deltas(
        self,
        system: DatabaseDrivenSystem,
        config: TheoryConfiguration,
        transition: Transition,
        plan=None,
    ) -> Iterator[CandidateDelta]:
        """Enumerate successor deltas with the guard decided on the skeleton.

        Skeleton relations (ancestry, document order, labels, ``cca``) are
        decided exactly on the extended skeleton, so for pure tree guards the
        engine never renders the skeleton into a database at all: candidates
        whose guard fails are dropped here (exactly where the legacy
        pre-filter dropped them), and surviving candidates carry
        ``guard_status=True`` so the engine skips the authoritative
        evaluation.  Atoms outside TreeSchema (data-value relations) keep the
        conservative UNKNOWN fallback.
        """
        if plan is None or plan.compiled is None:
            yield from super().enumerate_deltas(system, config, transition, plan)
            return
        registers = list(system.registers)
        skeleton: Skeleton = config.witness
        existing = list(skeleton.node_ids)
        valuation_old = config.valuation
        max_fresh = len(registers)
        evaluator = plan.compiled.evaluator
        stats = plan.stats
        letter_of = self._automaton.letter_of

        current: List[Skeleton] = [skeleton]

        def fact(symbol: str, elements):
            view = current[0]
            if symbol == ANCESTOR:
                return view.is_ancestor(elements[0], elements[1])
            if symbol == DOCUMENT_ORDER:
                return view.document_before(elements[0], elements[1])
            if symbol.startswith("label_"):
                return letter_of[view.state_of[elements[0]]] == symbol[len("label_"):]
            return UNKNOWN

        def term(symbol: str, elements):
            if symbol == CCA:
                return current[0].cca(elements[0], elements[1])
            return UNKNOWN

        context = DeltaContext(valuation_old, None, fact, term)

        for targets in itertools.product(
            existing + [("fresh", slot) for slot in range(max_fresh)],
            repeat=len(registers),
        ):
            fresh_slots = sorted({target[1] for target in targets if isinstance(target, tuple)})
            if fresh_slots != list(range(len(fresh_slots))):
                continue
            if not fresh_slots:
                valuation_new = dict(zip(registers, targets))
                current[0] = skeleton
                context.value_new = valuation_new
                status = evaluator(context)
                if status is False:
                    stats.enumeration_pruned += 1
                    continue
                yield CandidateDelta(
                    tuple(sorted(valuation_new.items())),
                    (),
                    (),
                    status,
                    skeleton,
                )
                continue
            for extended, new_ids in self._place_nodes(skeleton, len(fresh_slots)):
                valuation_new = {}
                for register, target in zip(registers, targets):
                    if isinstance(target, tuple):
                        valuation_new[register] = new_ids[target[1]]
                    else:
                        valuation_new[register] = target
                current[0] = extended
                context.value_new = valuation_new
                status = evaluator(context)
                if status is False:
                    stats.enumeration_pruned += 1
                    continue
                yield CandidateDelta(
                    tuple(sorted(valuation_new.items())),
                    tuple(new_ids),
                    (),
                    status,
                    extended,
                )

    def apply_delta(
        self, config: TheoryConfiguration, delta: CandidateDelta
    ) -> TheoryConfiguration:
        payload = delta.payload
        if isinstance(payload, TheoryConfiguration):
            return payload
        return TheoryConfiguration(payload, delta.valuation_items, delta.fresh_elements)

    def _guard_prefilter(
        self,
        skeleton: Skeleton,
        system: DatabaseDrivenSystem,
        transition: Transition,
        valuation_old: Dict[str, Element],
        valuation_new: Dict[str, Element],
    ) -> bool:
        """The legacy guard pre-filter: walk the formula over a skeleton view.

        Guards mentioning symbols outside TreeSchema (e.g. data-value
        relations) cannot be decided here; such candidates are kept and the
        engine performs the authoritative evaluation.  The fast path decides
        guards through the compiled plan evaluator in
        :meth:`enumerate_deltas` instead.
        """
        from repro.errors import FormulaError
        from repro.systems.dds import new, old

        combined: Dict[str, Element] = {}
        for register in system.registers:
            combined[old(register)] = valuation_old[register]
            combined[new(register)] = valuation_new[register]
        view = _SkeletonView(self, skeleton)
        try:
            return transition.guard.evaluate(view, combined)
        except FormulaError:
            return True

    def _place_nodes(self, skeleton: Skeleton, count: int) -> Iterator[Tuple[Skeleton, List[int]]]:
        """Place ``count`` fresh nodes one after another, every intermediate
        skeleton remaining cca-closed and completable.

        Placements depend only on the skeleton and the count -- not on the
        register assignment that asked for them -- so the successor
        enumeration memoises the materialised list per ``(skeleton, count)``
        instead of re-walking the placement tree for every register-target
        combination (the pre-refactor tree hot spot).
        """
        if not caches_enabled():
            yield from self._place_nodes_uncached(skeleton, count)
            return
        # Only top-level results are cached: interior skeletons of the
        # placement recursion are mostly unique, and caching them would
        # pollute (and repeatedly overflow) the table for no hits.
        key = (skeleton, count)
        cached = self._placement_cache.get(key)
        if cached is None:
            cached = list(self._place_nodes_uncached(skeleton, count))
            self._placement_cache.put(key, cached)
        yield from cached

    def _place_nodes_uncached(
        self, skeleton: Skeleton, count: int
    ) -> Iterator[Tuple[Skeleton, List[int]]]:
        if count == 0:
            yield skeleton, []
            return
        for extended, new_id in self._single_placements(skeleton):
            for final, rest in self._place_nodes_uncached(extended, count - 1):
                yield final, [new_id] + rest

    def _single_placements(self, skeleton: Skeleton) -> Iterator[Tuple[Skeleton, int]]:
        """All ways to add one node (possibly with one helper cca node).

        ``skeleton`` is always completable here (seeds start from single
        nodes and every intermediate candidate is filtered), so on the fast
        path completability of a candidate reduces to the local conditions
        at the nodes the move touched; the legacy path re-checks the whole
        skeleton, as the seed engine did.
        """
        analysis = self._analysis
        states = sorted(analysis.trimmed_states)
        state_of = skeleton.state_of
        new_id = skeleton.next_id()
        seen: Set[Skeleton] = set()
        local_check = caches_enabled()

        def admissible(candidate: Skeleton, affected: Tuple[int, ...]) -> bool:
            if local_check:
                return all(self._node_completable(candidate, node) for node in affected)
            return self.skeleton_completable(candidate)

        def emit(
            candidate: Skeleton, node: int, affected: Tuple[int, ...]
        ) -> Iterator[Tuple[Skeleton, int]]:
            if candidate in seen:
                return
            if admissible(candidate, affected):
                seen.add(candidate)
                yield candidate, node

        root = skeleton.root
        parent_of = skeleton.parent_of
        proper = analysis.proper_descendant
        # M1: a new ancestor of the whole skeleton.
        for state in states:
            if proper(state_of[root], state):
                yield from emit(
                    skeleton.with_root_above(new_id, state),
                    new_id,
                    (new_id,),
                )
        # M2: a node inside an existing skeleton edge.
        for node in skeleton.node_ids:
            parent = parent_of[node]
            if parent is None:
                continue
            for state in states:
                if not (proper(state_of[node], state) and proper(state, state_of[parent])):
                    continue
                yield from emit(
                    skeleton.with_node_on_edge(new_id, state, node),
                    new_id,
                    (new_id, parent),
                )
        # M3: a new leaf branch under an existing node, at every slot.
        for node in skeleton.node_ids:
            arity = len(skeleton.children_of[node])
            for slot in range(arity + 1):
                for state in states:
                    if not proper(state, state_of[node]):
                        continue
                    yield from emit(
                        skeleton.with_branch(new_id, state, node, slot),
                        new_id,
                        (new_id, node),
                    )
        # M4: a helper cca node on an edge (or above the root) with the new node
        # hanging next to the detached branch.
        helper_id = new_id
        branch_id = new_id + 1
        for node in list(skeleton.node_ids):
            parent = parent_of[node]
            for helper_state in states:
                if not proper(state_of[node], helper_state):
                    continue
                if parent is None:
                    with_helper = skeleton.with_root_above(helper_id, helper_state)
                    helper_affected: Tuple[int, ...] = (helper_id,)
                else:
                    if not proper(helper_state, state_of[parent]):
                        continue
                    with_helper = skeleton.with_node_on_edge(helper_id, helper_state, node)
                    helper_affected = (helper_id, parent)
                if not admissible(with_helper, helper_affected):
                    continue
                for state in states:
                    if not proper(state, helper_state):
                        continue
                    for slot in (0, 1):
                        candidate = with_helper.with_branch(branch_id, state, helper_id, slot)
                        if candidate in seen:
                            continue
                        if admissible(candidate, (branch_id, helper_id)):
                            seen.add(candidate)
                            yield candidate, branch_id

    # -- rendering ---------------------------------------------------------------------

    def database(self, config: TheoryConfiguration) -> Structure:
        return self._skeleton_structure(config.witness, self._schema, with_states=False)

    def abstraction_key(self, config: TheoryConfiguration) -> Hashable:
        skeleton: Skeleton = config.witness
        return self._key_cache.get_or_compute(
            (skeleton, config.valuation_items),
            lambda: self._abstraction_key_uncached(skeleton, config),
        )

    def _abstraction_key_uncached(
        self, skeleton: Skeleton, config: TheoryConfiguration
    ) -> Hashable:
        generated = self._cca_closure(skeleton, set(config.valuation.values()))
        restricted = self._restrict(skeleton, generated)
        view = self._skeleton_structure(restricted, self._key_schema, with_states=True)
        return generic_abstraction_key(view, config.valuation)

    def _cca_closure(self, skeleton: Skeleton, nodes: Set[int]) -> Set[int]:
        closure = set(nodes)
        changed = True
        while changed:
            changed = False
            for a, b in itertools.combinations(sorted(closure), 2):
                meet = skeleton.cca(a, b)
                if meet not in closure:
                    closure.add(meet)
                    changed = True
        return closure

    def _restrict(self, skeleton: Skeleton, nodes: Set[int]) -> Skeleton:
        """The sub-skeleton induced by a cca-closed node set."""
        state_of = skeleton.state_of
        parents: Dict[int, Optional[int]] = {}
        children: Dict[int, List[int]] = {node: [] for node in nodes}
        for node in nodes:
            ancestor = skeleton.parent_of[node]
            while ancestor is not None and ancestor not in nodes:
                ancestor = skeleton.parent_of[ancestor]
            parents[node] = ancestor
        ordered = sorted(
            nodes,
            key=lambda n: [0 if skeleton.document_before(m, n) else 1 for m in sorted(nodes)],
        )
        for node in ordered:
            if parents[node] is not None:
                children[parents[node]].append(node)
        # Order children by document order.
        for node in children:
            children[node].sort(
                key=lambda c: sum(
                    1 for other in children[node] if skeleton.document_before(other, c)
                )
            )
        return Skeleton(
            states=tuple(sorted((n, state_of[n]) for n in nodes)),
            parents=tuple(sorted(parents.items())),
            children=tuple(sorted((k, tuple(v)) for k, v in children.items())),
        )

    def _skeleton_structure(
        self, skeleton: Skeleton, schema: Schema, with_states: bool
    ) -> Structure:
        letter = self._automaton.letter_of
        nodes = list(skeleton.node_ids)
        state_of = skeleton.state_of
        relations: Dict[str, set] = {ANCESTOR: set(), DOCUMENT_ORDER: set()}
        for label in self._automaton.alphabet:
            relations[label_predicate(label)] = set()
        if with_states:
            for q in sorted(self._automaton.states):
                relations[STATE_PREFIX + q] = set()
        for node in nodes:
            relations[label_predicate(letter[state_of[node]])].add((node,))
            if with_states:
                relations[STATE_PREFIX + state_of[node]].add((node,))
        for a, b in itertools.product(nodes, repeat=2):
            if skeleton.is_ancestor(a, b):
                relations[ANCESTOR].add((a, b))
            if a != b and skeleton.document_before(a, b):
                relations[DOCUMENT_ORDER].add((a, b))
        cca_table = {(a, b): skeleton.cca(a, b) for a in nodes for b in nodes}
        return Structure(
            schema, nodes, relations=relations, functions={CCA: cca_table}, validate=False
        )

    # -- witness expansion -------------------------------------------------------------

    def certify(
        self, config: TheoryConfiguration
    ) -> Tuple[Structure, Dict[Element, Element], Dict[str, object]]:
        """Expand the skeleton into an accepted tree plus its accepting run.

        The evidence payload carries the expanded tree spec and the accepting
        run (path -> state), so an engine-independent validator can rebuild
        the tree database from paths, compare it with the witness database,
        and re-check run validity against the automaton spec.
        """
        skeleton: Skeleton = config.witness
        tree, placement = self.expand_skeleton(skeleton)
        run = self._automaton.find_run(tree)
        if run is None:  # pragma: no cover - soundness net
            raise TheoryError("internal error: expanded witness tree is not accepted")
        index = node_index_by_path(tree)
        mapping = {node: index[path] for node, path in placement.items()}
        evidence = {
            "tree": tree.to_spec(),
            "run": [[list(path), state] for path, state in sorted(run.items())],
        }
        return treedb(tree, self._automaton.alphabet), mapping, evidence

    def expand_skeleton(self, skeleton: Skeleton) -> Tuple[Tree, Dict[int, Tuple[int, ...]]]:
        """Expand a completable skeleton into an accepted tree.

        Returns the tree and the path each skeleton node was realised at.
        """
        analysis = self._analysis
        letter = self._automaton.letter_of
        state_of = skeleton.state_of

        def realize(node: int) -> Tuple[Tree, Dict[int, Tuple[int, ...]]]:
            state = state_of[node]
            kids = skeleton.children_of[node]
            placement: Dict[int, Tuple[int, ...]] = {node: ()}
            if not kids:
                template = analysis.minimal_subtrees[state]
                return Tree(letter[state], template.children), placement
            anchors = self._choose_anchor_states(state, [state_of[c] for c in kids])
            if anchors is None:  # pragma: no cover - completability guarantees anchors
                raise TheoryError("skeleton lost completability during expansion")
            sequence = analysis.expand_children_subsequence(state, anchors)
            if sequence is None:  # pragma: no cover
                raise TheoryError("cannot expand children sequence")
            positions = _match_subsequence(sequence, anchors)
            children_trees: List[Tree] = []
            for index, child_state in enumerate(sequence):
                if index in positions:
                    skeleton_child = kids[positions.index(index)]
                    subtree, sub_placement = self._realize_chain(
                        child_state, skeleton_child, skeleton, realize
                    )
                    for sk_node, path in sub_placement.items():
                        placement[sk_node] = (index,) + path
                    children_trees.append(subtree)
                else:
                    children_trees.append(analysis.minimal_subtrees[child_state])
            return Tree(letter[state], tuple(children_trees)), placement

        root_tree, root_placement = realize(skeleton.root)
        # Wrap with the context chain from an automaton root state down to the
        # skeleton root's state.
        context = analysis.root_context[state_of[skeleton.root]]
        tree, prefix = self._wrap_with_chain(context, root_tree)
        placement = {node: prefix + path for node, path in root_placement.items()}
        return tree, placement

    def _realize_chain(
        self,
        top_state: str,
        skeleton_node: int,
        skeleton: Skeleton,
        realize,
    ) -> Tuple[Tree, Dict[int, Tuple[int, ...]]]:
        """Build the subtree rooted at a real child with state ``top_state`` that
        contains the realisation of ``skeleton_node`` below it."""
        target_state = skeleton.state_of[skeleton_node]
        chain = self._analysis.child_chain(target_state, top_state)
        if chain is None:  # pragma: no cover - anchors guarantee a chain
            raise TheoryError("no descendant chain during expansion")
        subtree, placement = realize(skeleton_node)
        tree, prefix = self._wrap_with_chain(chain, subtree)
        return tree, {node: prefix + path for node, path in placement.items()}

    def _wrap_with_chain(self, chain: Sequence[str], bottom: Tree) -> Tuple[Tree, Tuple[int, ...]]:
        """Wrap ``bottom`` under the state chain ``[top, ..., bottom_state]``.

        ``chain[-1]`` is the state of ``bottom``'s root; every step above it is
        realised by a node whose children sequence contains the next chain
        state, all other children being minimal subtrees.  Returns the wrapped
        tree and the path of ``bottom``'s root inside it.
        """
        analysis = self._analysis
        letter = self._automaton.letter_of
        tree = bottom
        prefix: Tuple[int, ...] = ()
        for index in range(len(chain) - 2, -1, -1):
            parent_state = chain[index]
            child_state = chain[index + 1]
            sequence = analysis.expand_children_subsequence(parent_state, [child_state])
            if sequence is None:  # pragma: no cover
                raise TheoryError("cannot realise chain step during expansion")
            position = sequence.index(child_state)
            children = [
                tree if i == position else analysis.minimal_subtrees[s]
                for i, s in enumerate(sequence)
            ]
            tree = Tree(letter[parent_state], tuple(children))
            prefix = (position,) + prefix
        return tree, prefix

    def describe(self) -> str:
        return (
            f"Treedb(L) for a tree automaton with {len(self._automaton.states)} states "
            f"over labels {self._automaton.alphabet}"
        )


class _SkeletonView:
    """A duck-typed read-only Structure view of a skeleton (guard pre-filtering).

    Implements just enough of the :class:`~repro.logic.structures.Structure`
    interface for formula evaluation -- ``schema``, ``domain``, ``holds`` and
    ``apply`` -- without materialising relation tables.
    """

    __slots__ = ("_theory", "_skeleton", "domain")

    def __init__(self, theory: "TreeRunTheory", skeleton: Skeleton) -> None:
        self._theory = theory
        self._skeleton = skeleton
        self.domain = frozenset(skeleton.node_ids)

    @property
    def schema(self) -> Schema:
        return self._theory.schema

    def holds(self, name: str, *args) -> bool:
        skeleton = self._skeleton
        if name == ANCESTOR:
            return skeleton.is_ancestor(args[0], args[1])
        if name == DOCUMENT_ORDER:
            return skeleton.document_before(args[0], args[1])
        if name.startswith("label_"):
            label = name[len("label_"):]
            state = skeleton.state_of[args[0]]
            return self._theory.automaton.letter_of[state] == label
        return False

    def apply(self, name: str, *args):
        if name == CCA:
            return self._skeleton.cca(args[0], args[1])
        raise KeyError(name)


def _match_subsequence(sequence: Sequence[str], anchors: Sequence[str]) -> List[int]:
    """Positions of ``anchors`` inside ``sequence`` (greedy left-to-right)."""
    positions: List[int] = []
    start = 0
    for anchor in anchors:
        index = sequence.index(anchor, start)
        positions.append(index)
        start = index + 1
    return positions
