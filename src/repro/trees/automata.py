"""Tree automata on unranked trees, in the normal form of Section 5.3.

The automaton labels every node of the input tree with a state; the run is
valid when

* every state reads a unique letter (``letter(q)`` is the node's label),
* leaves carry *leaf states*, the root carries a *root state*, rightmost
  children carry *rightmost states*,
* the leftmost child's state and its parent's state are related by the
  ``firstchild`` relation, and consecutive siblings by the ``nextsibling``
  relation.

From these the paper derives the *descendant* relation ``->v`` and the
*following-sibling* relation ``->h`` on states, their strongly connected
components (descendant / horizontal components), the branching / linear
classification of descendant components, and the ``left(Γ)`` / ``right(Γ)``
sets -- all of which are computed by :meth:`TreeAutomaton.analysis` and used
by the run databases (:mod:`repro.trees.rundb`), the emptiness procedure
(:mod:`repro.trees.theory`) and the Lemma 22 / Lemma 23 tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import AutomatonError
from repro.trees.tree import Tree

State = str


@dataclass(frozen=True)
class TreeAutomaton:
    """An unranked tree automaton in the position-labelling normal form."""

    states: FrozenSet[State]
    letter: Tuple[Tuple[State, str], ...]
    firstchild: FrozenSet[Tuple[State, State]]
    """Pairs ``(child_state, parent_state)``: allowed state of a *leftmost* child."""
    nextsibling: FrozenSet[Tuple[State, State]]
    """Pairs ``(right_state, left_state)``: allowed state of the *next* sibling."""
    leaf_states: FrozenSet[State]
    root_states: FrozenSet[State]
    rightmost_states: FrozenSet[State]

    # -- construction -----------------------------------------------------------------

    @classmethod
    def make(
        cls,
        letter: Dict[State, str],
        firstchild: Iterable[Tuple[State, State]],
        nextsibling: Iterable[Tuple[State, State]],
        leaf_states: Iterable[State],
        root_states: Iterable[State],
        rightmost_states: Iterable[State],
    ) -> "TreeAutomaton":
        states = frozenset(letter)
        for relation, name in ((firstchild, "firstchild"), (nextsibling, "nextsibling")):
            for p, q in relation:
                if p not in states or q not in states:
                    raise AutomatonError(f"{name} pair ({p}, {q}) uses unknown states")
        for subset, name in (
            (leaf_states, "leaf"),
            (root_states, "root"),
            (rightmost_states, "rightmost"),
        ):
            for q in subset:
                if q not in states:
                    raise AutomatonError(f"{name} state {q!r} is not a state")
        return cls(
            states=states,
            letter=tuple(sorted(letter.items())),
            firstchild=frozenset(firstchild),
            nextsibling=frozenset(nextsibling),
            leaf_states=frozenset(leaf_states),
            root_states=frozenset(root_states),
            rightmost_states=frozenset(rightmost_states),
        )

    def to_spec(self) -> Dict[str, list]:
        """A JSON-safe, canonically ordered description of the automaton."""
        return {
            "letter": [list(pair) for pair in self.letter],
            "firstchild": [list(pair) for pair in sorted(self.firstchild)],
            "nextsibling": [list(pair) for pair in sorted(self.nextsibling)],
            "leaf_states": sorted(self.leaf_states),
            "root_states": sorted(self.root_states),
            "rightmost_states": sorted(self.rightmost_states),
        }

    @classmethod
    def from_spec(cls, spec: Dict[str, list]) -> "TreeAutomaton":
        """Rebuild a tree automaton from :meth:`to_spec` output."""
        return cls.make(
            letter=dict(tuple(pair) for pair in spec["letter"]),
            firstchild=[tuple(pair) for pair in spec["firstchild"]],
            nextsibling=[tuple(pair) for pair in spec["nextsibling"]],
            leaf_states=spec["leaf_states"],
            root_states=spec["root_states"],
            rightmost_states=spec["rightmost_states"],
        )

    @property
    def letter_of(self) -> Dict[State, str]:
        return dict(self.letter)

    @property
    def alphabet(self) -> List[str]:
        return sorted({a for _, a in self.letter})

    # -- analysis (cached) ---------------------------------------------------------------

    def analysis(self) -> "AutomatonAnalysis":
        return _analyse_cached(self)

    # -- acceptance -------------------------------------------------------------------------

    def possible_root_states(self, tree: Tree) -> Set[State]:
        """States the automaton can assign to the root of ``tree``."""
        letter = self.letter_of

        def states_of(subtree: Tree) -> Set[State]:
            candidates = {q for q in self.states if letter[q] == subtree.label}
            if not subtree.children:
                return candidates & self.leaf_states
            child_sets = [states_of(child) for child in subtree.children]
            result = set()
            for q in candidates:
                if self._children_sequence_possible(q, child_sets):
                    result.add(q)
            return result

        return states_of(tree)

    def accepts(self, tree: Tree) -> bool:
        """Language membership."""
        return bool(self.possible_root_states(tree) & self.root_states)

    def find_run(self, tree: Tree) -> Optional[Dict[Tuple[int, ...], State]]:
        """A run (mapping node paths to states), or ``None`` if rejected."""
        letter = self.letter_of
        memo: Dict[Tuple[int, ...], Set[State]] = {}

        def states_of(subtree: Tree, path: Tuple[int, ...]) -> Set[State]:
            candidates = {q for q in self.states if letter[q] == subtree.label}
            if not subtree.children:
                result = candidates & self.leaf_states
            else:
                child_sets = [
                    states_of(child, path + (i,)) for i, child in enumerate(subtree.children)
                ]
                result = {q for q in candidates if self._children_sequence_possible(q, child_sets)}
            memo[path] = result
            return result

        root_states = states_of(tree, ()) & self.root_states
        if not root_states:
            return None

        assignment: Dict[Tuple[int, ...], State] = {}

        def assign(subtree: Tree, path: Tuple[int, ...], state: State) -> None:
            assignment[path] = state
            if not subtree.children:
                return
            child_sets = [memo[path + (i,)] for i in range(len(subtree.children))]
            chosen = self._choose_children_sequence(state, child_sets)
            if chosen is None:  # pragma: no cover - guaranteed by construction
                raise AutomatonError("internal error: inconsistent run reconstruction")
            for index, child_state in enumerate(chosen):
                assign(
                    subtree.children[index],
                    path + (index,),
                    child_state,
                )

        assign(tree, (), sorted(root_states)[0])
        return assignment

    def _children_sequence_possible(self, parent: State, child_sets: Sequence[Set[State]]) -> bool:
        return self._choose_children_sequence(parent, child_sets) is not None

    def _choose_children_sequence(
        self, parent: State, child_sets: Sequence[Set[State]]
    ) -> Optional[List[State]]:
        """Pick child states satisfying firstchild / nextsibling / rightmost."""
        if not child_sets:
            return []
        allowed_first = {p for p, q in self.firstchild if q == parent}
        layers: List[Dict[State, Optional[State]]] = []
        current: Dict[State, Optional[State]] = {
            state: None for state in child_sets[0] & allowed_first
        }
        layers.append(current)
        for child_set in child_sets[1:]:
            nxt: Dict[State, Optional[State]] = {}
            for state in child_set:
                for previous in current:
                    if (state, previous) in self.nextsibling:
                        nxt[state] = previous
                        break
            layers.append(nxt)
            current = nxt
            if not current:
                return None
        final = [s for s in current if s in self.rightmost_states]
        if not final:
            return None
        # Reconstruct backwards through the stored predecessor links.
        sequence = [final[0]]
        for index in range(len(layers) - 1, 0, -1):
            predecessor = layers[index][sequence[0]]
            sequence.insert(0, predecessor)
        return sequence

    # -- language exploration ----------------------------------------------------------------

    def accepted_trees(self, max_size: int) -> Iterator[Tree]:
        """All accepted trees with at most ``max_size`` nodes (baseline search)."""
        from repro.trees.tree import all_trees

        for tree in all_trees(self.alphabet, max_size):
            if self.accepts(tree):
                yield tree


@dataclass
class AutomatonAnalysis:
    """Derived reachability data of a (trimmed) tree automaton."""

    automaton: TreeAutomaton
    trimmed_states: Set[State]
    can_first: Dict[State, Set[State]]
    sib_next: Dict[State, Set[State]]
    sib_reach_star: Dict[State, Set[State]]
    sib_reach_plus: Dict[State, Set[State]]
    can_be_child: Dict[State, Set[State]]
    """``can_be_child[q]`` = states that can appear as (any) child of a node in state q."""
    desc_reach_plus: Dict[State, Set[State]]
    """``p in desc_reach_plus[q]``: a p-node can appear as a proper descendant of a q-node."""
    descendant_component_of: Dict[State, int]
    descendant_components: List[FrozenSet[State]]
    horizontal_component_of: Dict[State, int]
    horizontal_components: List[FrozenSet[State]]
    branching_components: Set[int]
    left_of_component: Dict[int, Set[State]]
    right_of_component: Dict[int, Set[State]]
    minimal_subtrees: Dict[State, Tree]
    root_context: Dict[State, List[State]]
    """For every trimmed state q, a chain ``[root_state, ..., q]`` of states going
    down from a root state to q, each consecutive pair a child-of step."""

    # -- convenience predicates --------------------------------------------------------------

    def descendant_or_equal(self, below: State, above: State) -> bool:
        """Can a node in state ``below`` be a descendant of or equal to one in ``above``?"""
        return below == above or below in self.desc_reach_plus.get(above, set())

    def proper_descendant(self, below: State, above: State) -> bool:
        return below in self.desc_reach_plus.get(above, set())

    def children_subsequence_possible(self, parent: State, states: Sequence[State]) -> bool:
        """Can ``states`` appear, in this order, among the children of a ``parent`` node?

        This is the horizontal completability condition used by the skeleton
        check: there is a valid children sequence of ``parent`` containing the
        given states as a subsequence (each on a *distinct* child).
        """
        if parent not in self.trimmed_states:
            return False
        if any(state not in self.trimmed_states for state in states):
            return False
        if not states:
            return True
        starts = self.can_first.get(parent, set())
        if states[0] not in {t for s in starts for t in ({s} | self.sib_reach_plus.get(s, set()))}:
            return False
        position = states[0]
        for nxt in states[1:]:
            if nxt not in self.sib_reach_plus.get(position, set()):
                return False
            position = nxt
        # The sequence must be completable to the right up to a rightmost state.
        closing = {position} | self.sib_reach_star_of(position)
        return bool(closing & self.automaton.rightmost_states)

    def sib_reach_star_of(self, state: State) -> Set[State]:
        return {state} | self.sib_reach_plus.get(state, set())

    def expand_children_subsequence(
        self, parent: State, states: Sequence[State]
    ) -> Optional[List[State]]:
        """A concrete valid children sequence of ``parent`` containing ``states``.

        Returns the full sequence of child states (the given ones appear at
        increasing positions), or ``None`` when impossible.  Used by the
        witness expansion of :meth:`repro.trees.theory.TreeRunTheory.finalize`.
        """
        if not self.children_subsequence_possible(parent, states):
            return None
        starts = sorted(self.can_first.get(parent, set()))
        if not states:
            for start in starts:
                path = self._sib_path(start, self.automaton.rightmost_states)
                if path is not None:
                    return path
            return None
        best: Optional[List[State]] = None
        for start in starts:
            prefix = self._sib_path_to(start, states[0])
            if prefix is None:
                continue
            sequence = list(prefix)
            feasible = True
            for previous, nxt in zip(states, states[1:]):
                hop = self._sib_path_to_strict(previous, nxt)
                if hop is None:
                    feasible = False
                    break
                sequence.extend(hop[1:])
            if not feasible:
                continue
            closing = self._sib_path(sequence[-1], self.automaton.rightmost_states)
            if closing is None:
                continue
            sequence.extend(closing[1:])
            if best is None or len(sequence) < len(best):
                best = sequence
        return best

    def _sib_path_to(self, source: State, target: State) -> Optional[List[State]]:
        """Shortest path source ->sib* target (possibly zero steps)."""
        if source == target:
            return [source]
        return self._bfs(source, {target})

    def _sib_path_to_strict(self, source: State, target: State) -> Optional[List[State]]:
        """Shortest path source ->sib+ target (at least one step)."""
        for nxt in sorted(self.sib_next.get(source, set())):
            if nxt == target:
                return [source, target]
            path = self._bfs(nxt, {target})
            if path is not None:
                return [source] + path
        return None

    def _sib_path(self, source: State, targets: Set[State]) -> Optional[List[State]]:
        """Shortest path source ->sib* (some target)."""
        if source in targets:
            return [source]
        return self._bfs(source, set(targets))

    def _bfs(self, source: State, targets: Set[State]) -> Optional[List[State]]:
        from collections import deque

        queue = deque([[source]])
        seen = {source}
        while queue:
            path = queue.popleft()
            for nxt in sorted(self.sib_next.get(path[-1], set())):
                if nxt in targets:
                    return path + [nxt]
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(path + [nxt])
        return None

    def child_chain(self, below: State, above: State) -> Optional[List[State]]:
        """A chain ``[above, ..., below]`` of child-of steps from above down to below.

        Requires ``below`` to be a proper descendant state of ``above``
        (``->v``); returns the chain including both endpoints.
        """
        from collections import deque

        if below == above:
            return [above]
        queue = deque([[above]])
        seen = {above}
        while queue:
            path = queue.popleft()
            for child in sorted(self.can_be_child.get(path[-1], set())):
                if child == below:
                    return path + [child]
                if child not in seen:
                    seen.add(child)
                    queue.append(path + [child])
        return None


def _analyse(automaton: TreeAutomaton) -> AutomatonAnalysis:
    letter = automaton.letter_of
    states = set(automaton.states)

    # -- productivity (a complete subtree run exists rooted in the state) -----------
    productive: Set[State] = set()
    chosen_children: Dict[State, List[State]] = {}
    changed = True
    while changed:
        changed = False
        for q in states - productive:
            if q in automaton.leaf_states:
                productive.add(q)
                chosen_children[q] = []
                changed = True
                continue
            sequence = _valid_sequence(automaton, q, productive)
            if sequence is not None:
                productive.add(q)
                chosen_children[q] = sequence
                changed = True

    # -- reachability (the state appears in some accepting run) ----------------------
    def children_candidates(parent: State, allowed: Set[State]) -> Set[State]:
        starts = {p for p, q in automaton.firstchild if q == parent and p in allowed}
        sib = {p: set() for p in allowed}
        for right, left in automaton.nextsibling:
            if right in allowed and left in allowed:
                sib[left].add(right)
        # forward closure from starts
        reach = set(starts)
        frontier = list(starts)
        while frontier:
            s = frontier.pop()
            for t in sib.get(s, set()):
                if t not in reach:
                    reach.add(t)
                    frontier.append(t)
        # keep only states from which a rightmost state is sib-reachable
        result = set()
        for s in reach:
            seen = {s}
            stack = [s]
            ok = s in automaton.rightmost_states
            while stack and not ok:
                current = stack.pop()
                for t in sib.get(current, set()):
                    if t in automaton.rightmost_states:
                        ok = True
                        break
                    if t not in seen:
                        seen.add(t)
                        stack.append(t)
            if ok:
                result.add(s)
        return result

    reachable: Set[State] = set(automaton.root_states & productive)
    frontier = list(reachable)
    while frontier:
        q = frontier.pop()
        for child in children_candidates(q, productive):
            if child not in reachable:
                reachable.add(child)
                frontier.append(child)

    trimmed = productive & reachable

    # -- basic graphs over trimmed states ------------------------------------------------
    can_first: Dict[State, Set[State]] = {q: set() for q in trimmed}
    for p, q in automaton.firstchild:
        if p in trimmed and q in trimmed:
            can_first[q].add(p)
    sib_next: Dict[State, Set[State]] = {q: set() for q in trimmed}
    for right, left in automaton.nextsibling:
        if right in trimmed and left in trimmed:
            sib_next[left].add(right)

    sib_reach_plus = {q: _reach_plus(q, sib_next) for q in trimmed}
    sib_reach_star = {q: {q} | sib_reach_plus[q] for q in trimmed}

    can_be_child: Dict[State, Set[State]] = {q: set() for q in trimmed}
    for q in trimmed:
        candidates = set()
        for start in can_first[q]:
            candidates |= {start} | sib_reach_plus[start]
        for p in candidates:
            if sib_reach_star[p] & automaton.rightmost_states:
                can_be_child[q].add(p)

    desc_reach_plus = {q: _reach_plus(q, can_be_child) for q in trimmed}

    # -- components -------------------------------------------------------------------------
    descendant_components, descendant_component_of = _scc(sorted(trimmed), can_be_child)
    horizontal_components, horizontal_component_of = _scc(sorted(trimmed), sib_next)

    # -- branching classification -------------------------------------------------------------
    branching: Set[int] = set()
    for index, component in enumerate(descendant_components):
        if _is_branching(
            component,
            trimmed,
            can_first,
            sib_next,
            sib_reach_plus,
            sib_reach_star,
            automaton.rightmost_states,
        ):
            branching.add(index)

    # -- left(Γ) / right(Γ) ----------------------------------------------------------------------
    left_of: Dict[int, Set[State]] = {i: set() for i in range(len(descendant_components))}
    right_of: Dict[int, Set[State]] = {i: set() for i in range(len(descendant_components))}
    for index, component in enumerate(descendant_components):
        left_of[index], right_of[index] = _left_right_sets(
            component, trimmed, can_first, sib_reach_plus, sib_reach_star,
            desc_reach_plus, automaton.rightmost_states,
        )

    # -- minimal subtrees and root contexts ----------------------------------------------------
    minimal_subtrees: Dict[State, Tree] = {}
    for q in sorted(trimmed, key=lambda s: 0 if s in automaton.leaf_states else 1):
        minimal_subtrees[q] = _build_minimal_subtree(q, chosen_children, letter, minimal_subtrees)

    root_context: Dict[State, List[State]] = {}
    parent_of: Dict[State, State] = {}
    from collections import deque

    queue = deque(sorted(automaton.root_states & trimmed))
    seen_ctx = set(queue)
    while queue:
        q = queue.popleft()
        for child in sorted(can_be_child.get(q, set())):
            if child not in seen_ctx:
                seen_ctx.add(child)
                parent_of[child] = q
                queue.append(child)
    for q in trimmed:
        chain = [q]
        while chain[0] not in automaton.root_states:
            chain.insert(0, parent_of[chain[0]])
        root_context[q] = chain

    return AutomatonAnalysis(
        automaton=automaton,
        trimmed_states=trimmed,
        can_first=can_first,
        sib_next=sib_next,
        sib_reach_star=sib_reach_star,
        sib_reach_plus=sib_reach_plus,
        can_be_child=can_be_child,
        desc_reach_plus=desc_reach_plus,
        descendant_component_of=descendant_component_of,
        descendant_components=descendant_components,
        horizontal_component_of=horizontal_component_of,
        horizontal_components=horizontal_components,
        branching_components=branching,
        left_of_component=left_of,
        right_of_component=right_of,
        minimal_subtrees=minimal_subtrees,
        root_context=root_context,
    )


# -- module-level analysis cache ---------------------------------------------------------------

_ANALYSIS_CACHE: Dict[int, AutomatonAnalysis] = {}


def _analyse_cached(automaton: TreeAutomaton) -> AutomatonAnalysis:
    key = id(automaton)
    if key not in _ANALYSIS_CACHE:
        _ANALYSIS_CACHE[key] = _analyse(automaton)
    return _ANALYSIS_CACHE[key]


# -- helpers -------------------------------------------------------------------------------------


def _valid_sequence(
    automaton: TreeAutomaton, parent: State, allowed: Set[State]
) -> Optional[List[State]]:
    """A valid children sequence for ``parent`` using only ``allowed`` states."""
    starts = sorted(p for p, q in automaton.firstchild if q == parent and p in allowed)
    sib: Dict[State, Set[State]] = {}
    for right, left in automaton.nextsibling:
        if right in allowed and left in allowed:
            sib.setdefault(left, set()).add(right)
    from collections import deque

    for start in starts:
        if start in automaton.rightmost_states:
            return [start]
        queue = deque([[start]])
        seen = {start}
        while queue:
            path = queue.popleft()
            for nxt in sorted(sib.get(path[-1], set())):
                if nxt in automaton.rightmost_states:
                    return path + [nxt]
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(path + [nxt])
    return None


def _reach_plus(state: State, graph: Dict[State, Set[State]]) -> Set[State]:
    seen: Set[State] = set()
    frontier = list(graph.get(state, set()))
    seen.update(frontier)
    while frontier:
        current = frontier.pop()
        for nxt in graph.get(current, set()):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return seen


def _scc(
    states: List[State], graph: Dict[State, Set[State]]
) -> Tuple[List[FrozenSet[State]], Dict[State, int]]:
    from repro.words.nfa import _strongly_connected_components

    return _strongly_connected_components(states, graph)


def _is_branching(
    component: FrozenSet[State],
    trimmed: Set[State],
    can_first: Dict[State, Set[State]],
    sib_next: Dict[State, Set[State]],
    sib_reach_plus: Dict[State, Set[State]],
    sib_reach_star: Dict[State, Set[State]],
    rightmost: FrozenSet[State],
) -> bool:
    """Is there a run where some node in the component has two children in it?"""
    for parent in component:
        starts = can_first.get(parent, set())
        first_hits = set()
        for start in starts:
            first_hits |= {s for s in sib_reach_star.get(start, {start}) if s in component}
        for a in first_hits:
            later = {s for s in sib_reach_plus.get(a, set()) if s in component}
            for b in later:
                if sib_reach_star.get(b, {b}) & rightmost:
                    return True
    return False


def _left_right_sets(
    component: FrozenSet[State],
    trimmed: Set[State],
    can_first: Dict[State, Set[State]],
    sib_reach_plus: Dict[State, Set[State]],
    sib_reach_star: Dict[State, Set[State]],
    desc_reach_plus: Dict[State, Set[State]],
    rightmost: FrozenSet[State],
) -> Tuple[Set[State], Set[State]]:
    """The left(Γ) / right(Γ) sets of Section 5.3.

    A state ``s`` is in left(Γ) when, in some run, a node with state ``s`` can
    appear strictly to the left of (and off) a Γ-to-Γ vertical path; dually
    for right(Γ).
    """
    left: Set[State] = set()
    right: Set[State] = set()

    def desc_or_equal(below: State, above: State) -> bool:
        return below == above or below in desc_reach_plus.get(above, set())

    for parent in trimmed:
        # parent is a node on the vertical path: it must have a Γ ancestor-or-equal
        # and a child continuing the path towards a Γ descendant-or-equal.
        has_gamma_above = any(desc_or_equal(parent, g) for g in component)
        if not has_gamma_above:
            continue
        starts = can_first.get(parent, set())
        reachable_children: Set[State] = set()
        for start in starts:
            reachable_children |= sib_reach_star.get(start, {start})
        for path_child in reachable_children:
            if not sib_reach_star.get(path_child, {path_child}) & rightmost:
                continue
            continues_path = any(desc_or_equal(g, path_child) for g in component)
            if not continues_path:
                continue
            # Children strictly before path_child in the sibling order.
            for before_child in reachable_children:
                if path_child in sib_reach_plus.get(before_child, set()):
                    left.add(before_child)
                    left |= desc_reach_plus.get(before_child, set())
            # Children strictly after path_child.
            for after_child in sib_reach_plus.get(path_child, set()):
                right.add(after_child)
                right |= desc_reach_plus.get(after_child, set())
    return left, right


def _build_minimal_subtree(
    state: State,
    chosen_children: Dict[State, List[State]],
    letter: Dict[State, str],
    built: Dict[State, Tree],
) -> Tree:
    """A small complete subtree whose root carries ``state``.

    ``chosen_children`` was recorded during the productivity fixpoint, so the
    recursion is well-founded (children were productive strictly earlier).
    """
    if state in built:
        return built[state]
    children = [
        _build_minimal_subtree(child, chosen_children, letter, built)
        for child in chosen_children[state]
    ]
    tree = Tree(letter[state], tuple(children))
    built[state] = tree
    return tree


# -- convenience constructors -----------------------------------------------------------------


def universal_automaton(labels: Sequence[str]) -> TreeAutomaton:
    """An automaton accepting *every* tree over the given label alphabet."""
    letter = {f"q_{a}": a for a in labels}
    states = list(letter)
    pairs = [(p, q) for p in states for q in states]
    return TreeAutomaton.make(
        letter=letter,
        firstchild=pairs,
        nextsibling=pairs,
        leaf_states=states,
        root_states=states,
        rightmost_states=states,
    )


def root_label_automaton(root_label: str, other_labels: Sequence[str]) -> TreeAutomaton:
    """Trees whose root carries ``root_label`` (any shape below)."""
    labels = sorted(set(other_labels) | {root_label})
    letter = {f"q_{a}": a for a in labels}
    states = list(letter)
    pairs = [(p, q) for p in states for q in states]
    return TreeAutomaton.make(
        letter=letter,
        firstchild=pairs,
        nextsibling=pairs,
        leaf_states=states,
        root_states=[f"q_{root_label}"],
        rightmost_states=states,
    )


def caterpillar_automaton() -> TreeAutomaton:
    """The language L of Fact 16: unary "caterpillar" trees t_n.

    Each t_n is a path of n inner nodes; every inner node has exactly two
    children -- the next inner node and one leaf -- except the last, which has
    two leaves.  All nodes carry the label ``a``.
    """
    letter = {"inner": "a", "last": "a", "leaf_left": "a", "leaf_right": "a"}
    return TreeAutomaton.make(
        letter=letter,
        firstchild=[("inner", "inner"), ("last", "inner"), ("leaf_left", "last")],
        nextsibling=[("leaf_right", "inner"), ("leaf_right", "last"), ("leaf_right", "leaf_left")],
        leaf_states=["leaf_left", "leaf_right"],
        root_states=["inner", "last"],
        rightmost_states=["leaf_right"],
    )


def grid_encoding_automaton() -> TreeAutomaton:
    """The language of Theorem 17: a root ``r`` whose subtrees are ``a -> b`` chains."""
    letter = {"root": "r", "a": "a", "b": "b"}
    return TreeAutomaton.make(
        letter=letter,
        firstchild=[("a", "root"), ("b", "a")],
        nextsibling=[("a", "a")],
        leaf_states=["b"],
        root_states=["root"],
        rightmost_states=["a", "b"],
    )
