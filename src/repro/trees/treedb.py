"""Tree databases: ``Treedb(t)`` and ``TreeSchema(A)`` (Section 3.1).

A tree is modelled as a database whose domain is its set of nodes with

* one unary predicate per label,
* the binary *ancestor* order ``anc(x, y)`` -- ``x`` is an ancestor of or
  equal to ``y`` (the paper writes ``x ⊑ y``; recall ``x ⊑ y  iff  x = x∧y``),
* the binary strict *document order* ``doc(x, y)``,
* the binary *closest common ancestor* function ``cca(x, y)``.

Note the deliberately excluded predicates: child, parent, next/previous
sibling and sibling are **not** part of the schema -- adding any of them makes
emptiness undecidable (Section 6.1).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Tuple

from repro.logic.schema import Schema
from repro.logic.structures import Structure
from repro.trees.tree import Tree

ANCESTOR = "anc"
DOCUMENT_ORDER = "doc"
CCA = "cca"
LABEL_PREFIX = "label_"


def label_predicate(label: str) -> str:
    """The unary predicate naming a node label, e.g. ``label_a``."""
    return f"{LABEL_PREFIX}{label}"


def tree_schema(labels: Iterable[str]) -> Schema:
    """``TreeSchema(A)``: labels, ancestor order, document order, cca function."""
    relations: Dict[str, int] = {ANCESTOR: 2, DOCUMENT_ORDER: 2}
    for label in labels:
        relations[label_predicate(label)] = 1
    return Schema(relations=relations, functions={CCA: 2})


def treedb(tree: Tree, labels: Iterable[str] = ()) -> Structure:
    """``Treedb(t)``: the database of a concrete tree.

    Node identities are document-order (preorder) indices.  The label alphabet
    defaults to the labels occurring in the tree but may be given explicitly
    so different trees share a schema.
    """
    alphabet = sorted(set(labels) | set(tree.labels()))
    schema = tree_schema(alphabet)
    nodes = list(tree.preorder())
    ids = list(range(len(nodes)))
    paths = [path for _, path in nodes]
    node_labels = [label for label, _ in nodes]

    relations: Dict[str, set] = {ANCESTOR: set(), DOCUMENT_ORDER: set()}
    for label in alphabet:
        relations[label_predicate(label)] = set()
    for i, label in enumerate(node_labels):
        relations[label_predicate(label)].add((i,))
    for i, j in itertools.product(ids, repeat=2):
        if Tree.is_ancestor(paths[i], paths[j]):
            relations[ANCESTOR].add((i, j))
        if i != j and Tree.document_before(paths[i], paths[j]):
            relations[DOCUMENT_ORDER].add((i, j))

    path_index = {path: i for i, path in enumerate(paths)}
    cca_table: Dict[Tuple[int, ...], int] = {}
    for i, j in itertools.product(ids, repeat=2):
        cca_table[(i, j)] = path_index[Tree.closest_common_ancestor(paths[i], paths[j])]

    return Structure(schema, ids, relations=relations, functions={CCA: cca_table}, validate=False)


def node_index_by_path(tree: Tree) -> Dict[Tuple[int, ...], int]:
    """Mapping from node paths to their document-order indices."""
    return {path: index for index, (_, path) in enumerate(tree.preorder())}
