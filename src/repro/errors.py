"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError`, so callers can
catch a single exception type at API boundaries while still being able to
distinguish schema problems from malformed systems or solver misuse.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


class SchemaError(ReproError):
    """A symbol is used inconsistently with its schema declaration."""


class StructureError(ReproError):
    """A structure violates its schema (arity, domain closure, ...)."""


class FormulaError(ReproError):
    """A formula is malformed or evaluated with an incomplete valuation."""


class ParseError(FormulaError):
    """The textual formula syntax could not be parsed."""


class SystemError_(ReproError):
    """A database-driven system definition is inconsistent."""


class RunError(ReproError):
    """A sequence of configurations is not a valid run of a system."""


class TheoryError(ReproError):
    """A database theory (Fraisse class) is used outside its contract."""


class SolverError(ReproError):
    """The emptiness solver was configured or invoked incorrectly."""


class AutomatonError(ReproError):
    """A word or tree automaton definition is inconsistent."""


class StoreError(ReproError):
    """A result-store backend is misconfigured or its schema is unusable."""


class CertificateError(ReproError):
    """A witness certificate is malformed, unsupported, or fails validation."""
