"""Two-counter (Minsky) machines.

Section 6 of the paper proves its undecidability results by reduction from
the halting problem of two-counter machines.  This module provides the
machine model, a direct interpreter (used to know the ground truth on the
bounded instances exercised by tests and benchmarks), and a few concrete
machines with known behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple


class OpKind(Enum):
    """The instruction kinds of a Minsky machine."""

    INC = "inc"
    DEC = "dec"
    JZ = "jz"
    HALT = "halt"


@dataclass(frozen=True)
class Instruction:
    """One labelled instruction.

    * ``INC counter -> target``: increment and jump.
    * ``DEC counter -> target``: decrement (only enabled when non-zero) and jump.
    * ``JZ counter -> target / fallthrough``: jump to ``target`` when the
      counter is zero, else to ``fallthrough``.
    * ``HALT``.
    """

    kind: OpKind
    counter: Optional[int] = None
    target: Optional[str] = None
    fallthrough: Optional[str] = None


@dataclass(frozen=True)
class CounterMachine:
    """A two-counter machine with labelled instructions."""

    instructions: Tuple[Tuple[str, Instruction], ...]
    initial_label: str

    @classmethod
    def make(cls, instructions: Dict[str, Instruction], initial_label: str) -> "CounterMachine":
        if initial_label not in instructions:
            raise ValueError("unknown initial label")
        for label, instruction in instructions.items():
            for target in (instruction.target, instruction.fallthrough):
                if target is not None and target not in instructions:
                    raise ValueError(f"instruction {label!r} jumps to unknown label {target!r}")
        return cls(tuple(sorted(instructions.items())), initial_label)

    @property
    def instruction_of(self) -> Dict[str, Instruction]:
        return dict(self.instructions)

    @property
    def labels(self) -> List[str]:
        return [label for label, _ in self.instructions]

    def run(
        self, max_steps: int, counters: Tuple[int, int] = (0, 0)
    ) -> Tuple[bool, int, Tuple[int, int]]:
        """Execute the machine for at most ``max_steps`` steps.

        Returns ``(halted, steps_used, final_counters)``.
        """
        table = self.instruction_of
        label = self.initial_label
        values = list(counters)
        for step in range(max_steps):
            instruction = table[label]
            if instruction.kind is OpKind.HALT:
                return True, step, (values[0], values[1])
            if instruction.kind is OpKind.INC:
                values[instruction.counter] += 1
                label = instruction.target
            elif instruction.kind is OpKind.DEC:
                if values[instruction.counter] == 0:
                    # A decrement of zero blocks the machine forever.
                    return False, step, (values[0], values[1])
                values[instruction.counter] -= 1
                label = instruction.target
            elif instruction.kind is OpKind.JZ:
                if values[instruction.counter] == 0:
                    label = instruction.target
                else:
                    label = instruction.fallthrough
        return False, max_steps, (values[0], values[1])

    def halts_within(self, max_steps: int) -> bool:
        halted, _, _ = self.run(max_steps)
        return halted

    def max_counter_value(self, max_steps: int) -> int:
        """The largest counter value seen within a bounded execution."""
        table = self.instruction_of
        label = self.initial_label
        values = [0, 0]
        best = 0
        for _ in range(max_steps):
            instruction = table[label]
            if instruction.kind is OpKind.HALT:
                break
            if instruction.kind is OpKind.INC:
                values[instruction.counter] += 1
                best = max(best, values[instruction.counter])
                label = instruction.target
            elif instruction.kind is OpKind.DEC:
                if values[instruction.counter] == 0:
                    break
                values[instruction.counter] -= 1
                label = instruction.target
            else:
                label = (
                    instruction.target
                    if values[instruction.counter] == 0
                    else instruction.fallthrough
                )
        return best


def inc(counter: int, target: str) -> Instruction:
    return Instruction(OpKind.INC, counter=counter, target=target)


def dec(counter: int, target: str) -> Instruction:
    return Instruction(OpKind.DEC, counter=counter, target=target)


def jz(counter: int, target: str, fallthrough: str) -> Instruction:
    return Instruction(OpKind.JZ, counter=counter, target=target, fallthrough=fallthrough)


def halt() -> Instruction:
    return Instruction(OpKind.HALT)


def counting_machine(n: int) -> CounterMachine:
    """A machine that counts to ``n`` on counter 0, copies it to counter 1, halts.

    It halts after Theta(n) steps and its counters reach ``n`` -- a convenient
    family for the bounded undecidability demonstrations (the encoded system
    needs a word / tree of size about ``n`` to accept).
    """
    instructions: Dict[str, Instruction] = {}
    for i in range(n):
        instructions[f"up{i}"] = inc(0, f"up{i + 1}" if i + 1 < n else "copy")
    if n == 0:
        instructions["copy"] = jz(0, "done", "move")
    else:
        instructions["copy"] = jz(0, "done", "move")
    instructions["move"] = dec(0, "bump")
    instructions["bump"] = inc(1, "copy")
    instructions["done"] = halt()
    initial = "up0" if n > 0 else "copy"
    return CounterMachine.make(instructions, initial)


def diverging_machine() -> CounterMachine:
    """A machine that never halts (it increments counter 0 forever)."""
    return CounterMachine.make({"loop": inc(0, "loop"), "stop": halt()}, "loop")


def blocked_machine() -> CounterMachine:
    """A machine that blocks immediately (decrement of a zero counter)."""
    return CounterMachine.make({"start": dec(0, "start"), "stop": halt()}, "start")
