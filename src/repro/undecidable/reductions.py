"""The undecidability reductions of Section 6, as bounded demonstrations.

Each construction turns a two-counter machine ``M`` into a database-driven
system ``S_M`` over a schema that *extends* the decidable ones (successor on
word positions for Fact 15; the sibling relation plus closest common ancestor
for Fact 16; data tree patterns for Theorem 17), such that ``S_M`` has an
accepting run driven by a suitable database iff ``M`` halts.

Because these problems are undecidable, the library does not (and cannot)
ship a decision procedure for them; instead the constructions are
*demonstrated*: the reduction is materialised and checked on bounded
databases with the explicit simulator of :mod:`repro.systems.simulate`,
which is exactly how the benchmarks exhibit the blow-up at the decidability
frontier (experiment E8).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.logic.schema import Schema
from repro.logic.structures import Structure
from repro.systems.dds import DatabaseDrivenSystem
from repro.systems.simulate import find_accepting_run
from repro.undecidable.counter_machines import CounterMachine, OpKind

SUCCESSOR_SCHEMA = Schema.relational(succ=2)
SIBLING_CCA_SCHEMA = Schema(relations={"sibling": 2}, functions={"cca": 2})


# -- Fact 15: unary words with successor ---------------------------------------------------------


def successor_word_database(length: int) -> Structure:
    """The unary word of the given length with the successor relation."""
    positions = list(range(length))
    succ = {(i, i + 1) for i in range(length - 1)}
    return Structure(SUCCESSOR_SCHEMA, positions, relations={"succ": succ}, validate=False)


def fact15_system(machine: CounterMachine) -> DatabaseDrivenSystem:
    """The Fact 15 encoding: counters as positions of a successor word.

    Registers ``c0`` and ``c1`` hold one word position per counter; the fixed
    register ``z`` marks the zero position.  Increment moves a counter
    register one successor step to the right, decrement one step to the left,
    and a zero test compares the register with ``z``.
    """
    registers = ["c0", "c1", "z"]
    keep = {r: f"{r}_old = {r}_new" for r in registers}

    def keep_except(*moved: str) -> str:
        return " & ".join(keep[r] for r in registers if r not in moved)

    transitions: List[Tuple[str, str, str]] = []
    transitions.append(
        ("boot", " & ".join([keep["z"], "c0_new = z_new", "c1_new = z_new"]), machine.initial_label)
    )
    for label, instruction in machine.instructions:
        if instruction.kind is OpKind.HALT:
            continue
        counter = f"c{instruction.counter}"
        if instruction.kind is OpKind.INC:
            guard = f"succ({counter}_old, {counter}_new) & " + keep_except(counter)
            transitions.append((label, guard, instruction.target))
        elif instruction.kind is OpKind.DEC:
            guard = (
                f"!({counter}_old = z_old) & succ({counter}_new, {counter}_old) & "
                + keep_except(counter)
            )
            transitions.append((label, guard, instruction.target))
        elif instruction.kind is OpKind.JZ:
            zero_guard = f"{counter}_old = z_old & " + keep_except()
            nonzero_guard = f"!({counter}_old = z_old) & " + keep_except()
            transitions.append((label, zero_guard, instruction.target))
            transitions.append((label, nonzero_guard, instruction.fallthrough))

    states = ["boot"] + machine.labels
    accepting = [
        label for label, instruction in machine.instructions if instruction.kind is OpKind.HALT
    ]
    return DatabaseDrivenSystem.build(
        schema=SUCCESSOR_SCHEMA,
        registers=registers,
        states=states,
        initial="boot",
        accepting=accepting,
        transitions=transitions,
    )


def demonstrate_fact15(
    machine: CounterMachine, word_length: int, max_steps: Optional[int] = None
) -> bool:
    """Does the Fact 15 system accept over a successor word of the given length?

    This is the *bounded* question; it answers True exactly when the machine
    halts without any counter exceeding ``word_length - 1``.
    """
    system = fact15_system(machine)
    database = successor_word_database(word_length)
    return find_accepting_run(system, database, max_steps=max_steps) is not None


# -- Fact 16: the sibling relation plus closest common ancestor ---------------


def caterpillar_database(height: int) -> Structure:
    """The database of the tree ``t_height`` of Fact 16 (sibling + cca only).

    The tree is a spine of ``height`` inner nodes; every spine node has two
    children: the next spine node and a leaf (the last spine node has two
    leaves).  Node ``(i, "spine")`` is the spine node at depth ``i`` and
    ``(i, "leaf")`` its leaf sibling.
    """
    if height < 1:
        raise ValueError("the caterpillar needs height >= 1")
    nodes: List[Tuple[int, str]] = [(0, "spine")]
    for depth in range(1, height + 1):
        nodes.append((depth, "spine"))
        nodes.append((depth, "leaf"))

    def parent(node: Tuple[int, str]) -> Optional[Tuple[int, str]]:
        depth, kind = node
        if depth == 0:
            return None
        return (depth - 1, "spine")

    def ancestors(node: Tuple[int, str]) -> List[Tuple[int, str]]:
        chain = [node]
        while parent(chain[-1]) is not None:
            chain.append(parent(chain[-1]))
        return chain

    sibling = set()
    for depth in range(1, height + 1):
        sibling.add(((depth, "spine"), (depth, "leaf")))
        sibling.add(((depth, "leaf"), (depth, "spine")))

    cca: Dict[Tuple[Tuple[int, str], Tuple[int, str]], Tuple[int, str]] = {}
    for a in nodes:
        for b in nodes:
            chain_a = ancestors(a)
            chain_b = set(ancestors(b))
            meet = next(n for n in chain_a if n in chain_b)
            cca[(a, b)] = meet

    return Structure(
        SIBLING_CCA_SCHEMA,
        nodes,
        relations={"sibling": sibling},
        functions={"cca": cca},
        validate=False,
    )


def fact16_system(machine: CounterMachine) -> DatabaseDrivenSystem:
    """The Fact 16 encoding: counters as depths in the caterpillar tree.

    Each counter is a register holding a spine node; its value is the node's
    depth.  Increment uses an auxiliary register and the guard
    ``x_old = cca(x_new, y_new) & sibling(x_new, y_new)`` which forces
    ``x_new`` to be a child of ``x_old``; decrement swaps old and new; a zero
    test compares against the fixed register ``z`` (the root).
    """
    registers = ["c0", "c1", "z", "aux"]
    keep = {r: f"{r}_old = {r}_new" for r in registers}

    def keep_except(*moved: str) -> str:
        return " & ".join(keep[r] for r in registers if r not in moved)

    transitions: List[Tuple[str, str, str]] = []
    transitions.append(
        ("boot", " & ".join([keep["z"], "c0_new = z_new", "c1_new = z_new"]), machine.initial_label)
    )
    for label, instruction in machine.instructions:
        if instruction.kind is OpKind.HALT:
            continue
        counter = f"c{instruction.counter}"
        if instruction.kind is OpKind.INC:
            guard = (
                f"{counter}_old = cca({counter}_new, aux_new) & "
                f"sibling({counter}_new, aux_new) & " + keep_except(counter, "aux")
            )
            transitions.append((label, guard, instruction.target))
        elif instruction.kind is OpKind.DEC:
            guard = (
                f"!({counter}_old = z_old) & "
                f"{counter}_new = cca({counter}_old, aux_new) & "
                f"sibling({counter}_old, aux_new) & " + keep_except(counter, "aux")
            )
            transitions.append((label, guard, instruction.target))
        elif instruction.kind is OpKind.JZ:
            zero_guard = f"{counter}_old = z_old & " + keep_except()
            nonzero_guard = f"!({counter}_old = z_old) & " + keep_except()
            transitions.append((label, zero_guard, instruction.target))
            transitions.append((label, nonzero_guard, instruction.fallthrough))

    states = ["boot"] + machine.labels
    accepting = [
        label for label, instruction in machine.instructions if instruction.kind is OpKind.HALT
    ]
    return DatabaseDrivenSystem.build(
        schema=SIBLING_CCA_SCHEMA,
        registers=registers,
        states=states,
        initial="boot",
        accepting=accepting,
        transitions=transitions,
    )


def demonstrate_fact16(
    machine: CounterMachine, height: int, max_steps: Optional[int] = None
) -> bool:
    """Does the Fact 16 system accept over the caterpillar of the given height?"""
    system = fact16_system(machine)
    database = caterpillar_database(height)
    return find_accepting_run(system, database, max_steps=max_steps) is not None


# -- Theorem 17: data tree patterns -------------------------------------------


def pattern_chain_database(length: int) -> Structure:
    """The Theorem 17 tree: a root ``r`` with ``length`` subtrees ``a_i -> b_i``.

    Data values link consecutive subtrees: the ``b`` node of subtree ``i``
    shares its value with the ``a`` node of subtree ``i+1``, which is how the
    encoded counter machine steps from one subtree to the next.  The schema
    uses the descendant order, the labels and the data-equality relation
    ``sim`` (the tree-pattern formulas of Section 6.3 only need these).
    """
    schema = Schema.relational(anc=2, sim=2, label_r=1, label_a=1, label_b=1)
    nodes: List[object] = ["root"]
    values: Dict[object, int] = {"root": -1}
    anc = {("root", "root")}
    labels = {
        "label_r": {("root",)},
        "label_a": set(),
        "label_b": set(),
    }
    for i in range(length):
        a, b = f"a{i}", f"b{i}"
        nodes.extend([a, b])
        labels["label_a"].add((a,))
        labels["label_b"].add((b,))
        anc |= {("root", a), ("root", b), (a, b), (a, a), (b, b)}
        values[a] = i
        values[b] = i + 1
    sim = {(x, y) for x in nodes for y in nodes if values[x] == values[y]}
    return Structure(
        schema,
        nodes,
        relations={"anc": anc, "sim": sim, **labels},
        validate=False,
    )


def theorem17_system(machine: CounterMachine) -> DatabaseDrivenSystem:
    """A data-tree-pattern encoding of a counter machine (Theorem 17, simplified).

    Counters are registers holding ``a`` nodes of the chain database; the
    counter's value is the index of the subtree.  Increment asks -- with a
    tree-pattern-style existential guard -- for another subtree whose ``a``
    node shares its data value with the current subtree's ``b`` node.  The
    guards are boolean combinations of (distinct-variable) existential
    patterns, which is exactly the feature Theorem 17 shows to be undecidable.
    """
    schema = Schema.relational(anc=2, sim=2, label_r=1, label_a=1, label_b=1)
    registers = ["c0", "c1", "z"]
    keep = {r: f"{r}_old = {r}_new" for r in registers}

    def keep_except(*moved: str) -> str:
        return " & ".join(keep[r] for r in registers if r not in moved)

    def step_guard(counter: str, forward: bool) -> str:
        source = f"{counter}_old" if forward else f"{counter}_new"
        target = f"{counter}_new" if forward else f"{counter}_old"
        return (
            f"exists!= u, v . (label_a({source}) & label_a({target}) & label_b(u) "
            f"& anc({source}, u) & sim(u, {target}) & anc(v, {target}) & label_r(v)) & "
            + keep_except(counter)
        )

    transitions: List[Tuple[str, str, str]] = []
    transitions.append(
        ("boot", " & ".join([keep["z"], "c0_new = z_new", "c1_new = z_new", "label_a(z_new)"]),
         machine.initial_label)
    )
    for label, instruction in machine.instructions:
        if instruction.kind is OpKind.HALT:
            continue
        counter = f"c{instruction.counter}"
        if instruction.kind is OpKind.INC:
            transitions.append((label, step_guard(counter, True), instruction.target))
        elif instruction.kind is OpKind.DEC:
            transitions.append((label, step_guard(counter, False), instruction.target))
        elif instruction.kind is OpKind.JZ:
            transitions.append(
                (label, f"sim({counter}_old, z_old) & " + keep_except(), instruction.target)
            )
            transitions.append(
                (label, f"!(sim({counter}_old, z_old)) & " + keep_except(), instruction.fallthrough)
            )

    states = ["boot"] + machine.labels
    accepting = [
        label for label, instruction in machine.instructions if instruction.kind is OpKind.HALT
    ]
    return DatabaseDrivenSystem.build(
        schema=schema,
        registers=registers,
        states=states,
        initial="boot",
        accepting=accepting,
        transitions=transitions,
        allow_existential_guards=True,
    )


def demonstrate_theorem17(
    machine: CounterMachine, chain_length: int, max_steps: Optional[int] = None
) -> bool:
    """Does the Theorem 17 system accept over the chain of the given length?"""
    system = theorem17_system(machine)
    database = pattern_chain_database(chain_length)
    return find_accepting_run(system, database, max_steps=max_steps) is not None
