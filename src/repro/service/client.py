"""An HTTP client for the ``repro serve`` front door.

:class:`ServiceClient` is the supported way to drive the service from
Python: it speaks the versioned ``/v1`` API, reuses one keep-alive
connection across calls (``http.client`` under the hood, nothing beyond the
stdlib), attaches the shared-secret auth token when one is configured, and
retries load-shed responses honouring the server's ``Retry-After``.

Since the distributed tier, the same client is also the transport for the
keyspace wire protocol: :class:`HTTPBackend` implements the
:class:`~repro.service.backends.StoreBackend` contract over a
:class:`ServiceClient` pointed at a ``repro store serve`` keyspace server,
so a fleet of runners shares one remote verdict cache through the exact
interface the local SQLite store uses.

The module-level :func:`jobs_to_wire` / :func:`post_jobs` helpers are the
functional face of the same client; ``repro.workloads`` re-exports them --
now as deprecated shims -- for backwards compatibility with pre-``/v1``
scripts.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
import urllib.parse
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import StoreError
from repro.service.backends import ROW_DEFAULTS, ROW_FIELDS, ROW_SCHEMA_VERSION
from repro.service.jobs import VerificationJob

#: Default per-request socket timeout.  Batch verification is slow work.
DEFAULT_TIMEOUT = 600.0

#: Default retry budget for retryable statuses (429 overload, 503 cap).
DEFAULT_RETRIES = 3

#: Base of the exponential backoff between retries (doubles per attempt).
DEFAULT_BACKOFF_SECONDS = 0.25

#: Ceiling on any single backoff sleep, however many attempts have failed.
DEFAULT_BACKOFF_MAX_SECONDS = 5.0

#: Default total wall-clock budget for one logical request across all its
#: retries; when it would be exceeded, the client gives up immediately.
DEFAULT_RETRY_DEADLINE_SECONDS = 60.0

#: Statuses worth retrying: the server sheds (429), refuses the connection
#: (503 too-many-connections) or drains (503 draining) under load, and all
#: of them advertise Retry-After.
RETRYABLE_STATUSES = frozenset({429, 503})


class ServiceError(RuntimeError):
    """A non-2xx response from the service.

    Carries the HTTP ``status``, the machine ``code`` from the server's
    error envelope (``{"error": {"code", "message", "detail"}}``), and the
    decoded ``payload`` so callers can branch without string-matching.
    """

    def __init__(self, method: str, url: str, status: int, payload: Any) -> None:
        self.status = status
        self.payload = payload
        envelope = payload.get("error") if isinstance(payload, dict) else None
        if isinstance(envelope, dict):
            self.code = envelope.get("code", "unknown")
            message = envelope.get("message", "")
        else:  # not the envelope (a proxy, or a pre-envelope server)
            self.code = "unknown"
            message = str(payload)
        super().__init__(f"{method} {url} failed with {status} [{self.code}]: {message}")


def jobs_to_wire(
    jobs: Sequence[VerificationJob],
    wait: bool = True,
    include_fingerprints: bool = True,
) -> Dict[str, object]:
    """The ``POST /v1/jobs`` batch payload for ``jobs`` (see ``repro serve``).

    With ``include_fingerprints`` each spec carries the client-computed
    fingerprint, which the server re-derives and verifies -- the end-to-end
    guard that both sides serialize canonically.
    """
    specs = []
    for job in jobs:
        spec = dict(job.to_spec())
        if include_fingerprints:
            spec["fingerprint"] = job.fingerprint
        specs.append(spec)
    return {"jobs": specs, "wait": wait}


class ServiceClient:
    """A keep-alive client for one ``repro serve`` endpoint.

    Parameters
    ----------
    base_url:
        The server root, e.g. ``http://127.0.0.1:8080``.  Paths are joined
        under its ``/v1`` prefix automatically.
    auth_token:
        Shared secret sent as ``Authorization: Bearer <token>`` when the
        server runs with ``--auth-token``.
    timeout:
        Per-request socket timeout in seconds.
    retries:
        How many times a load-shed response (429/503) is retried before
        :class:`ServiceError` is raised.  Retrying a ``POST /v1/jobs`` is
        safe: verdicts are deterministic and the server dedups by
        fingerprint, so a repeated submission never runs work twice.
    backoff_base / backoff_max:
        Exponential backoff between retries: attempt *n* waits
        ``min(backoff_max, max(Retry-After, backoff_base * 2**(n-1)))``
        seconds, randomized down by up to ``jitter`` so synchronized
        clients decorrelate.  The server's ``Retry-After`` acts as a floor,
        never a cap -- repeated shedding backs off further than the server's
        fixed hint.
    jitter:
        Fraction in ``[0, 1]`` of each delay that may be randomly shaved.
    retry_deadline:
        Total wall-clock budget in seconds for one logical request across
        all its retries; once sleeping again would exceed it the client
        raises instead of sleeping.  ``None`` disables the budget.
    keep_alive:
        When False, a fresh connection is opened per request (the
        close-per-request baseline the load-test benchmark compares
        against).  Default True: one persistent connection is reused.

    Usable as a context manager; :meth:`close` drops the connection.
    """

    def __init__(
        self,
        base_url: str,
        auth_token: Optional[str] = None,
        timeout: float = DEFAULT_TIMEOUT,
        retries: int = DEFAULT_RETRIES,
        backoff_base: float = DEFAULT_BACKOFF_SECONDS,
        backoff_max: float = DEFAULT_BACKOFF_MAX_SECONDS,
        jitter: float = 0.5,
        retry_deadline: Optional[float] = DEFAULT_RETRY_DEADLINE_SECONDS,
        keep_alive: bool = True,
        api_version: str = "v1",
    ) -> None:
        if backoff_base < 0 or backoff_max < 0:
            raise ValueError("backoff seconds must be >= 0")
        if not 0 <= jitter <= 1:
            raise ValueError("jitter must be within [0, 1]")
        if retry_deadline is not None and retry_deadline <= 0:
            raise ValueError("retry_deadline must be positive when set")
        parsed = urllib.parse.urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme {parsed.scheme!r} (http only)")
        if not parsed.hostname:
            raise ValueError(f"no host in base_url {base_url!r}")
        self._host = parsed.hostname
        self._port = parsed.port or 80
        self._auth_token = auth_token
        self._timeout = timeout
        self._retries = retries
        self._backoff_base = backoff_base
        self._backoff_max = backoff_max
        self._jitter = jitter
        self._retry_deadline = retry_deadline
        self._keep_alive = keep_alive
        self._prefix = f"/{api_version}" if api_version else ""
        self._connection: Optional[http.client.HTTPConnection] = None

    # -- connection management ---------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- request core ------------------------------------------------------------

    def _headers(self, has_body: bool, extra: Optional[Mapping[str, str]] = None) -> Dict[str, str]:
        headers: Dict[str, str] = {}
        if has_body:
            headers["Content-Type"] = "application/json"
        if self._auth_token is not None:
            headers["Authorization"] = f"Bearer {self._auth_token}"
        if not self._keep_alive:
            headers["Connection"] = "close"
        if extra:
            headers.update(extra)
        return headers

    def _once(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        extra_headers: Optional[Mapping[str, str]] = None,
    ) -> Tuple[int, Any, Any]:
        """One request/response over the (possibly reused) connection."""
        headers = self._headers(body is not None, extra_headers)
        connection = self._connect()
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        except (http.client.RemoteDisconnected, BrokenPipeError, ConnectionResetError):
            # A stale keep-alive connection (server idle-timeout won the
            # race, or it restarted).  Drop it and retry once on a fresh
            # connection -- safe for this API: POST /v1/jobs is effectively
            # idempotent (deterministic verdicts, fingerprint dedup).
            self.close()
            connection = self._connect()
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        if not self._keep_alive or response.will_close:
            self.close()
        content_type = response.getheader("Content-Type", "")
        if "json" in content_type and raw:
            payload: Any = json.loads(raw.decode("utf-8"))
        else:
            payload = raw.decode("utf-8", "replace")
        return response.status, payload, response

    def _compute_delay(
        self,
        attempt: int,
        retry_after: Optional[str],
        rng: Optional[random.Random] = None,
    ) -> float:
        """Backoff before retry ``attempt`` (1-based), honouring Retry-After.

        The exponential curve ``backoff_base * 2**(attempt-1)`` is floored
        by the server's ``Retry-After`` hint, capped at ``backoff_max`` and
        randomized down by up to ``jitter``.
        """
        try:
            floor = float(retry_after) if retry_after else 0.0
        except ValueError:
            floor = 0.0
        delay = min(self._backoff_max, max(floor, self._backoff_base * 2.0 ** (attempt - 1)))
        draw = (rng or random).random()
        return delay * (1 - self._jitter * draw)

    def request(
        self,
        method: str,
        path: str,
        payload: Any = None,
        headers: Optional[Mapping[str, str]] = None,
    ) -> Any:
        """Issue one API call (path relative to ``/v1``), with shed retries.

        Returns the decoded JSON body on 2xx; raises :class:`ServiceError`
        otherwise.  429/503 responses are retried up to ``retries`` times
        with exponential backoff (jittered, floored by the server's
        ``Retry-After``), all within the total ``retry_deadline`` budget.
        ``headers`` adds per-call headers (e.g. the keyspace protocol's
        ``If-Match`` preconditions) on top of the standard set.
        """
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        url = self._prefix + path
        deadline = (
            time.monotonic() + self._retry_deadline if self._retry_deadline is not None else None
        )
        attempt = 0
        while True:
            status, decoded, response = self._once(method, url, body, headers)
            if status < 400:
                return decoded
            if status in RETRYABLE_STATUSES and attempt < self._retries:
                attempt += 1
                delay = self._compute_delay(attempt, response.getheader("Retry-After"))
                if deadline is None or time.monotonic() + delay <= deadline:
                    time.sleep(delay)
                    continue
                # Sleeping again would blow the total budget: fail now with
                # the response in hand rather than later with nothing new.
            raise ServiceError(method, f"http://{self._host}:{self._port}{url}", status, decoded)

    # -- the API surface ---------------------------------------------------------

    @property
    def base_url(self) -> str:
        return f"http://{self._host}:{self._port}"

    def discovery(self) -> Dict[str, Any]:
        """``GET /v1/``: API version, node role, schema version, routes."""
        return self.request("GET", "/")

    def healthz(self) -> Dict[str, Any]:
        return self.request("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        return self.request("GET", "/stats")

    def metrics(self) -> str:
        """The raw Prometheus text exposition from ``GET /v1/metrics``."""
        return self.request("GET", "/metrics")

    def submit_job(self, job: VerificationJob, include_fingerprint: bool = True) -> Dict[str, Any]:
        """Decide one job; returns the single-job response envelope."""
        spec = dict(job.to_spec())
        if include_fingerprint:
            spec["fingerprint"] = job.fingerprint
        return self.request("POST", "/jobs", spec)

    def submit_batch(
        self,
        jobs: Sequence[VerificationJob],
        wait: bool = True,
        include_fingerprints: bool = True,
    ) -> Dict[str, Any]:
        """Submit a batch; the full report when ``wait``, else the 202 envelope."""
        return self.request("POST", "/jobs", jobs_to_wire(jobs, wait, include_fingerprints))

    def lookup(self, fingerprint: str) -> Dict[str, Any]:
        """The stored verdict for ``fingerprint`` (404 -> ServiceError)."""
        return self.request("GET", f"/jobs/{fingerprint}")

    def trace(self, fingerprint: str) -> Dict[str, Any]:
        """The recorded solver trace for ``fingerprint`` (404 -> ServiceError).

        Traces only exist for jobs submitted with ``trace=True``; the
        ``"trace"`` field of the response is the stored recorder dict that
        :func:`repro.telemetry.chrome_trace` converts for Perfetto.
        """
        return self.request("GET", f"/jobs/{fingerprint}/trace")

    def witness(self, fingerprint: str) -> Dict[str, Any]:
        """The stored witness certificate for ``fingerprint`` (404 -> ServiceError).

        Certificates only exist for nonempty verdicts of jobs submitted
        with ``certificate=True``; the ``"certificate"`` field is the
        encoded form that :func:`repro.certify.decode_certificate` and
        :func:`repro.certify.validate_certificate` consume.
        """
        return self.request("GET", f"/jobs/{fingerprint}/witness")

    def batch_status(self, batch_id: str) -> Dict[str, Any]:
        return self.request("GET", f"/batch/{batch_id}")


def post_jobs(
    base_url: str,
    jobs: Sequence[VerificationJob],
    wait: bool = True,
    include_fingerprints: bool = True,
    timeout: float = DEFAULT_TIMEOUT,
    auth_token: Optional[str] = None,
) -> Dict[str, object]:
    """POST a batch of jobs to a running ``repro serve`` endpoint.

    A one-shot convenience over :class:`ServiceClient` (connect, submit,
    close).  Returns the decoded JSON response (the full batch report when
    ``wait``, the ``202`` acceptance envelope otherwise); raises
    :class:`ServiceError` -- a ``RuntimeError`` subclass, so pre-``/v1``
    callers that caught that still work -- on a non-2xx response.
    """
    with ServiceClient(base_url, auth_token=auth_token, timeout=timeout) as client:
        return client.submit_batch(jobs, wait=wait, include_fingerprints=include_fingerprints)


class HTTPBackend:
    """The networked keyspace: :class:`StoreBackend` over the wire protocol.

    Implements the exact contract of
    :class:`~repro.service.backends.StoreBackend` by translating each
    keyspace operation to one HTTP call against a ``repro store serve``
    endpoint (see ``docs/keyspace-protocol.md``), so a
    :class:`~repro.service.store.ResultStore` -- and therefore a whole
    ``repro serve`` runner -- can sit on a remote shared verdict cache with
    no store-layer changes.

    Multi-writer semantics: plain :meth:`put` is last-write-wins (safe for
    verdicts, which are deterministic per fingerprint);
    :meth:`put_if_absent` maps to ``If-Match: *`` and
    :meth:`compare_and_put` to ``If-Match: <created_at>``, both surfacing
    the server's ``412 precondition-failed`` as a False return.  On first
    contact the backend reads the server's discovery document and refuses a
    keyspace whose row schema is *newer* than this build's
    (:data:`~repro.service.backends.ROW_SCHEMA_VERSION`), mirroring the
    SQLite backend's future-schema refusal.

    One lock serializes calls: the underlying keep-alive connection is not
    thread-safe, and backends are promised to be.
    """

    def __init__(
        self,
        base_url: str,
        token: Optional[str] = None,
        timeout: float = 30.0,
        retries: int = DEFAULT_RETRIES,
    ) -> None:
        self._base_url = base_url.rstrip("/")
        self._client = ServiceClient(
            self._base_url,
            auth_token=token,
            timeout=timeout,
            retries=retries,
            retry_deadline=max(timeout, 1.0),
        )
        self._lock = threading.RLock()
        self._schema_version: Optional[int] = None

    @property
    def name(self) -> str:
        # The URL already names the scheme, unlike sqlite's bare path.
        return self._base_url

    @property
    def schema_version(self) -> int:
        with self._lock:
            self._check_schema()
            assert self._schema_version is not None
            return self._schema_version

    def _check_schema(self) -> None:
        """First-contact handshake: refuse a newer-schema server (cached)."""
        if self._schema_version is not None:
            return
        try:
            document = self._client.discovery()
        except ServiceError as error:
            raise StoreError(
                f"keyspace server at {self._base_url} refused discovery: {error}"
            ) from error
        remote = document.get("store", {}).get("schema_version")
        if not isinstance(remote, int):
            raise StoreError(
                f"keyspace server at {self._base_url} did not advertise a "
                "store schema version; not a repro keyspace endpoint?"
            )
        if remote > ROW_SCHEMA_VERSION:
            raise StoreError(
                f"keyspace server at {self._base_url} has row schema version "
                f"{remote}, newer than this build's {ROW_SCHEMA_VERSION}; "
                "refusing to touch it"
            )
        self._schema_version = remote

    def _call(
        self,
        method: str,
        path: str,
        payload: Any = None,
        headers: Optional[Mapping[str, str]] = None,
    ) -> Any:
        with self._lock:
            self._check_schema()
            try:
                return self._client.request(method, path, payload, headers=headers)
            except ServiceError:
                raise
            except OSError as error:
                raise StoreError(
                    f"keyspace server at {self._base_url} unreachable: {error}"
                ) from error

    @staticmethod
    def _normalize(row: Mapping[str, Any]) -> Dict[str, Any]:
        # The wire carries full-shape rows so every backend behind the
        # server returns the same field set (the SQLite column behaviour).
        return {field: row.get(field, ROW_DEFAULTS.get(field)) for field in ROW_FIELDS}

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        try:
            return self._call("GET", f"/keys/{key}")["row"]
        except ServiceError as error:
            if error.status == 404:
                return None
            raise StoreError(f"keyspace get({key!r}) failed: {error}") from error

    def put(self, key: str, row: Mapping[str, Any]) -> None:
        try:
            self._call("PUT", f"/keys/{key}", self._normalize(row))
        except ServiceError as error:
            raise StoreError(f"keyspace put({key!r}) failed: {error}") from error

    def put_if_absent(self, key: str, row: Mapping[str, Any]) -> bool:
        try:
            self._call(
                "PUT", f"/keys/{key}", self._normalize(row), headers={"If-Match": "*"}
            )
            return True
        except ServiceError as error:
            if error.status == 412:
                return False
            raise StoreError(f"keyspace put_if_absent({key!r}) failed: {error}") from error

    def compare_and_put(
        self, key: str, row: Mapping[str, Any], expected_created_at: float
    ) -> bool:
        try:
            self._call(
                "PUT",
                f"/keys/{key}",
                self._normalize(row),
                headers={"If-Match": repr(float(expected_created_at))},
            )
            return True
        except ServiceError as error:
            if error.status == 412:
                return False
            raise StoreError(f"keyspace compare_and_put({key!r}) failed: {error}") from error

    def delete(self, key: str) -> bool:
        try:
            return bool(self._call("DELETE", f"/keys/{key}")["deleted"])
        except ServiceError as error:
            raise StoreError(f"keyspace delete({key!r}) failed: {error}") from error

    def keys(self) -> List[str]:
        return list(self._call("GET", "/keys")["keys"])

    def count(self) -> int:
        return int(self._call("GET", "/count")["count"])

    def clear(self) -> int:
        return int(self._call("POST", "/clear")["removed"])

    def oldest_keys(self, limit: int) -> List[str]:
        return list(self._call("GET", f"/scan/oldest?limit={int(limit)}")["keys"])

    def expired_keys(self, cutoff: float) -> List[str]:
        quoted = urllib.parse.quote(repr(float(cutoff)))
        return list(self._call("GET", f"/scan/expired?cutoff={quoted}")["keys"])

    def rows(self) -> Iterator[Dict[str, Any]]:
        yield from self._call("GET", "/rows")["rows"]

    def checkpoint(self) -> None:
        self._call("POST", "/checkpoint")

    def close(self) -> None:
        with self._lock:
            self._client.close()
