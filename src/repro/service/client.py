"""An HTTP client for the ``repro serve`` front door.

:class:`ServiceClient` is the supported way to drive the service from
Python: it speaks the versioned ``/v1`` API, reuses one keep-alive
connection across calls (``http.client`` under the hood, nothing beyond the
stdlib), attaches the shared-secret auth token when one is configured, and
retries load-shed responses honouring the server's ``Retry-After``.

The module-level :func:`jobs_to_wire` / :func:`post_jobs` helpers are the
functional face of the same client; ``repro.workloads`` re-exports them for
backwards compatibility with pre-``/v1`` scripts.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.parse
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.service.jobs import VerificationJob

#: Default per-request socket timeout.  Batch verification is slow work.
DEFAULT_TIMEOUT = 600.0

#: Default retry budget for retryable statuses (429 overload, 503 cap).
DEFAULT_RETRIES = 3

#: Base of the exponential backoff between retries (doubles per attempt).
DEFAULT_BACKOFF_SECONDS = 0.25

#: Ceiling on any single backoff sleep, however many attempts have failed.
DEFAULT_BACKOFF_MAX_SECONDS = 5.0

#: Default total wall-clock budget for one logical request across all its
#: retries; when it would be exceeded, the client gives up immediately.
DEFAULT_RETRY_DEADLINE_SECONDS = 60.0

#: Statuses worth retrying: the server sheds (429), refuses the connection
#: (503 too-many-connections) or drains (503 draining) under load, and all
#: of them advertise Retry-After.
RETRYABLE_STATUSES = frozenset({429, 503})


class ServiceError(RuntimeError):
    """A non-2xx response from the service.

    Carries the HTTP ``status``, the machine ``code`` from the server's
    error envelope (``{"error": {"code", "message", "detail"}}``), and the
    decoded ``payload`` so callers can branch without string-matching.
    """

    def __init__(self, method: str, url: str, status: int, payload: Any) -> None:
        self.status = status
        self.payload = payload
        envelope = payload.get("error") if isinstance(payload, dict) else None
        if isinstance(envelope, dict):
            self.code = envelope.get("code", "unknown")
            message = envelope.get("message", "")
        else:  # not the envelope (a proxy, or a pre-envelope server)
            self.code = "unknown"
            message = str(payload)
        super().__init__(f"{method} {url} failed with {status} [{self.code}]: {message}")


def jobs_to_wire(
    jobs: Sequence[VerificationJob],
    wait: bool = True,
    include_fingerprints: bool = True,
) -> Dict[str, object]:
    """The ``POST /v1/jobs`` batch payload for ``jobs`` (see ``repro serve``).

    With ``include_fingerprints`` each spec carries the client-computed
    fingerprint, which the server re-derives and verifies -- the end-to-end
    guard that both sides serialize canonically.
    """
    specs = []
    for job in jobs:
        spec = dict(job.to_spec())
        if include_fingerprints:
            spec["fingerprint"] = job.fingerprint
        specs.append(spec)
    return {"jobs": specs, "wait": wait}


class ServiceClient:
    """A keep-alive client for one ``repro serve`` endpoint.

    Parameters
    ----------
    base_url:
        The server root, e.g. ``http://127.0.0.1:8080``.  Paths are joined
        under its ``/v1`` prefix automatically.
    auth_token:
        Shared secret sent as ``Authorization: Bearer <token>`` when the
        server runs with ``--auth-token``.
    timeout:
        Per-request socket timeout in seconds.
    retries:
        How many times a load-shed response (429/503) is retried before
        :class:`ServiceError` is raised.  Retrying a ``POST /v1/jobs`` is
        safe: verdicts are deterministic and the server dedups by
        fingerprint, so a repeated submission never runs work twice.
    backoff_base / backoff_max:
        Exponential backoff between retries: attempt *n* waits
        ``min(backoff_max, max(Retry-After, backoff_base * 2**(n-1)))``
        seconds, randomized down by up to ``jitter`` so synchronized
        clients decorrelate.  The server's ``Retry-After`` acts as a floor,
        never a cap -- repeated shedding backs off further than the server's
        fixed hint.
    jitter:
        Fraction in ``[0, 1]`` of each delay that may be randomly shaved.
    retry_deadline:
        Total wall-clock budget in seconds for one logical request across
        all its retries; once sleeping again would exceed it the client
        raises instead of sleeping.  ``None`` disables the budget.
    keep_alive:
        When False, a fresh connection is opened per request (the
        close-per-request baseline the load-test benchmark compares
        against).  Default True: one persistent connection is reused.

    Usable as a context manager; :meth:`close` drops the connection.
    """

    def __init__(
        self,
        base_url: str,
        auth_token: Optional[str] = None,
        timeout: float = DEFAULT_TIMEOUT,
        retries: int = DEFAULT_RETRIES,
        backoff_base: float = DEFAULT_BACKOFF_SECONDS,
        backoff_max: float = DEFAULT_BACKOFF_MAX_SECONDS,
        jitter: float = 0.5,
        retry_deadline: Optional[float] = DEFAULT_RETRY_DEADLINE_SECONDS,
        keep_alive: bool = True,
        api_version: str = "v1",
    ) -> None:
        if backoff_base < 0 or backoff_max < 0:
            raise ValueError("backoff seconds must be >= 0")
        if not 0 <= jitter <= 1:
            raise ValueError("jitter must be within [0, 1]")
        if retry_deadline is not None and retry_deadline <= 0:
            raise ValueError("retry_deadline must be positive when set")
        parsed = urllib.parse.urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme {parsed.scheme!r} (http only)")
        if not parsed.hostname:
            raise ValueError(f"no host in base_url {base_url!r}")
        self._host = parsed.hostname
        self._port = parsed.port or 80
        self._auth_token = auth_token
        self._timeout = timeout
        self._retries = retries
        self._backoff_base = backoff_base
        self._backoff_max = backoff_max
        self._jitter = jitter
        self._retry_deadline = retry_deadline
        self._keep_alive = keep_alive
        self._prefix = f"/{api_version}" if api_version else ""
        self._connection: Optional[http.client.HTTPConnection] = None

    # -- connection management ---------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- request core ------------------------------------------------------------

    def _headers(self, has_body: bool) -> Dict[str, str]:
        headers: Dict[str, str] = {}
        if has_body:
            headers["Content-Type"] = "application/json"
        if self._auth_token is not None:
            headers["Authorization"] = f"Bearer {self._auth_token}"
        if not self._keep_alive:
            headers["Connection"] = "close"
        return headers

    def _once(self, method: str, path: str, body: Optional[bytes]) -> Tuple[int, Any, Any]:
        """One request/response over the (possibly reused) connection."""
        connection = self._connect()
        try:
            connection.request(method, path, body=body, headers=self._headers(body is not None))
            response = connection.getresponse()
            raw = response.read()
        except (http.client.RemoteDisconnected, BrokenPipeError, ConnectionResetError):
            # A stale keep-alive connection (server idle-timeout won the
            # race, or it restarted).  Drop it and retry once on a fresh
            # connection -- safe for this API: POST /v1/jobs is effectively
            # idempotent (deterministic verdicts, fingerprint dedup).
            self.close()
            connection = self._connect()
            connection.request(method, path, body=body, headers=self._headers(body is not None))
            response = connection.getresponse()
            raw = response.read()
        if not self._keep_alive or response.will_close:
            self.close()
        content_type = response.getheader("Content-Type", "")
        if "json" in content_type and raw:
            payload: Any = json.loads(raw.decode("utf-8"))
        else:
            payload = raw.decode("utf-8", "replace")
        return response.status, payload, response

    def _compute_delay(
        self,
        attempt: int,
        retry_after: Optional[str],
        rng: Optional[random.Random] = None,
    ) -> float:
        """Backoff before retry ``attempt`` (1-based), honouring Retry-After.

        The exponential curve ``backoff_base * 2**(attempt-1)`` is floored
        by the server's ``Retry-After`` hint, capped at ``backoff_max`` and
        randomized down by up to ``jitter``.
        """
        try:
            floor = float(retry_after) if retry_after else 0.0
        except ValueError:
            floor = 0.0
        delay = min(self._backoff_max, max(floor, self._backoff_base * 2.0 ** (attempt - 1)))
        draw = (rng or random).random()
        return delay * (1 - self._jitter * draw)

    def request(self, method: str, path: str, payload: Any = None) -> Any:
        """Issue one API call (path relative to ``/v1``), with shed retries.

        Returns the decoded JSON body on 2xx; raises :class:`ServiceError`
        otherwise.  429/503 responses are retried up to ``retries`` times
        with exponential backoff (jittered, floored by the server's
        ``Retry-After``), all within the total ``retry_deadline`` budget.
        """
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        url = self._prefix + path
        deadline = (
            time.monotonic() + self._retry_deadline if self._retry_deadline is not None else None
        )
        attempt = 0
        while True:
            status, decoded, response = self._once(method, url, body)
            if status < 400:
                return decoded
            if status in RETRYABLE_STATUSES and attempt < self._retries:
                attempt += 1
                delay = self._compute_delay(attempt, response.getheader("Retry-After"))
                if deadline is None or time.monotonic() + delay <= deadline:
                    time.sleep(delay)
                    continue
                # Sleeping again would blow the total budget: fail now with
                # the response in hand rather than later with nothing new.
            raise ServiceError(method, f"http://{self._host}:{self._port}{url}", status, decoded)

    # -- the API surface ---------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self.request("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        return self.request("GET", "/stats")

    def metrics(self) -> str:
        """The raw Prometheus text exposition from ``GET /v1/metrics``."""
        return self.request("GET", "/metrics")

    def submit_job(self, job: VerificationJob, include_fingerprint: bool = True) -> Dict[str, Any]:
        """Decide one job; returns the single-job response envelope."""
        spec = dict(job.to_spec())
        if include_fingerprint:
            spec["fingerprint"] = job.fingerprint
        return self.request("POST", "/jobs", spec)

    def submit_batch(
        self,
        jobs: Sequence[VerificationJob],
        wait: bool = True,
        include_fingerprints: bool = True,
    ) -> Dict[str, Any]:
        """Submit a batch; the full report when ``wait``, else the 202 envelope."""
        return self.request("POST", "/jobs", jobs_to_wire(jobs, wait, include_fingerprints))

    def lookup(self, fingerprint: str) -> Dict[str, Any]:
        """The stored verdict for ``fingerprint`` (404 -> ServiceError)."""
        return self.request("GET", f"/jobs/{fingerprint}")

    def trace(self, fingerprint: str) -> Dict[str, Any]:
        """The recorded solver trace for ``fingerprint`` (404 -> ServiceError).

        Traces only exist for jobs submitted with ``trace=True``; the
        ``"trace"`` field of the response is the stored recorder dict that
        :func:`repro.telemetry.chrome_trace` converts for Perfetto.
        """
        return self.request("GET", f"/jobs/{fingerprint}/trace")

    def batch_status(self, batch_id: str) -> Dict[str, Any]:
        return self.request("GET", f"/batch/{batch_id}")


def post_jobs(
    base_url: str,
    jobs: Sequence[VerificationJob],
    wait: bool = True,
    include_fingerprints: bool = True,
    timeout: float = DEFAULT_TIMEOUT,
    auth_token: Optional[str] = None,
) -> Dict[str, object]:
    """POST a batch of jobs to a running ``repro serve`` endpoint.

    A one-shot convenience over :class:`ServiceClient` (connect, submit,
    close).  Returns the decoded JSON response (the full batch report when
    ``wait``, the ``202`` acceptance envelope otherwise); raises
    :class:`ServiceError` -- a ``RuntimeError`` subclass, so pre-``/v1``
    callers that caught that still work -- on a non-2xx response.
    """
    with ServiceClient(base_url, auth_token=auth_token, timeout=timeout) as client:
        return client.submit_batch(jobs, wait=wait, include_fingerprints=include_fingerprints)
