"""Batch verification service: fingerprinted jobs, result store, batch runner.

The decision procedure of Theorem 5 is pure and deterministic given
``(system, theory, strategy)``, so verdicts are perfectly cacheable and
trivially parallel.  This package turns that observation into a service
layer:

* :class:`~repro.service.jobs.VerificationJob` -- one emptiness query with a
  deterministic SHA-256 fingerprint over its canonical JSON spec;
* :class:`~repro.service.store.ResultStore` -- a SQLite-backed verdict cache
  keyed by fingerprint, with a JSON export;
* :class:`~repro.service.runner.BatchRunner` -- fans jobs out over
  supervised ``multiprocessing`` workers with per-job timeout/error capture,
  serial-equivalence guarantees, crash/deadline detection and a bounded
  :class:`~repro.service.runner.RetryPolicy` for transient failures.

Random workloads to drive it live in :mod:`repro.workloads`; the CLI front
doors are ``repro batch`` / ``repro store`` for one-shot runs and ``repro
serve`` -- the async HTTP service of :mod:`repro.service.server`, with
store-first serving and in-flight fingerprint dedup -- for always-on
deployments.  Persistence is pluggable through the
:class:`~repro.service.backends.StoreBackend` keyspace protocol, with
URL-style addressing (``sqlite:PATH``, ``memory:``, ``http://host:port``)
via :func:`~repro.service.backends.backend_from_url`.

The distributed tier builds on the same two surfaces: ``repro store serve``
(:mod:`repro.service.keyspace`) publishes any backend over the canonical
wire format for :class:`~repro.service.client.HTTPBackend` clients, and a
:class:`~repro.service.coordinator.CoordinatorService` shards fingerprints
across runner nodes behind the unchanged ``/v1`` job API.
"""

from repro.service.backends import (
    ROW_SCHEMA_VERSION,
    MemoryBackend,
    SQLiteBackend,
    StoreBackend,
    backend_from_url,
)
from repro.service.client import (
    HTTPBackend,
    ServiceClient,
    ServiceError,
    jobs_to_wire,
    post_jobs,
)
from repro.service.coordinator import CoordinatorService
from repro.service.keyspace import (
    KeyspaceServerThread,
    KeyspaceService,
    run_keyspace_server,
)
from repro.service.jobs import (
    DEFAULT_JOB_MAX_CONFIGURATIONS,
    JOB_ERROR_CODES,
    RETRYABLE_ERROR_CODES,
    JobResult,
    VerificationJob,
    execute_job,
)
from repro.service.runner import (
    BatchReport,
    BatchRunner,
    FingerprintMismatch,
    RetryPolicy,
    run_batch,
)
from repro.service.server import (
    API_VERSION,
    ERROR_CODES,
    SERVICE_ROUTES,
    ApiError,
    ServerThread,
    VerificationService,
    run_server,
)
from repro.service.specs import THEORY_KINDS, theory_from_spec, theory_to_spec
from repro.service.store import ResultStore

__all__ = [
    "StoreBackend",
    "SQLiteBackend",
    "MemoryBackend",
    "HTTPBackend",
    "backend_from_url",
    "ROW_SCHEMA_VERSION",
    "KeyspaceService",
    "KeyspaceServerThread",
    "run_keyspace_server",
    "CoordinatorService",
    "SERVICE_ROUTES",
    "VerificationService",
    "ServerThread",
    "run_server",
    "API_VERSION",
    "ERROR_CODES",
    "ApiError",
    "ServiceClient",
    "ServiceError",
    "jobs_to_wire",
    "post_jobs",
    "VerificationJob",
    "JobResult",
    "execute_job",
    "DEFAULT_JOB_MAX_CONFIGURATIONS",
    "ResultStore",
    "BatchRunner",
    "BatchReport",
    "RetryPolicy",
    "FingerprintMismatch",
    "run_batch",
    "JOB_ERROR_CODES",
    "RETRYABLE_ERROR_CODES",
    "THEORY_KINDS",
    "theory_from_spec",
    "theory_to_spec",
]
