"""A parent-supervised worker pool that survives dying and wedging workers.

``multiprocessing.Pool`` has no equivalent of ``BrokenProcessPool``: when a
spawn worker is OOM-killed or segfaults mid-job, ``imap_unordered`` simply
never yields that job and the parent hangs forever.  The in-worker SIGALRM
budget cannot help — a dead process runs no signal handlers.  This module
replaces the pool with explicit supervision:

* **persistent workers** — ``processes`` long-lived spawn workers compete
  for tasks on a shared queue (same load-balancing as ``imap_unordered``
  with ``chunksize=1``, same one-time spawn cost per worker);
* **per-worker result pipes** — each worker reports ``started`` before and
  ``done`` after every task on its own duplex pipe, so the parent always
  knows *which* task a worker was holding.  A worker death shows up as EOF
  on its pipe (or a failed liveness check) and is surfaced as a structured
  ``crashed`` event for exactly the task it held, never as a hang;
* **parent-side deadlines** — a task with a timeout gets a parent-side
  deadline of ``timeout + grace``: the in-worker alarm fires first in the
  healthy case, and the parent kills the worker outright when the alarm
  could not (wedged C loop, blocked syscall, suspended process) and emits a
  ``deadline`` event;
* **automatic respawn** — any lost worker is replaced while work remains,
  so one poisonous job cannot shrink the pool for the rest of the batch.

The pool is policy-free: it reports ``done``/``crashed``/``deadline``
events and accepts resubmissions (:meth:`SupervisedPool.submit_later`), and
the :class:`~repro.service.runner.BatchRunner` decides what to retry.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro import telemetry

_log = telemetry.get_logger("supervisor")

#: How long one supervision tick waits for worker messages.
POLL_SECONDS = 0.05

#: How long the parent tolerates "tasks outstanding, queue apparently empty,
#: every worker idle" before it re-enqueues unclaimed tasks.  This closes
#: the (microscopic) window where a worker is killed after dequeuing a task
#: but before reporting ``started`` — the one loss mode pipes cannot see.
STALL_RECOVERY_SECONDS = 5.0


class WorkerPoolError(RuntimeError):
    """The pool lost more workers than its respawn budget allows."""


@dataclass
class PoolEvent:
    """One supervision outcome for a submitted task."""

    kind: str  # "done" | "crashed" | "deadline"
    index: int
    attempt: int
    result: Any = None
    exitcode: Optional[int] = None
    elapsed_seconds: float = 0.0


def _worker_main(work_queue: Any, conn: Any, entry: Callable[[Any, int], Any]) -> None:
    """Worker process loop: announce, execute, report, repeat.

    ``started`` is sent *before* ``entry`` runs so the parent can attribute
    a mid-task death to the right task.  ``entry`` is expected to capture
    its own exceptions into its result value; anything that still escapes
    (e.g. an unpicklable result) kills this worker and is handled by the
    parent's crash path.
    """
    while True:
        item = work_queue.get()
        if item is None:
            conn.send(("bye",))
            conn.close()
            return
        index, attempt, payload = item
        conn.send(("started", index, attempt))
        result = entry(payload, attempt)
        conn.send(("done", index, attempt, result))


class _Slot:
    """Parent-side bookkeeping for one worker process."""

    __slots__ = ("process", "conn", "index", "attempt", "deadline", "started_at")

    def __init__(self, process: Any, conn: Any) -> None:
        self.process = process
        self.conn = conn
        self.index: Optional[int] = None
        self.attempt: int = 0
        self.deadline: Optional[float] = None
        self.started_at: float = 0.0

    @property
    def busy(self) -> bool:
        return self.index is not None


class SupervisedPool:
    """Fixed-size supervised worker pool over a ``multiprocessing`` context.

    Parameters
    ----------
    context:
        ``multiprocessing`` context (spawn/fork/forkserver).
    processes:
        Worker count; lost workers are respawned while work remains.
    entry:
        Module-level callable ``entry(payload, attempt) -> result`` run in
        the worker (must pickle under spawn).
    grace_seconds:
        Parent-side margin added to a task's timeout before the worker is
        declared wedged and killed.
    max_respawns:
        Safety valve against crash loops; defaults to a budget generous
        enough for every task to crash a worker on every retry attempt.
    """

    def __init__(
        self,
        context: Any,
        processes: int,
        entry: Callable[[Any, int], Any],
        grace_seconds: float = 5.0,
        max_respawns: Optional[int] = None,
    ) -> None:
        if processes < 1:
            raise ValueError("processes must be >= 1")
        if grace_seconds <= 0:
            raise ValueError("grace_seconds must be positive")
        self._ctx = context
        self._processes = processes
        self._entry = entry
        self._grace = grace_seconds
        self._max_respawns = max_respawns
        self._work_queue = context.Queue()
        self._slots: List[_Slot] = []
        self._outstanding = 0
        #: Tasks submitted but not yet reported ``started``: payloads are
        #: retained here so stall recovery can re-enqueue them.
        self._unclaimed: Dict[Tuple[int, int], Tuple[Any, Optional[float]]] = {}
        #: Settled (index, attempt) pairs; duplicate reports are dropped.
        self._settled: Set[Tuple[int, int]] = set()
        #: (ready_at, seq, task) heap for backoff-delayed resubmissions.
        self._delayed: List[Tuple[float, int, Tuple[int, int, Any, Optional[float]]]] = []
        self._seq = itertools.count()
        self._stall_since: Optional[float] = None
        self.respawns = 0
        self._started = False
        self._closed = False

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for _ in range(self._processes):
            self._spawn_slot()

    def _spawn_slot(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(self._work_queue, child_conn, self._entry),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self._slots.append(_Slot(process, parent_conn))

    def close(self) -> None:
        """Terminate every worker and release IPC resources (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for slot in self._slots:
            if slot.process.is_alive():
                slot.process.terminate()
        for slot in self._slots:
            slot.process.join(timeout=2.0)
            if slot.process.is_alive():
                slot.process.kill()
                slot.process.join(timeout=2.0)
            try:
                slot.conn.close()
            except OSError:
                pass
        self._slots.clear()
        # Unconsumed queue items would keep the feeder thread alive and
        # block interpreter exit; we are abandoning them deliberately.
        self._work_queue.close()
        self._work_queue.cancel_join_thread()

    # -- submission --------------------------------------------------------------

    def submit(self, index: int, attempt: int, payload: Any, timeout: Optional[float]) -> None:
        """Enqueue one task; pairs with exactly one event from :meth:`events`."""
        self._outstanding += 1
        self._unclaimed[(index, attempt)] = (payload, timeout)
        self._work_queue.put((index, attempt, payload))

    def submit_later(
        self,
        delay_seconds: float,
        index: int,
        attempt: int,
        payload: Any,
        timeout: Optional[float],
    ) -> None:
        """Like :meth:`submit`, but the task becomes runnable after a delay.

        Used for retry backoff: the pool keeps polling while the task waits,
        so other jobs keep executing during the backoff window.
        """
        self._outstanding += 1
        ready_at = time.monotonic() + max(0.0, delay_seconds)
        heapq.heappush(
            self._delayed, (ready_at, next(self._seq), (index, attempt, payload, timeout))
        )

    def _release_due(self) -> None:
        now = time.monotonic()
        while self._delayed and self._delayed[0][0] <= now:
            _, _, (index, attempt, payload, timeout) = heapq.heappop(self._delayed)
            self._unclaimed[(index, attempt)] = (payload, timeout)
            self._work_queue.put((index, attempt, payload))

    # -- supervision loop --------------------------------------------------------

    def events(self) -> Iterator[PoolEvent]:
        """Yield one event per outstanding task until none remain.

        Callers may resubmit (``submit``/``submit_later``) between events;
        the loop runs until every submission is settled.
        """
        self.start()
        while self._outstanding > 0:
            self._release_due()
            ready = mp_connection.wait(
                [slot.conn for slot in self._slots], timeout=POLL_SECONDS
            )
            by_conn = {slot.conn: slot for slot in self._slots}
            for conn in ready:
                slot = by_conn.get(conn)
                if slot is None:  # slot removed by an earlier event this tick
                    continue
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    event = self._reap_dead(slot)
                    if event is not None:
                        yield event
                    continue
                event = self._handle_message(slot, message)
                if event is not None:
                    yield event
            for event in self._sweep():
                yield event

    def _handle_message(self, slot: _Slot, message: Tuple[Any, ...]) -> Optional[PoolEvent]:
        kind = message[0]
        if kind == "started":
            _, index, attempt = message
            task = self._unclaimed.pop((index, attempt), None)
            timeout = task[1] if task is not None else None
            slot.index = index
            slot.attempt = attempt
            slot.started_at = time.monotonic()
            slot.deadline = (
                slot.started_at + timeout + self._grace if timeout is not None else None
            )
            return None
        if kind == "done":
            _, index, attempt, result = message
            slot.index = None
            slot.deadline = None
            return self._settle(
                PoolEvent(
                    "done",
                    index,
                    attempt,
                    result=result,
                    elapsed_seconds=time.monotonic() - slot.started_at,
                )
            )
        # "bye": the worker drained a shutdown sentinel (close() path).
        return None

    def _settle(self, event: PoolEvent) -> Optional[PoolEvent]:
        key = (event.index, event.attempt)
        if key in self._settled:
            # Stall recovery can duplicate a task; only the first report counts.
            return None
        self._settled.add(key)
        self._outstanding -= 1
        return event

    def _sweep(self) -> Iterator[PoolEvent]:
        """Deadline enforcement, death detection and stall recovery."""
        now = time.monotonic()
        for slot in list(self._slots):
            if slot.busy and slot.deadline is not None and now > slot.deadline:
                index, attempt = slot.index, slot.attempt
                elapsed = now - slot.started_at
                _log.warning(
                    "worker deadline exceeded; killing",
                    extra={"task_index": index, "attempt": attempt, "elapsed": round(elapsed, 3)},
                )
                self._discard_slot(slot, kill=True)
                self._respawn_if_needed()
                event = self._settle(
                    PoolEvent("deadline", index, attempt, elapsed_seconds=elapsed)
                )
                if event is not None:
                    yield event
            elif not slot.process.is_alive() and not slot.conn.poll():
                # Dead with no buffered messages left; EOF may not surface
                # through wait() on every platform, so check liveness too.
                event = self._reap_dead(slot)
                if event is not None:
                    yield event
        self._recover_stall()

    def _reap_dead(self, slot: _Slot) -> Optional[PoolEvent]:
        """A worker died: surface its held task (if any) and replace it."""
        if slot not in self._slots:
            return None
        index, attempt = slot.index, slot.attempt
        elapsed = time.monotonic() - slot.started_at if slot.busy else 0.0
        # Join (via discard) before reading the exit code: pipe EOF can
        # arrive before the dead process has been reaped, when exitcode
        # is still None.
        self._discard_slot(slot, kill=False)
        exitcode = slot.process.exitcode
        self._respawn_if_needed()
        if index is None:
            return None  # idle worker died; nothing to report, already replaced
        _log.warning(
            "worker crashed mid-task",
            extra={"task_index": index, "attempt": attempt, "exitcode": exitcode},
        )
        return self._settle(
            PoolEvent("crashed", index, attempt, exitcode=exitcode, elapsed_seconds=elapsed)
        )

    def _discard_slot(self, slot: _Slot, kill: bool) -> None:
        if kill and slot.process.is_alive():
            slot.process.kill()
        slot.process.join(timeout=2.0)
        try:
            slot.conn.close()
        except OSError:
            pass
        if slot in self._slots:
            self._slots.remove(slot)

    def _respawn_if_needed(self) -> None:
        if self._outstanding <= 0 or self._closed:
            return
        budget = self._max_respawns
        if budget is not None and self.respawns >= budget:
            raise WorkerPoolError(
                f"worker pool exhausted its respawn budget ({budget}); "
                "a job is likely crash-looping beyond its retry allowance"
            )
        self.respawns += 1
        self._spawn_slot()

    def _recover_stall(self) -> None:
        """Re-enqueue tasks lost in the dequeue-to-started window."""
        busy = any(slot.busy for slot in self._slots)
        if busy or not self._unclaimed or self._delayed or not self._work_queue.empty():
            self._stall_since = None
            return
        now = time.monotonic()
        if self._stall_since is None:
            self._stall_since = now
            return
        if now - self._stall_since < STALL_RECOVERY_SECONDS:
            return
        self._stall_since = None
        _log.warning(
            "re-enqueueing unclaimed tasks after stall",
            extra={"tasks": len(self._unclaimed)},
        )
        for (index, attempt), (payload, _timeout) in list(self._unclaimed.items()):
            self._work_queue.put((index, attempt, payload))
