"""The keyspace server: ``repro store serve``, a shared remote verdict cache.

One :class:`~repro.service.backends.StoreBackend` (usually SQLite) exposed
over the canonical wire protocol (``docs/keyspace-protocol.md``) so a fleet
of ``repro serve`` runners shares one verdict cache and one fleet-wide
in-flight dedup domain through :class:`~repro.service.client.HTTPBackend`.

Design points:

* **Keyspace-shaped routes.**  ``GET/PUT/DELETE /v1/keys/{key}`` plus the
  scan endpoints mirror the :class:`StoreBackend` protocol one-to-one; the
  payloads are the flat row dicts the backends already move, normalized to
  the full :data:`~repro.service.backends.ROW_FIELDS` shape on write.
* **Multi-writer semantics.**  A plain ``PUT`` is last-write-wins -- safe
  for verdict rows because verdicts are deterministic per fingerprint.
  ``If-Match: *`` makes the ``PUT`` conditional on the key being absent
  (the ``put_if_absent`` claim primitive) and ``If-Match: <created_at>``
  on the current row's timestamp (``compare_and_put``); a failed
  precondition answers ``412`` with code ``precondition-failed``.
* **TTL honored server-side.**  ``--ttl`` ages rows out by ``created_at``
  and per-row ``expires_at`` stamps (claim rows, transient-error rows) are
  enforced on read, so clients of a shared keyspace cannot observe each
  other's expired rows regardless of their own store policy.  ``--max-
  entries`` evicts oldest-first on write, same as the local store policy.
* **Same envelope, same auth.**  Errors use the unified error envelope and
  a shared-secret token is checked exactly like the job server's
  (``Authorization: Bearer`` or ``X-Auth-Token``, constant-time compare).

The server itself is a ``ThreadingHTTPServer``: every operation is one
short backend call under the backend's own lock, so plain threads beat an
event loop here and keep the module free of the job server's machinery.
"""

from __future__ import annotations

import hmac
import json
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.service.backends import (
    ROW_DEFAULTS,
    ROW_FIELDS,
    ROW_SCHEMA_VERSION,
    StoreBackend,
    backend_from_url,
)
from repro.service.server import API_VERSION, error_envelope
from repro.telemetry import MetricsRegistry, get_logger

logger = get_logger("repro.service.keyspace")


def _repro_version() -> str:
    from repro import __version__  # deferred: repro imports this package

    return __version__

#: Routes advertised by the discovery document, relative to ``/v1``.
KEYSPACE_ROUTES = (
    "GET /",
    "GET /healthz",
    "GET /stats",
    "GET /metrics",
    "GET /keys",
    "GET /keys/{key}",
    "PUT /keys/{key}",
    "DELETE /keys/{key}",
    "GET /count",
    "GET /rows",
    "GET /scan/oldest?limit=N",
    "GET /scan/expired?cutoff=T",
    "POST /clear",
    "POST /checkpoint",
)

#: Error codes specific to the keyspace protocol; everything else reuses
#: the job server's :data:`~repro.service.server.ERROR_CODES`.
KEYSPACE_ERROR_CODES: Dict[str, str] = {
    "precondition-failed": (
        "412: the PUT carried If-Match and the precondition did not hold "
        "(If-Match: * with the key present, or a created_at that no longer matches)"
    ),
}


class _KeyspaceError(Exception):
    def __init__(self, status: int, code: str, message: str, detail: Any = None) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.detail = detail


class KeyspaceService:
    """The protocol logic behind ``repro store serve``, HTTP-free.

    Maps ``(method, path, query, body, headers)`` to ``(status, payload,
    headers)`` so the request handler stays a thin shell and tests can
    drive the protocol without sockets.
    """

    def __init__(
        self,
        backend: Union[StoreBackend, str],
        ttl_seconds: Optional[float] = None,
        max_entries: Optional[int] = None,
        auth_token: Optional[str] = None,
    ) -> None:
        self._backend = (
            backend_from_url(backend) if isinstance(backend, str) else backend
        )
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive when set")
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive when set")
        self._ttl = ttl_seconds
        self._max_entries = max_entries
        self._auth_token = auth_token
        self._write_lock = threading.RLock()
        self.registry = MetricsRegistry()
        self._ops = self.registry.counter(
            "repro_keyspace_ops_total",
            "Keyspace operations served, by op and outcome.",
            labelnames=("op", "outcome"),
        )
        self._expired = self.registry.counter(
            "repro_keyspace_expired_total",
            "Rows aged out server-side (TTL or per-row expiry).",
        )
        self._evicted = self.registry.counter(
            "repro_keyspace_evicted_total",
            "Rows evicted oldest-first by the max-entries cap.",
        )
        self.registry.gauge(
            "repro_keyspace_rows",
            "Rows currently stored.",
            callback=self._backend.count,
        )
        self.started_at = time.time()

    @property
    def backend(self) -> StoreBackend:
        return self._backend

    # -- policy ------------------------------------------------------------------

    def _expired_row(self, row: Mapping[str, Any], now: float) -> bool:
        expires_at = row.get("expires_at")
        if expires_at is not None and now >= expires_at:
            return True
        return self._ttl is not None and row["created_at"] < now - self._ttl

    def _reap(self, key: str, row: Mapping[str, Any], now: float) -> bool:
        """Delete ``row`` if it has aged out; True when it was reaped."""
        if not self._expired_row(row, now):
            return False
        self._backend.delete(key)
        self._expired.inc()
        return True

    def _live_row(self, key: str) -> Optional[Dict[str, Any]]:
        row = self._backend.get(key)
        if row is None or self._reap(key, row, time.time()):
            return None
        return row

    def _evict(self) -> None:
        if self._max_entries is None:
            return
        overflow = self._backend.count() - self._max_entries
        if overflow > 0:
            for key in self._backend.oldest_keys(overflow):
                if self._backend.delete(key):
                    self._evicted.inc()

    # -- auth --------------------------------------------------------------------

    def _authorize(self, headers: Mapping[str, str]) -> None:
        if self._auth_token is None:
            return
        supplied = None
        authorization = headers.get("Authorization", "")
        if authorization.startswith("Bearer "):
            supplied = authorization[len("Bearer "):]
        elif "X-Auth-Token" in headers:
            supplied = headers["X-Auth-Token"]
        if supplied is None:
            raise _KeyspaceError(
                401,
                "auth-required",
                "this keyspace requires a token",
                detail="send 'Authorization: Bearer <token>' or 'X-Auth-Token: <token>'",
            )
        if not hmac.compare_digest(supplied, self._auth_token):
            raise _KeyspaceError(403, "auth-invalid", "the supplied token does not match")

    # -- request handling --------------------------------------------------------

    def handle(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        headers: Mapping[str, str],
    ) -> Tuple[int, Any, Dict[str, str]]:
        """Serve one request; returns ``(status, json payload, headers)``."""
        parsed = urllib.parse.urlsplit(path)
        query = dict(urllib.parse.parse_qsl(parsed.query))
        route = parsed.path
        if route == f"/{API_VERSION}" or route.startswith(f"/{API_VERSION}/"):
            route = route[len(API_VERSION) + 1:] or "/"
        try:
            # Discovery and liveness stay open (mirrors `repro serve`): load
            # balancers and clients probing schema compatibility need them
            # before they hold a token.
            if route not in ("/", "/healthz"):
                self._authorize(headers)
            return self._dispatch(method, route, query, body, headers)
        except _KeyspaceError as error:
            self._ops.inc(op=method.lower(), outcome="error")
            return (
                error.status,
                error_envelope(error.code, error.message, error.detail),
                {},
            )

    def _dispatch(
        self,
        method: str,
        route: str,
        query: Dict[str, str],
        body: Optional[bytes],
        headers: Mapping[str, str],
    ) -> Tuple[int, Any, Dict[str, str]]:
        if route == "/":
            self._require(method, "GET", route)
            return 200, self.discovery_document(), {}
        if route == "/healthz":
            self._require(method, "GET", route)
            from repro import __version__  # deferred: repro imports this package

            return 200, {"status": "ok", "role": "store", "version": __version__}, {}
        if route == "/stats":
            self._require(method, "GET", route)
            return 200, self.stats_payload(), {}
        if route == "/metrics":
            self._require(method, "GET", route)
            return 200, self.registry.render(), {"Content-Type": "text/plain; version=0.0.4"}
        if route == "/keys":
            self._require(method, "GET", route)
            now = time.time()
            keys = [key for key in self._backend.keys() if self._live_key(key, now)]
            self._ops.inc(op="keys", outcome="ok")
            return 200, {"keys": keys}, {}
        if route.startswith("/keys/"):
            return self._handle_key(method, route[len("/keys/"):], body, headers)
        if route == "/count":
            self._require(method, "GET", route)
            self._ops.inc(op="count", outcome="ok")
            return 200, {"count": self._backend.count()}, {}
        if route == "/rows":
            self._require(method, "GET", route)
            now = time.time()
            rows = [row for row in self._backend.rows() if not self._expired_row(row, now)]
            self._ops.inc(op="rows", outcome="ok")
            return 200, {"rows": rows}, {}
        if route == "/scan/oldest":
            self._require(method, "GET", route)
            limit = self._int_param(query, "limit")
            self._ops.inc(op="scan", outcome="ok")
            return 200, {"keys": self._backend.oldest_keys(limit)}, {}
        if route == "/scan/expired":
            self._require(method, "GET", route)
            cutoff = self._float_param(query, "cutoff")
            self._ops.inc(op="scan", outcome="ok")
            return 200, {"keys": self._backend.expired_keys(cutoff)}, {}
        if route == "/clear":
            self._require(method, "POST", route)
            removed = self._backend.clear()
            self._ops.inc(op="clear", outcome="ok")
            return 200, {"removed": removed}, {}
        if route == "/checkpoint":
            self._require(method, "POST", route)
            self._backend.checkpoint()
            self._ops.inc(op="checkpoint", outcome="ok")
            return 200, {"ok": True}, {}
        raise _KeyspaceError(
            404,
            "not-found",
            f"no route {route}",
            detail=f"keyspace endpoints live under /{API_VERSION}: "
            + ", ".join(KEYSPACE_ROUTES),
        )

    def _live_key(self, key: str, now: float) -> bool:
        row = self._backend.get(key)
        return row is not None and not self._reap(key, row, now)

    @staticmethod
    def _require(method: str, expected: str, route: str) -> None:
        if method != expected:
            raise _KeyspaceError(
                405, "method-not-allowed", f"{route} only answers {expected}"
            )

    @staticmethod
    def _int_param(query: Dict[str, str], name: str) -> int:
        try:
            return int(query[name])
        except (KeyError, ValueError):
            raise _KeyspaceError(
                400, "bad-request", f"query parameter {name!r} must be an integer"
            ) from None

    @staticmethod
    def _float_param(query: Dict[str, str], name: str) -> float:
        try:
            return float(query[name])
        except (KeyError, ValueError):
            raise _KeyspaceError(
                400, "bad-request", f"query parameter {name!r} must be a number"
            ) from None

    def _handle_key(
        self,
        method: str,
        key: str,
        body: Optional[bytes],
        headers: Mapping[str, str],
    ) -> Tuple[int, Any, Dict[str, str]]:
        if not key or "/" in key:
            raise _KeyspaceError(404, "not-found", f"bad key {key!r}")
        if method == "GET":
            row = self._live_row(key)
            if row is None:
                self._ops.inc(op="get", outcome="miss")
                raise _KeyspaceError(404, "not-found", f"no row for key {key}")
            self._ops.inc(op="get", outcome="hit")
            return 200, {"row": row}, {}
        if method == "DELETE":
            deleted = self._backend.delete(key)
            self._ops.inc(op="delete", outcome="ok" if deleted else "miss")
            return 200, {"deleted": deleted}, {}
        if method == "PUT":
            return self._put_key(key, body, headers)
        raise _KeyspaceError(
            405, "method-not-allowed", "/keys/{key} only answers GET, PUT, DELETE"
        )

    def _put_key(
        self, key: str, body: Optional[bytes], headers: Mapping[str, str]
    ) -> Tuple[int, Any, Dict[str, str]]:
        if not body:
            raise _KeyspaceError(400, "bad-request", "PUT requires a JSON row body")
        try:
            decoded = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _KeyspaceError(
                400, "invalid-json", f"row body is not valid JSON: {error}"
            ) from None
        if not isinstance(decoded, dict) or "created_at" not in decoded:
            raise _KeyspaceError(
                400, "invalid-spec", "a row is a JSON object with at least created_at"
            )
        row = {field: decoded.get(field, ROW_DEFAULTS.get(field)) for field in ROW_FIELDS}
        row["fingerprint"] = key
        if_match = headers.get("If-Match")
        # The conditional forms and eviction run under one lock so the
        # precondition check, the write and the oldest-first trim are one
        # atomic step from any writer's point of view.  (The backend
        # primitives are atomic on their own; the lock keeps *eviction*
        # from interleaving and makes expired-claim takeover exact.)
        with self._write_lock:
            now = time.time()
            if if_match is None:
                self._backend.put(key, row)
                self._ops.inc(op="put", outcome="ok")
            elif if_match == "*":
                current = self._backend.get(key)
                if current is not None and self._reap(key, current, now):
                    current = None
                if current is not None or not self._backend.put_if_absent(key, row):
                    self._ops.inc(op="put", outcome="precondition-failed")
                    raise _KeyspaceError(
                        412,
                        "precondition-failed",
                        f"key {key} already has a live row",
                    )
                self._ops.inc(op="put", outcome="ok")
            else:
                try:
                    expected = float(if_match.strip('"'))
                except ValueError:
                    raise _KeyspaceError(
                        400,
                        "bad-request",
                        "If-Match must be '*' or a created_at timestamp",
                    ) from None
                if not self._backend.compare_and_put(key, row, expected):
                    self._ops.inc(op="put", outcome="precondition-failed")
                    raise _KeyspaceError(
                        412,
                        "precondition-failed",
                        f"key {key} has no row with created_at == {expected!r}",
                    )
                self._ops.inc(op="put", outcome="ok")
            self._evict()
        return 200, {"stored": True}, {}

    # -- introspection -----------------------------------------------------------

    def discovery_document(self) -> Dict[str, Any]:
        return {
            "service": "repro",
            "version": _repro_version(),
            "api_version": API_VERSION,
            "role": "store",
            "store": {
                "backend": self._backend.name,
                "schema_version": ROW_SCHEMA_VERSION,
                "ttl_seconds": self._ttl,
                "max_entries": self._max_entries,
            },
            "routes": list(KEYSPACE_ROUTES),
            "error_codes": dict(KEYSPACE_ERROR_CODES),
        }

    def stats_payload(self) -> Dict[str, Any]:
        return {
            "role": "store",
            "backend": self._backend.name,
            "entries": self._backend.count(),
            "schema_version": ROW_SCHEMA_VERSION,
            "ttl_seconds": self._ttl,
            "max_entries": self._max_entries,
            "expired_total": int(self._expired.value()),
            "evicted_total": int(self._evicted.value()),
            "uptime_seconds": round(time.time() - self.started_at, 3),
        }

    def close(self) -> None:
        self._backend.close()


class _KeyspaceHandler(BaseHTTPRequestHandler):
    """Thin HTTP shell around :meth:`KeyspaceService.handle`."""

    protocol_version = "HTTP/1.1"
    service: KeyspaceService  # set by _make_server

    def _serve(self, method: str) -> None:
        body = None
        length = self.headers.get("Content-Length")
        if length is not None:
            try:
                body = self.rfile.read(int(length))
            except (ValueError, OSError):
                body = None
        status, payload, extra = self.service.handle(method, self.path, body, self.headers)
        if isinstance(payload, str):
            raw = payload.encode("utf-8")
            content_type = extra.pop("Content-Type", "text/plain; charset=utf-8")
        else:
            raw = json.dumps(payload).encode("utf-8")
            content_type = extra.pop("Content-Type", "application/json")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(raw)))
        for name, value in extra.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(raw)

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._serve("GET")

    def do_PUT(self) -> None:  # noqa: N802
        self._serve("PUT")

    def do_POST(self) -> None:  # noqa: N802
        self._serve("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._serve("DELETE")

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        logger.debug("keyspace %s", format % args)


def _make_server(service: KeyspaceService, host: str, port: int) -> ThreadingHTTPServer:
    handler = type("BoundKeyspaceHandler", (_KeyspaceHandler,), {"service": service})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def run_keyspace_server(
    backend: Union[StoreBackend, str],
    host: str = "127.0.0.1",
    port: int = 8090,
    ttl_seconds: Optional[float] = None,
    max_entries: Optional[int] = None,
    auth_token: Optional[str] = None,
    port_file: Optional[str] = None,
) -> None:
    """Serve the keyspace until interrupted (the ``repro store serve`` loop).

    With ``port=0`` the OS picks a free port; ``port_file`` then lets
    scripts (the CI cluster smoke job) discover it race-free, mirroring
    ``repro serve --port-file``.
    """
    service = KeyspaceService(
        backend,
        ttl_seconds=ttl_seconds,
        max_entries=max_entries,
        auth_token=auth_token,
    )
    server = _make_server(service, host, port)
    bound_host, bound_port = server.server_address[:2]
    if port_file is not None:
        Path(port_file).write_text(f"{bound_port}\n")
    print(
        f"repro store serve: keyspace {service.backend.name} on "
        f"http://{bound_host}:{bound_port} (api /{API_VERSION}, "
        f"auth {'on' if auth_token else 'off'})",
        flush=True,
    )
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.backend.checkpoint()
        service.close()


class KeyspaceServerThread:
    """A keyspace server on a background thread, for tests and benchmarks.

    Mirrors :class:`~repro.service.server.ServerThread`: context-managed,
    binds an ephemeral port, exposes ``base_url``.
    """

    def __init__(
        self,
        backend: Optional[Union[StoreBackend, str]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        ttl_seconds: Optional[float] = None,
        max_entries: Optional[int] = None,
        auth_token: Optional[str] = None,
    ) -> None:
        self.service = KeyspaceService(
            backend if backend is not None else "memory:",
            ttl_seconds=ttl_seconds,
            max_entries=max_entries,
            auth_token=auth_token,
        )
        self._server = _make_server(self.service, host, port)
        bound_host, bound_port = self._server.server_address[:2]
        self.host = bound_host
        self.port = bound_port
        self.base_url = f"http://{bound_host}:{bound_port}"
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-keyspace",
            daemon=True,
        )

    def __enter__(self) -> "KeyspaceServerThread":
        self._thread.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5)
        self.service.close()


__all__ = [
    "KEYSPACE_ERROR_CODES",
    "KEYSPACE_ROUTES",
    "KeyspaceServerThread",
    "KeyspaceService",
    "run_keyspace_server",
]
