"""Theory spec dispatch: rebuild any shipped theory from its JSON spec.

Every theory class carries a ``SPEC_KIND`` tag and implements
``to_spec``/``from_spec`` (see :meth:`repro.fraisse.base.DatabaseTheory.to_spec`).
This module is the one place that knows all the kinds, so worker processes of
the batch runner can reconstruct a theory from the wire format without the
caller naming a class.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Type

from repro.datavalues.theory import DataValuedTheory
from repro.errors import TheoryError
from repro.fraisse.base import DatabaseTheory
from repro.relational.all_databases import AllDatabasesTheory
from repro.relational.hom import HomTheory
from repro.trees.theory import TreeRunTheory
from repro.words.theory import WordRunTheory

#: Registry of spec kinds; extend when adding a serializable theory.
THEORY_KINDS: Dict[str, Type[DatabaseTheory]] = {
    cls.SPEC_KIND: cls
    for cls in (
        AllDatabasesTheory,
        HomTheory,
        WordRunTheory,
        TreeRunTheory,
        DataValuedTheory,
    )
}


def theory_to_spec(theory: DatabaseTheory) -> Dict[str, Any]:
    """Serialize a theory, checking the kind tag is registered."""
    spec = theory.to_spec()
    kind = spec.get("kind")
    if kind not in THEORY_KINDS:
        raise TheoryError(
            f"theory {type(theory).__name__} produced unregistered spec kind {kind!r}"
        )
    return spec


def theory_from_spec(spec: Mapping[str, Any]) -> DatabaseTheory:
    """Rebuild a theory from its spec, dispatching on the ``"kind"`` tag."""
    kind = spec.get("kind")
    try:
        cls = THEORY_KINDS[kind]
    except KeyError:
        raise TheoryError(
            f"unknown theory spec kind {kind!r}; known: {sorted(THEORY_KINDS)}"
        ) from None
    return cls.from_spec(dict(spec))
