"""The persistent, fingerprint-keyed result store.

Verdicts of the decision procedure are pure functions of the job fingerprint
(see :mod:`repro.service.jobs`), so the store is a plain key-value table:
``fingerprint -> (verdict, engine statistics, witness summary, job spec)``.
Persistence is delegated to a pluggable :class:`StoreBackend`
(:mod:`repro.service.backends`): SQLite for durable single-host stores, an
in-memory keyspace for tests and the HTTP server's default configuration,
and a protocol shaped so a Redis/HTTP keyspace slots in without touching
this layer.  ``export_json`` renders the whole table for offline analysis
and the benchmark pipeline.

The store owns retention *policy* on top of the backend mechanisms:

* **TTL** -- with ``ttl_seconds`` set, entries older than the budget are
  treated as absent (and lazily deleted) on read; ``purge_expired`` sweeps
  eagerly.
* **Eviction** -- with ``max_entries`` set, writes evict the oldest entries
  beyond the cap, so a long-running server's cache stays bounded.

Errored and timed-out jobs are **never cached as verdicts**: ``put``
rejects them, and the only way to store one is :meth:`ResultStore.put_error`,
which writes a short-lived *non-cacheable* row (``cacheable=0`` plus its own
``expires_at``).  Such rows are invisible to the warm-cache path -- ``get``
reports a miss and the job re-executes on resubmission -- but remain
inspectable (``get(..., include_errors=True)``) so operators can see *why*
a fingerprint keeps failing.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from repro import faults
from repro.service.backends import (
    MemoryBackend,
    SQLiteBackend,
    StoreBackend,
    backend_from_url,
)
from repro.service.jobs import JobResult, VerificationJob

#: How long a transient-failure row stays visible before it lazily expires.
DEFAULT_ERROR_TTL_SECONDS = 300.0

#: Error code of a fleet-wide in-flight claim row (see ``try_claim``).
CLAIM_ERROR_CODE = "in-flight"

#: How long a claim row blocks duplicate execution before a dead claimer's
#: claim can be taken over.  Bounds the damage of a node crashing mid-job:
#: other nodes re-execute after at most this long.
DEFAULT_CLAIM_TTL_SECONDS = 120.0


class StoreStats:
    """Monotonic per-store counters, exposed as ``repro_store_*`` metrics.

    Counting happens at the store layer (not the backend) so every backend
    gets the same instrumentation for free; all fields only ever increase.
    """

    __slots__ = ("gets", "hits", "misses", "puts", "error_puts", "evictions", "ttl_expirations")

    def __init__(self) -> None:
        self.gets = 0
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.error_puts = 0
        self.evictions = 0
        self.ttl_expirations = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "gets": self.gets,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "error_puts": self.error_puts,
            "evictions": self.evictions,
            "ttl_expirations": self.ttl_expirations,
        }


class ResultStore:
    """A fingerprint-keyed verdict store over a pluggable backend.

    Parameters
    ----------
    path:
        Database file for the default SQLite backend; ``":memory:"`` (the
        default) keeps the store process-local, which is what the tests and
        one-shot batches use.  Ignored when ``backend`` is given.
    backend:
        Explicit :class:`StoreBackend`; overrides ``path``.
    ttl_seconds:
        Optional time-to-live; entries older than this read as missing.
    max_entries:
        Optional cap; writes evict oldest entries beyond it.
    """

    def __init__(
        self,
        path: Union[str, Path] = ":memory:",
        *,
        backend: Optional[StoreBackend] = None,
        ttl_seconds: Optional[float] = None,
        max_entries: Optional[int] = None,
    ) -> None:
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive when set")
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 when set")
        self._backend: StoreBackend = backend if backend is not None else SQLiteBackend(path)
        self._ttl_seconds = ttl_seconds
        self._max_entries = max_entries
        self.stats = StoreStats()

    @classmethod
    def in_memory(
        cls,
        ttl_seconds: Optional[float] = None,
        max_entries: Optional[int] = None,
    ) -> "ResultStore":
        """A store over the dictionary backend (no SQLite, no persistence)."""
        return cls(backend=MemoryBackend(), ttl_seconds=ttl_seconds, max_entries=max_entries)

    @classmethod
    def from_url(
        cls,
        spec: Union[str, Path],
        *,
        ttl_seconds: Optional[float] = None,
        max_entries: Optional[int] = None,
        token: Optional[str] = None,
    ) -> "ResultStore":
        """A store over whatever backend the URL-style ``spec`` names.

        ``memory:``, ``sqlite:PATH``, ``http://HOST:PORT`` (a ``repro store
        serve`` keyspace, reached through
        :class:`~repro.service.client.HTTPBackend` with ``token`` attached)
        or a bare SQLite path -- the one addressing scheme every CLI
        ``--store`` flag accepts.
        """
        return cls(
            backend=backend_from_url(spec, token=token),
            ttl_seconds=ttl_seconds,
            max_entries=max_entries,
        )

    @property
    def path(self) -> str:
        """Backend location tag (the SQLite path, or the backend name)."""
        return getattr(self._backend, "path", self._backend.name)

    @property
    def backend(self) -> StoreBackend:
        return self._backend

    @property
    def ttl_seconds(self) -> Optional[float]:
        return self._ttl_seconds

    # -- core operations ---------------------------------------------------------

    def _fresh_row(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The backend row if present and unexpired; lazily deletes stale rows."""
        row = self._backend.get(fingerprint)
        if row is None:
            return None
        now = time.time()
        expires_at = row.get("expires_at")
        expired = expires_at is not None and now > expires_at
        if not expired and self._ttl_seconds is not None:
            expired = row["created_at"] < now - self._ttl_seconds
        if expired:
            if self._backend.delete(fingerprint):
                self.stats.ttl_expirations += 1
            return None
        return row

    def get(self, fingerprint: str, include_errors: bool = False) -> Optional[JobResult]:
        """The stored result for a fingerprint, marked ``cached=True``.

        Non-cacheable rows (transient failures recorded by
        :meth:`put_error`) read as misses unless ``include_errors`` is set:
        an error must never be served where a verdict is expected, and a
        resubmitted job must re-execute.
        """
        self.stats.gets += 1
        row = self._fresh_row(fingerprint)
        if row is None or (not row.get("cacheable", 1) and not include_errors):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        trace_json = row.get("trace")
        error = row.get("error")
        return JobResult(
            fingerprint=row["fingerprint"],
            label=row["label"],
            nonempty=bool(row["nonempty"]) if error is None else None,
            exhausted=bool(row["exhausted"]) if error is None else False,
            elapsed_seconds=row["elapsed_seconds"],
            witness_size=row["witness_size"],
            run_length=row["run_length"],
            statistics=json.loads(row["statistics"]),
            cached=True,
            wall_seconds=row.get("wall_seconds"),
            created_at=row["created_at"],
            trace=json.loads(trace_json) if trace_json else None,
            error=error,
            error_code=row.get("error_code"),
            certificate=row.get("certificate"),
        )

    def put(self, job: VerificationJob, result: JobResult) -> None:
        """Store a completed verdict (errored results are rejected).

        Transient failures go through :meth:`put_error` instead, which
        marks them non-cacheable -- they are *never* valid warm verdicts.
        """
        if not result.ok or result.nonempty is None:
            raise ValueError("only completed results belong in the store")
        faults.raise_point("store.put", key=result.fingerprint)
        trace_json = (
            json.dumps(result.trace, sort_keys=True) if result.trace is not None else None
        )
        certificate = result.certificate
        if trace_json is None or certificate is None:
            # An artifact-less rewrite (e.g. the coordinator's write-back of
            # a result forwarded by a runner sharing this keyspace) must not
            # clobber a trace/certificate another node recorded for the same
            # verdict.  Both artifacts are deterministic in the fingerprint,
            # so carrying them forward is always sound.
            existing = self._backend.get(result.fingerprint)
            if existing is not None and not existing.get("error_code"):
                if trace_json is None:
                    trace_json = existing.get("trace")
                if certificate is None:
                    certificate = existing.get("certificate")
        self._backend.put(
            result.fingerprint,
            {
                "fingerprint": result.fingerprint,
                "created_at": time.time(),
                "label": result.label,
                "nonempty": int(result.nonempty),
                "exhausted": int(result.exhausted),
                "elapsed_seconds": result.elapsed_seconds,
                "witness_size": result.witness_size,
                "run_length": result.run_length,
                "statistics": json.dumps(result.statistics, sort_keys=True),
                "job_spec": job.canonical_json(),
                "wall_seconds": result.wall_seconds,
                "trace": trace_json,
                "error": None,
                "error_code": None,
                "cacheable": 1,
                "expires_at": None,
                "certificate": certificate,
            },
        )
        self.stats.puts += 1
        self._evict_excess()

    def put_error(
        self,
        job: VerificationJob,
        result: JobResult,
        ttl_seconds: float = DEFAULT_ERROR_TTL_SECONDS,
    ) -> None:
        """Record a transient failure as a short-lived, non-cacheable row.

        The row documents *why* the fingerprint most recently failed (for
        ``GET /v1/jobs/{fingerprint}`` style inspection) without ever being
        served as a verdict: ``get`` skips it and the job re-executes on
        resubmission.  A later successful :meth:`put` simply overwrites it.
        """
        if result.error is None:
            raise ValueError("put_error requires an errored result")
        if ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive")
        now = time.time()
        self._backend.put(
            result.fingerprint,
            {
                "fingerprint": result.fingerprint,
                "created_at": now,
                "label": result.label,
                "nonempty": 0,
                "exhausted": 0,
                "elapsed_seconds": result.elapsed_seconds,
                "witness_size": None,
                "run_length": None,
                "statistics": json.dumps(result.statistics, sort_keys=True),
                "job_spec": job.canonical_json(),
                "wall_seconds": result.wall_seconds,
                "trace": None,
                "error": result.error,
                "error_code": result.error_code,
                "cacheable": 0,
                "expires_at": now + ttl_seconds,
                "certificate": None,
            },
        )
        self.stats.error_puts += 1
        self._evict_excess()

    # -- fleet-wide in-flight claims ----------------------------------------------

    @property
    def is_shared(self) -> bool:
        """True when the backend is a remote keyspace other nodes also use."""
        return str(self._backend.name).startswith(("http://", "https://"))

    def _claim_row(self, job: VerificationJob, owner: str, ttl_seconds: float) -> Dict[str, Any]:
        now = time.time()
        return {
            "fingerprint": job.fingerprint,
            "created_at": now,
            "label": job.label,
            "nonempty": 0,
            "exhausted": 0,
            "elapsed_seconds": 0.0,
            "witness_size": None,
            "run_length": None,
            "statistics": "{}",
            "job_spec": job.canonical_json(),
            "wall_seconds": None,
            "trace": None,
            "error": owner,
            "error_code": CLAIM_ERROR_CODE,
            "cacheable": 0,
            "expires_at": now + ttl_seconds,
            "certificate": None,
        }

    def try_claim(
        self,
        job: VerificationJob,
        owner: str = "",
        ttl_seconds: float = DEFAULT_CLAIM_TTL_SECONDS,
    ) -> bool:
        """Atomically claim ``job``'s fingerprint for execution fleet-wide.

        The claim is a short-lived non-cacheable row (``error_code
        "in-flight"``, ``error`` = ``owner``): invisible to the warm path,
        but its presence tells every other node sharing the backend that the
        fingerprint is already being executed.  Returns True when this call
        won the claim (caller executes, then ``put`` overwrites the claim
        with the verdict); False when a live verdict or another node's live
        claim exists (caller polls ``get`` instead of executing).

        Dead claimers cannot wedge the fleet: an expired claim -- or any
        expired row, e.g. an old transient-failure record -- is taken over
        via compare-and-put, keyed on the ``created_at`` we just read so two
        takeover racers cannot both win.
        """
        if ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive")
        row = self._claim_row(job, owner, ttl_seconds)
        if self._backend.put_if_absent(job.fingerprint, row):
            return True
        current = self._backend.get(job.fingerprint)
        if current is None:
            # The competing row vanished between the two calls (expired and
            # reaped, or deleted); one more absent-insert decides it.
            return self._backend.put_if_absent(job.fingerprint, row)
        now = time.time()
        expires_at = current.get("expires_at")
        expired = expires_at is not None and now > expires_at
        if not expired and self._ttl_seconds is not None:
            expired = current["created_at"] < now - self._ttl_seconds
        if expired or (
            not current.get("cacheable", 1)
            and current.get("error_code") != CLAIM_ERROR_CODE
        ):
            # Stale row, or a live transient-failure record (which a
            # resubmission is allowed to overwrite by re-executing).
            return self._backend.compare_and_put(
                job.fingerprint, row, current["created_at"]
            )
        return False

    def release_claim(self, fingerprint: str, owner: str = "") -> bool:
        """Drop ``owner``'s claim without writing a verdict (failure paths).

        Only removes a row that still *is* this owner's claim; a verdict or
        another node's claim written since is left untouched.
        """
        current = self._backend.get(fingerprint)
        if (
            current is not None
            and not current.get("cacheable", 1)
            and current.get("error_code") == CLAIM_ERROR_CODE
            and current.get("error") == owner
        ):
            return self._backend.delete(fingerprint)
        return False

    def _evict_excess(self) -> None:
        if self._max_entries is None:
            return
        excess = self._backend.count() - self._max_entries
        if excess > 0:
            for key in self._backend.oldest_keys(excess):
                if self._backend.delete(key):
                    self.stats.evictions += 1

    def purge_expired(self) -> int:
        """Eagerly delete every expired entry; returns the number removed."""
        if self._ttl_seconds is None:
            return 0
        removed = 0
        for key in self._backend.expired_keys(time.time() - self._ttl_seconds):
            if self._backend.delete(key):
                removed += 1
        self.stats.ttl_expirations += removed
        return removed

    def __contains__(self, fingerprint: object) -> bool:
        if not isinstance(fingerprint, str):
            return False
        return self._fresh_row(fingerprint) is not None

    def __len__(self) -> int:
        # Purge first so counts agree with get()/__contains__ semantics:
        # an expired entry must never be reported as present anywhere.
        self.purge_expired()
        return self._backend.count()

    def fingerprints(self) -> Iterator[str]:
        self.purge_expired()
        yield from self._backend.keys()

    def clear(self) -> int:
        """Delete every stored result; returns the number removed."""
        return self._backend.clear()

    # -- export -------------------------------------------------------------------

    def export(self) -> Dict[str, Any]:
        """A JSON-ready dump of the whole store (verdicts + specs)."""
        self.purge_expired()
        entries = []
        for row in self._backend.rows():
            entries.append(
                {
                    "fingerprint": row["fingerprint"],
                    "created_at": row["created_at"],
                    "label": row["label"],
                    "nonempty": bool(row["nonempty"]),
                    "exhausted": bool(row["exhausted"]),
                    "elapsed_seconds": row["elapsed_seconds"],
                    "witness_size": row["witness_size"],
                    "run_length": row["run_length"],
                    "statistics": json.loads(row["statistics"]),
                    "job_spec": json.loads(row["job_spec"]),
                    "wall_seconds": row.get("wall_seconds"),
                    "has_trace": bool(row.get("trace")),
                    "has_certificate": bool(row.get("certificate")),
                    "error": row.get("error"),
                    "error_code": row.get("error_code"),
                    "cacheable": bool(row.get("cacheable", 1)),
                }
            )
        return {
            "schema_version": 4,
            "backend": self._backend.name,
            "ttl_seconds": self._ttl_seconds,
            "count": len(entries),
            "results": entries,
        }

    def export_json(self, path: Union[str, Path]) -> None:
        """Write :meth:`export` to a file."""
        Path(path).write_text(json.dumps(self.export(), indent=2) + "\n")

    # -- lifecycle ----------------------------------------------------------------

    def checkpoint(self) -> None:
        """Flush buffered writes to durable storage (graceful-drain hook)."""
        self._backend.checkpoint()

    def close(self) -> None:
        self._backend.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
