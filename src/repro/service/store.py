"""The persistent, fingerprint-keyed result store.

Verdicts of the decision procedure are pure functions of the job fingerprint
(see :mod:`repro.service.jobs`), so the store is a plain key-value table:
``fingerprint -> (verdict, engine statistics, witness summary, job spec)``.
SQLite keeps it dependency-free and safe for the batch runner's access
pattern (the parent process is the only writer; workers never touch the
store).  ``export_json`` renders the whole table for offline analysis and
the benchmark pipeline.

Errored and timed-out jobs are deliberately **not** stored: a missing entry
means "never decided", so transient failures are retried on the next batch
instead of being cached forever.
"""

from __future__ import annotations

import json
import sqlite3
import time
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from repro.service.jobs import JobResult, VerificationJob

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    fingerprint TEXT PRIMARY KEY,
    created_at REAL NOT NULL,
    label TEXT NOT NULL DEFAULT '',
    nonempty INTEGER NOT NULL,
    exhausted INTEGER NOT NULL,
    elapsed_seconds REAL NOT NULL,
    witness_size INTEGER,
    run_length INTEGER,
    statistics TEXT NOT NULL,
    job_spec TEXT NOT NULL
)
"""


class ResultStore:
    """A fingerprint-keyed verdict store backed by SQLite.

    Parameters
    ----------
    path:
        Database file; ``":memory:"`` (the default) keeps the store
        process-local, which is what the tests and one-shot batches use.
    """

    def __init__(self, path: Union[str, Path] = ":memory:") -> None:
        self._path = str(path)
        self._connection = sqlite3.connect(self._path)
        self._connection.execute(_SCHEMA)
        self._connection.commit()

    @property
    def path(self) -> str:
        return self._path

    # -- core operations ---------------------------------------------------------

    def get(self, fingerprint: str) -> Optional[JobResult]:
        """The stored result for a fingerprint, marked ``cached=True``."""
        row = self._connection.execute(
            "SELECT fingerprint, label, nonempty, exhausted, elapsed_seconds, "
            "witness_size, run_length, statistics FROM results WHERE fingerprint = ?",
            (fingerprint,),
        ).fetchone()
        if row is None:
            return None
        return JobResult(
            fingerprint=row[0],
            label=row[1],
            nonempty=bool(row[2]),
            exhausted=bool(row[3]),
            elapsed_seconds=row[4],
            witness_size=row[5],
            run_length=row[6],
            statistics=json.loads(row[7]),
            cached=True,
        )

    def put(self, job: VerificationJob, result: JobResult) -> None:
        """Store a completed result (errored results are rejected)."""
        if not result.ok or result.nonempty is None:
            raise ValueError("only completed results belong in the store")
        self._connection.execute(
            "INSERT OR REPLACE INTO results "
            "(fingerprint, created_at, label, nonempty, exhausted, elapsed_seconds, "
            "witness_size, run_length, statistics, job_spec) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                result.fingerprint,
                time.time(),
                result.label,
                int(result.nonempty),
                int(result.exhausted),
                result.elapsed_seconds,
                result.witness_size,
                result.run_length,
                json.dumps(result.statistics, sort_keys=True),
                job.canonical_json(),
            ),
        )
        self._connection.commit()

    def __contains__(self, fingerprint: object) -> bool:
        if not isinstance(fingerprint, str):
            return False
        row = self._connection.execute(
            "SELECT 1 FROM results WHERE fingerprint = ?", (fingerprint,)
        ).fetchone()
        return row is not None

    def __len__(self) -> int:
        (count,) = self._connection.execute("SELECT COUNT(*) FROM results").fetchone()
        return count

    def fingerprints(self) -> Iterator[str]:
        for (fingerprint,) in self._connection.execute(
            "SELECT fingerprint FROM results ORDER BY fingerprint"
        ):
            yield fingerprint

    def clear(self) -> int:
        """Delete every stored result; returns the number removed."""
        removed = len(self)
        self._connection.execute("DELETE FROM results")
        self._connection.commit()
        return removed

    # -- export -------------------------------------------------------------------

    def export(self) -> Dict[str, Any]:
        """A JSON-ready dump of the whole store (verdicts + specs)."""
        entries = []
        for row in self._connection.execute(
            "SELECT fingerprint, created_at, label, nonempty, exhausted, "
            "elapsed_seconds, witness_size, run_length, statistics, job_spec "
            "FROM results ORDER BY fingerprint"
        ):
            entries.append(
                {
                    "fingerprint": row[0],
                    "created_at": row[1],
                    "label": row[2],
                    "nonempty": bool(row[3]),
                    "exhausted": bool(row[4]),
                    "elapsed_seconds": row[5],
                    "witness_size": row[6],
                    "run_length": row[7],
                    "statistics": json.loads(row[8]),
                    "job_spec": json.loads(row[9]),
                }
            )
        return {"schema_version": 1, "count": len(entries), "results": entries}

    def export_json(self, path: Union[str, Path]) -> None:
        """Write :meth:`export` to a file."""
        Path(path).write_text(json.dumps(self.export(), indent=2) + "\n")

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
