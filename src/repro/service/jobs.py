"""Verification jobs and their deterministic fingerprints.

A :class:`VerificationJob` bundles everything the decision procedure of
Theorem 5 consumes -- a system, a database theory, a search strategy and the
engine's resource limit.  The procedure is pure and deterministic in these
inputs, so a job is identified by a *fingerprint*: a SHA-256 digest of the
canonical JSON rendering of the job spec.  The spec rendering reuses the
canonical serializations of the engine core (sorted domains and tuples for
structures, sorted symbol tables for schemas, the parser-stable textual
syntax for guards), so equal jobs fingerprint equally in every process --
which is what lets the :class:`~repro.service.store.ResultStore` act as a
cross-process verdict cache.
"""

from __future__ import annotations

import hashlib
import json
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.certify import build_certificate, encode_certificate
from repro.fraisse.base import DatabaseTheory
from repro.fraisse.engine import EmptinessSolver
from repro.service.specs import theory_from_spec, theory_to_spec
from repro.systems.dds import DatabaseDrivenSystem
from repro.telemetry import TraceRecorder

#: Default engine configuration cap for service jobs: far below the library
#: default because batches run hundreds of heterogeneous jobs and a single
#: pathological instance must not stall the whole batch.
DEFAULT_JOB_MAX_CONFIGURATIONS = 20_000

#: Job-level error codes and what they mean.  The retry policy keys off
#: these: transient infrastructure failures are retryable, deterministic
#: failures of the job itself are not (retrying would reproduce them).
JOB_ERROR_CODES = {
    "timeout": "the in-worker wall-clock budget elapsed mid-run (retryable)",
    "deadline-exceeded": (
        "the parent-side deadline (timeout + grace) elapsed with no result; "
        "the worker was killed (retryable)"
    ),
    "worker-crashed": "the worker process died mid-job (retryable)",
    "store-io": "a store write failed after the verdict was computed (retryable)",
    "spec-error": "the job spec could not be rebuilt into a runnable job (not retryable)",
    "engine-error": "the engine raised while deciding the job (not retryable)",
    "runner-error": "the batch runner itself failed before producing results (not retryable)",
    "runner-unavailable": (
        "the coordinator could not reach any runner for the job's shard; "
        "the job was not executed (retryable at the client once a runner returns)"
    ),
}

#: Error codes the default :class:`~repro.service.runner.RetryPolicy`
#: considers transient.
RETRYABLE_ERROR_CODES = frozenset(
    {"timeout", "deadline-exceeded", "worker-crashed", "store-io"}
)


@dataclass(frozen=True)
class VerificationJob:
    """One emptiness query: ``(system, theory, strategy, limits)``."""

    system: DatabaseDrivenSystem
    theory: DatabaseTheory
    strategy: str = "bfs"
    max_configurations: int = DEFAULT_JOB_MAX_CONFIGURATIONS
    label: str = ""
    #: Record a solver trace while executing (opt-in, observability-only).
    trace: bool = False
    #: Build and persist a replayable witness certificate for a nonempty
    #: verdict (opt-in; see :mod:`repro.certify`).
    certificate: bool = False
    #: Per-job retry budget override (extra attempts after the first); None
    #: defers to the runner's :class:`RetryPolicy`.  Execution policy, not
    #: job identity -- excluded from the fingerprint like ``label``/``trace``.
    retries: Optional[int] = None

    def to_spec(self) -> Dict[str, Any]:
        """The JSON-safe wire format of the job (see :meth:`from_spec`)."""
        spec = {
            "system": self.system.to_spec(),
            "theory": theory_to_spec(self.theory),
            "strategy": self.strategy,
            "max_configurations": self.max_configurations,
            "label": self.label,
        }
        if self.trace:
            spec["trace"] = True
        if self.certificate:
            spec["certificate"] = True
        if self.retries is not None:
            spec["retries"] = self.retries
        return spec

    @classmethod
    def from_spec(cls, spec: Mapping[str, Any]) -> "VerificationJob":
        retries = spec.get("retries")
        return cls(
            system=DatabaseDrivenSystem.from_spec(spec["system"]),
            theory=theory_from_spec(spec["theory"]),
            strategy=spec.get("strategy", "bfs"),
            max_configurations=spec.get("max_configurations", DEFAULT_JOB_MAX_CONFIGURATIONS),
            label=spec.get("label", ""),
            trace=bool(spec.get("trace", False)),
            certificate=bool(spec.get("certificate", False)),
            retries=int(retries) if retries is not None else None,
        )

    def canonical_json(self) -> str:
        """The canonical JSON rendering the fingerprint is computed over.

        The label, trace/certificate flags and retry budget are
        presentation/execution policy only and excluded, so relabelling a job
        -- or re-running it traced, certified, or with a different retry
        budget -- does not invalidate its cached verdict.  Memoised: the
        runner needs it several times per job (store lookup, wire payload,
        store write) and the spec serialization walks the whole system.
        """
        cached = self.__dict__.get("_canonical_json")
        if cached is None:
            spec = self.to_spec()
            spec.pop("label", None)
            spec.pop("trace", None)
            spec.pop("certificate", None)
            spec.pop("retries", None)
            cached = json.dumps(spec, sort_keys=True, separators=(",", ":"))
            object.__setattr__(self, "_canonical_json", cached)
        return cached

    @property
    def fingerprint(self) -> str:
        """SHA-256 over :meth:`canonical_json`; stable across processes."""
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            cached = hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()
            object.__setattr__(self, "_fingerprint", cached)
        return cached


@dataclass
class JobResult:
    """Outcome of executing (or cache-serving) one job.

    ``nonempty`` is None when the job errored or timed out; ``error`` then
    carries the reason.  ``cached`` marks results served from the store
    without running the engine.
    """

    fingerprint: str
    label: str = ""
    nonempty: Optional[bool] = None
    exhausted: bool = False
    statistics: Dict[str, Any] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    error: Optional[str] = None
    #: Machine-readable failure class (a :data:`JOB_ERROR_CODES` key) when
    #: ``error`` is set; the retry policy classifies on this, never on the
    #: human-readable message.
    error_code: Optional[str] = None
    #: How many execution attempts this result consumed (1 = first try).
    attempts: int = 1
    cached: bool = False
    witness_size: Optional[int] = None
    run_length: Optional[int] = None
    #: End-to-end wall clock as the executing worker saw it: spec rebuild,
    #: plan priming and the engine run (``elapsed_seconds`` is engine-only).
    wall_seconds: Optional[float] = None
    #: When the stored verdict row was created (set on store reads).
    created_at: Optional[float] = None
    #: Recorded solver trace (:meth:`TraceRecorder.as_dict`) when the job
    #: asked for one; served via its own endpoint, never inlined here.
    trace: Optional[Dict[str, Any]] = None
    #: Encoded witness certificate (:func:`repro.certify.encode_certificate`)
    #: when the job asked for one and the verdict is nonempty; served via the
    #: witness endpoint, never inlined here.
    certificate: Optional[str] = None
    #: Engine counter deltas measured in a pool worker, merged into the
    #: parent's telemetry and stripped before the result is stored/served.
    worker_counters: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "label": self.label,
            "nonempty": self.nonempty,
            "exhausted": self.exhausted,
            "statistics": self.statistics,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "error": self.error,
            "error_code": self.error_code,
            "attempts": self.attempts,
            "cached": self.cached,
            "witness_size": self.witness_size,
            "run_length": self.run_length,
            "wall_seconds": (
                round(self.wall_seconds, 6) if self.wall_seconds is not None else None
            ),
            "created_at": self.created_at,
            "has_trace": self.trace is not None,
            "has_certificate": self.certificate is not None,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "JobResult":
        """Rebuild a result from its :meth:`as_dict` wire form.

        The coordinator uses this to reconstitute results forwarded by
        runner nodes.  ``has_trace``/``has_certificate`` are presentation-only
        (traces and witness certificates travel via their own endpoints) and
        drop away; unknown keys are ignored so a newer runner can answer an
        older coordinator.
        """
        nonempty = payload.get("nonempty")
        return cls(
            fingerprint=payload["fingerprint"],
            label=payload.get("label", ""),
            nonempty=bool(nonempty) if nonempty is not None else None,
            exhausted=bool(payload.get("exhausted", False)),
            statistics=dict(payload.get("statistics") or {}),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            error=payload.get("error"),
            error_code=payload.get("error_code"),
            attempts=int(payload.get("attempts", 1)),
            cached=bool(payload.get("cached", False)),
            witness_size=payload.get("witness_size"),
            run_length=payload.get("run_length"),
            wall_seconds=payload.get("wall_seconds"),
            created_at=payload.get("created_at"),
        )


class JobTimeout(Exception):
    """Raised inside a worker when a job exceeds its wall-clock budget."""


def execute_job(job: VerificationJob, timeout_seconds: Optional[float] = None) -> JobResult:
    """Run one job to completion, capturing errors and (on Unix) timeouts.

    The timeout uses ``SIGALRM`` and therefore only fires when executing on
    the main thread of a (worker) process; elsewhere it is silently skipped
    and the engine's ``max_configurations`` cap remains the only bound.
    """
    fingerprint = job.fingerprint
    start = time.perf_counter()
    use_alarm = bool(timeout_seconds) and hasattr(signal, "SIGALRM")
    previous_handler = None
    if use_alarm:
        def _on_alarm(signum, frame):
            raise JobTimeout(f"job exceeded {timeout_seconds}s")

        try:
            previous_handler = signal.signal(signal.SIGALRM, _on_alarm)
            signal.setitimer(signal.ITIMER_REAL, float(timeout_seconds))
        except ValueError:  # not on the main thread
            use_alarm = False
    try:
        solver = EmptinessSolver(
            job.theory,
            max_configurations=job.max_configurations,
            strategy=job.strategy,
        )
        recorder = TraceRecorder() if job.trace else None
        result = solver.check(job.system, trace=recorder)
        certificate = None
        if job.certificate and result.run is not None:
            certificate = encode_certificate(
                build_certificate(job.system, job.theory, result)
            )
        return JobResult(
            fingerprint=fingerprint,
            label=job.label,
            nonempty=result.nonempty,
            exhausted=result.exhausted,
            statistics=result.statistics.as_dict(),
            elapsed_seconds=time.perf_counter() - start,
            witness_size=(
                result.run.database.size if result.run is not None else None
            ),
            run_length=result.run.length if result.run is not None else None,
            trace=recorder.as_dict() if recorder is not None else None,
            certificate=certificate,
        )
    except JobTimeout as exc:
        return JobResult(
            fingerprint=fingerprint,
            label=job.label,
            elapsed_seconds=time.perf_counter() - start,
            error=f"timeout: {exc}",
            error_code="timeout",
        )
    except Exception as exc:  # noqa: BLE001 - batch jobs must not kill the runner
        return JobResult(
            fingerprint=fingerprint,
            label=job.label,
            elapsed_seconds=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
            # Engine/library exceptions are deterministic in the job spec:
            # retrying reproduces them, so they classify as non-retryable.
            error_code="engine-error",
        )
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            if previous_handler is not None:
                signal.signal(signal.SIGALRM, previous_handler)
