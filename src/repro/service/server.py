"""The async HTTP front door: ``repro serve``.

An ``asyncio`` HTTP/1.1 service (stdlib only, matching the repository's
zero-dependency rule) that turns the batch verification service into an
always-on endpoint.  Three properties make it safe to put in front of heavy
duplicate-rich traffic:

* **Store-first.**  Every job is looked up in the
  :class:`~repro.service.store.ResultStore` before any work is scheduled;
  cached verdicts are served without touching a worker.
* **In-flight fingerprint dedup.**  Identical jobs submitted concurrently
  share one engine execution: the first submission registers an
  ``asyncio.Future`` per fingerprint, later submissions await that future
  instead of executing.  Combined with the store this guarantees each
  fingerprint runs the engine at most once per server lifetime (TTL expiry
  aside), no matter how many clients ask.
* **Non-blocking execution.**  Fresh jobs run through the existing
  :class:`~repro.service.runner.BatchRunner` worker pool, bridged off the
  event loop with ``run_in_executor``; per-job completions are marshalled
  back with ``call_soon_threadsafe``, so batch progress streams while the
  pool is still working.

Wire format -- the canonical JSON job specs of :mod:`repro.service.jobs`:

* ``POST /jobs`` with a single spec object decides one job and returns its
  result; with ``{"jobs": [spec, ...]}`` it runs a batch (``"wait": false``
  returns ``202`` immediately with a batch id).  A spec may carry an
  optional client-computed ``"fingerprint"``, which the server verifies
  against its own canonical fingerprint (``409`` on mismatch).
* ``GET /jobs/{fingerprint}`` serves a stored verdict (``404`` if absent).
* ``GET /batch/{id}`` reports batch status; ``GET /batch/{id}/events``
  streams batch progress as NDJSON, replaying past events then following
  live until the batch completes.
* ``GET /healthz`` and ``GET /stats`` are for probes and dashboards.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import threading
import time
import uuid
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from http import HTTPStatus
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import ReproError
from repro.service.jobs import JobResult, VerificationJob
from repro.service.runner import BatchReport, BatchRunner
from repro.service.store import ResultStore

#: Reject request bodies beyond this size (a light DoS guard; generated
#: batch specs run a few KB per job).
MAX_BODY_BYTES = 32 * 1024 * 1024

#: Completed batch records kept for /batch/{id} lookups before eviction.
MAX_BATCH_RECORDS = 128

#: Budget for reading one request's header block and body; connections
#: that dribble or stall (slowloris) are dropped when it elapses.
READ_TIMEOUT_SECONDS = 30.0


class ApiError(Exception):
    """An HTTP-mappable request failure (status, machine code, message)."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message


@dataclass
class ServiceStats:
    """Monotonic counters surfaced by ``GET /stats``."""

    jobs_received: int = 0
    executed: int = 0
    store_hits: int = 0
    inflight_joins: int = 0
    batch_dedup: int = 0
    batches: int = 0
    rejected: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class BatchRecord:
    """Progress state of one submitted batch: events, waiters, final report."""

    def __init__(self, batch_id: str, size: int) -> None:
        self.batch_id = batch_id
        self.size = size
        self.created_at = time.time()
        self.completed = False
        self.report: Optional[Dict[str, Any]] = None
        self.events: List[Dict[str, Any]] = []
        self._waiters: List[asyncio.Future] = []

    def emit(self, event: Dict[str, Any]) -> None:
        self.events.append({"ts": round(time.time(), 3), "batch_id": self.batch_id, **event})
        self._wake()

    def finish(self, report: Dict[str, Any]) -> None:
        self.report = report
        self.completed = True
        self.emit(
            {
                "event": "batch_done",
                **{
                    key: report[key]
                    for key in (
                        "jobs",
                        "executed",
                        "store_hits",
                        "inflight_joins",
                        "batch_dedup",
                        "elapsed_seconds",
                        "verdict_counts",
                    )
                },
            }
        )

    def _wake(self) -> None:
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            if not waiter.done():
                waiter.set_result(None)

    async def wait_change(self) -> None:
        """Block until the next event (or completion) lands."""
        waiter = asyncio.get_running_loop().create_future()
        self._waiters.append(waiter)
        await waiter

    async def wait_completed(self) -> None:
        while not self.completed:
            await self.wait_change()


class VerificationService:
    """The service core: dedup, store, executor bridge, HTTP handling.

    Parameters
    ----------
    store:
        Optional :class:`ResultStore` serving cached verdicts; written to
        only from the event-loop thread (the single-writer discipline the
        store's SQLite backend expects).
    workers:
        Worker processes of the backing :class:`BatchRunner` pool.
    timeout_seconds:
        Per-job wall-clock budget, enforced inside pool workers (Unix only,
        and only when ``workers > 1`` -- single-worker execution runs on an
        executor thread where ``SIGALRM`` cannot fire).
    execute_delay:
        Artificial pre-execution delay in seconds.  A test/benchmark aid:
        it widens the in-flight window so concurrent duplicate submissions
        demonstrably share one execution.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        workers: int = 1,
        timeout_seconds: Optional[float] = None,
        execute_delay: float = 0.0,
    ) -> None:
        self._store = store
        self._workers = workers
        self._runner = BatchRunner(workers=workers, timeout_seconds=timeout_seconds)
        self._executor = ThreadPoolExecutor(
            max_workers=max(4, workers), thread_name_prefix="repro-serve"
        )
        self._execute_delay = execute_delay
        self._inflight: Dict[str, asyncio.Future] = {}
        self._batches: "OrderedDict[str, BatchRecord]" = OrderedDict()
        self._batch_tasks: set = set()
        self.stats = ServiceStats()
        self._server: Optional[asyncio.AbstractServer] = None

    # -- job parsing -------------------------------------------------------------

    def parse_job(self, payload: Any, index: Optional[int] = None) -> VerificationJob:
        """Build a job from one wire spec, verifying any client fingerprint."""
        where = f"jobs[{index}]" if index is not None else "job"
        if not isinstance(payload, Mapping):
            raise ApiError(400, "invalid-spec", f"{where}: spec must be a JSON object")
        spec = dict(payload)
        claimed = spec.pop("fingerprint", None)
        try:
            job = VerificationJob.from_spec(spec)
            fingerprint = job.fingerprint
        except ReproError as exc:
            raise ApiError(400, "invalid-spec", f"{where}: {exc}") from exc
        except Exception as exc:  # malformed shapes: missing keys, wrong types
            raise ApiError(400, "invalid-spec", f"{where}: {type(exc).__name__}: {exc}") from exc
        if claimed is not None and claimed != fingerprint:
            raise ApiError(
                409,
                "fingerprint-mismatch",
                f"{where}: client fingerprint {str(claimed)[:12]} does not match "
                f"the server's canonical fingerprint {fingerprint[:12]}; the "
                "client's spec serialization is not canonical",
            )
        return job

    # -- resolution core ---------------------------------------------------------

    async def resolve_jobs(
        self, jobs: List[VerificationJob], record: Optional[BatchRecord] = None
    ) -> Tuple[List[Tuple[JobResult, str]], Dict[str, int]]:
        """Decide every job via store / in-flight join / fresh execution.

        Returns results aligned with ``jobs`` as ``(result, served_from)``
        pairs, ``served_from`` being ``"store"``, ``"inflight"``,
        ``"batch-dedup"`` or ``"engine"``, plus the request-level counters.
        """
        loop = asyncio.get_running_loop()
        counters = {
            "executed": 0,
            "store_hits": 0,
            "inflight_joins": 0,
            "batch_dedup": 0,
        }
        slots: List[Optional[Tuple[JobResult, str]]] = [None] * len(jobs)
        joins: List[Tuple[int, asyncio.Future, str]] = []
        fresh: List[Tuple[int, VerificationJob, asyncio.Future]] = []
        fresh_fingerprints: Dict[str, int] = {}
        self.stats.jobs_received += len(jobs)

        def job_done(index: int, result: JobResult, served_from: str) -> None:
            slots[index] = (result, served_from)
            if record is not None:
                record.emit(
                    {
                        "event": "job_done",
                        "index": index,
                        "fingerprint": result.fingerprint,
                        "label": result.label,
                        "served_from": served_from,
                        "ok": result.ok,
                        "nonempty": result.nonempty,
                    }
                )

        for index, job in enumerate(jobs):
            fingerprint = job.fingerprint
            cached = self._store.get(fingerprint) if self._store is not None else None
            if cached is not None:
                cached.label = cached.label or job.label
                counters["store_hits"] += 1
                self.stats.store_hits += 1
                job_done(index, cached, "store")
                continue
            existing = self._inflight.get(fingerprint)
            if existing is not None:
                if fingerprint in fresh_fingerprints:
                    counters["batch_dedup"] += 1
                    self.stats.batch_dedup += 1
                    joins.append((index, existing, "batch-dedup"))
                else:
                    counters["inflight_joins"] += 1
                    self.stats.inflight_joins += 1
                    joins.append((index, existing, "inflight"))
                continue
            future = loop.create_future()
            self._inflight[fingerprint] = future
            fresh_fingerprints[fingerprint] = index
            fresh.append((index, job, future))

        if fresh:
            fresh_jobs = [job for _, job, _ in fresh]

            def settle(local_index: int, result: JobResult) -> None:
                # Runs on the event-loop thread: the only store writer.  The
                # future MUST resolve whatever happens here -- an unresolved
                # in-flight future hangs this request and every later
                # submission of the same fingerprint.
                index, job, future = fresh[local_index]
                try:
                    if self._store is not None and result.ok:
                        self._store.put(job, result)
                except Exception as exc:  # noqa: BLE001 - cache write must not lose a verdict
                    # The verdict is still valid; it just was not cached.
                    print(
                        f"repro serve: store write failed for "
                        f"{job.fingerprint[:12]}: {type(exc).__name__}: {exc}",
                        flush=True,
                    )
                counters["executed"] += 1
                self.stats.executed += 1
                self._inflight.pop(job.fingerprint, None)
                if not future.done():
                    future.set_result(result)
                job_done(index, result, "engine")

            def settle_failure(exc: BaseException) -> None:
                for local_index, (index, job, future) in enumerate(fresh):
                    if future.done():
                        continue
                    result = JobResult(
                        fingerprint=job.fingerprint,
                        label=job.label,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    self._inflight.pop(job.fingerprint, None)
                    future.set_result(result)
                    job_done(index, result, "engine")

            def run_group() -> None:
                # Runs on an executor thread; the loop never blocks on the
                # engine.  Each completion is marshalled back to the loop.
                if self._execute_delay:
                    time.sleep(self._execute_delay)
                try:
                    for local_index, result in self._runner.execute_indexed(fresh_jobs):
                        loop.call_soon_threadsafe(settle, local_index, result)
                except BaseException as exc:  # noqa: BLE001 - becomes errored results
                    loop.call_soon_threadsafe(settle_failure, exc)

            await loop.run_in_executor(self._executor, run_group)
            # The group thread has finished enqueueing settle callbacks;
            # awaiting the futures drains whatever is still queued.
            for _, _, future in fresh:
                await future

        for index, future, served_from in joins:
            result: JobResult = await future
            if jobs[index].label and jobs[index].label != result.label:
                result = dataclasses.replace(result, label=jobs[index].label)
            job_done(index, result, served_from)

        assert all(slot is not None for slot in slots)
        return [slot for slot in slots if slot is not None], counters

    async def run_batch(self, record: BatchRecord, jobs: List[VerificationJob]) -> Dict[str, Any]:
        """Resolve a batch, emitting progress events and the final report.

        Never leaves the record incomplete: a failure finishes it with an
        error report so status lookups and event streams always terminate.
        """
        try:
            return await self._run_batch_inner(record, jobs)
        except BaseException as exc:
            if not record.completed:
                record.finish(
                    {
                        "batch_id": record.batch_id,
                        "jobs": record.size,
                        "workers": self._workers,
                        "executed": 0,
                        "store_hits": 0,
                        "inflight_joins": 0,
                        "batch_dedup": 0,
                        "elapsed_seconds": 0.0,
                        "verdict_counts": {},
                        "results": [],
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                )
            raise

    async def _run_batch_inner(
        self, record: BatchRecord, jobs: List[VerificationJob]
    ) -> Dict[str, Any]:
        start = time.perf_counter()
        record.emit({"event": "batch_accepted", "jobs": len(jobs)})
        resolved, counters = await self.resolve_jobs(jobs, record)
        report = BatchReport(
            results=[result for result, _ in resolved],
            elapsed_seconds=time.perf_counter() - start,
            workers=self._workers,
            cache_hits=counters["store_hits"],
            executed=counters["executed"],
        )
        payload = {
            "batch_id": record.batch_id,
            "jobs": len(jobs),
            "workers": self._workers,
            "executed": counters["executed"],
            "store_hits": counters["store_hits"],
            "inflight_joins": counters["inflight_joins"],
            "batch_dedup": counters["batch_dedup"],
            "elapsed_seconds": round(report.elapsed_seconds, 6),
            "verdict_counts": report.verdict_counts(),
            "results": [
                {**result.as_dict(), "served_from": served_from}
                for result, served_from in resolved
            ],
        }
        record.finish(payload)
        return payload

    def new_batch(self, size: int) -> BatchRecord:
        record = BatchRecord(uuid.uuid4().hex[:12], size)
        self._batches[record.batch_id] = record
        self.stats.batches += 1
        while len(self._batches) > MAX_BATCH_RECORDS:
            # Evict oldest *completed* records only: an in-flight batch's
            # status/events URLs must stay valid until it finishes.
            victim = next((bid for bid, rec in self._batches.items() if rec.completed), None)
            if victim is None:
                break
            del self._batches[victim]
        return record

    # -- HTTP layer --------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 8080) -> Tuple[str, int]:
        """Bind and start serving; returns the (host, port) actually bound."""
        self._server = await asyncio.start_server(self._handle_client, host, port)
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() must be called first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._executor.shutdown(wait=False, cancel_futures=True)

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await asyncio.wait_for(
                self._read_request(reader, writer), timeout=READ_TIMEOUT_SECONDS
            )
            if request is not None:
                await self._dispatch(request, writer)
        except ApiError as error:
            # 404/405 are routine probe answers (cache-miss lookups, evicted
            # batches); "rejected" counts requests the server refused to parse.
            if error.status not in (404, 405):
                self.stats.rejected += 1
            await self._send_json(
                writer,
                error.status,
                {"error": error.code, "message": error.message},
            )
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.TimeoutError):
            pass
        except Exception as exc:  # noqa: BLE001 - a request must not kill the server
            try:
                await self._send_json(
                    writer,
                    500,
                    {"error": "internal", "message": f"{type(exc).__name__}: {exc}"},
                )
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Optional[Tuple[str, str, str, Dict[str, str], bytes]]:
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise ApiError(400, "bad-request", "malformed HTTP request line")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        raw_length = headers.get("content-length", "0") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            raise ApiError(400, "bad-request", f"bad Content-Length {raw_length!r}") from None
        if length < 0:
            raise ApiError(400, "bad-request", f"bad Content-Length {raw_length!r}")
        if length > MAX_BODY_BYTES:
            raise ApiError(413, "payload-too-large", f"body exceeds {MAX_BODY_BYTES} bytes")
        if headers.get("expect", "").lower() == "100-continue":
            # curl sends this for bodies over ~1KB (every real batch spec)
            # and waits up to a second for the interim response.
            writer.write(b"HTTP/1.1 100 Continue\r\n\r\n")
            await writer.drain()
        body = await reader.readexactly(length) if length else b""
        path, _, query = target.partition("?")
        return method, path, query, headers, body

    async def _dispatch(
        self,
        request: Tuple[str, str, str, Dict[str, str], bytes],
        writer: asyncio.StreamWriter,
    ) -> None:
        method, path, _query, _headers, body = request
        if path == "/healthz" and method == "GET":
            from repro import __version__  # deferred: repro imports this package

            await self._send_json(
                writer,
                200,
                {
                    "status": "ok",
                    "version": __version__,
                    "workers": self._workers,
                    "store": self._store.path if self._store is not None else None,
                    "inflight": len(self._inflight),
                },
            )
        elif path == "/stats" and method == "GET":
            payload = {
                **self.stats.as_dict(),
                "inflight": len(self._inflight),
                # Raw backend count: len(store) would run a TTL purge scan
                # per poll, too heavy for a monitoring endpoint.
                "store_size": self._store.backend.count() if self._store is not None else None,
            }
            await self._send_json(writer, 200, payload)
        elif path == "/jobs" and method == "POST":
            await self._handle_jobs(body, writer)
        elif path.startswith("/jobs/") and method == "GET":
            await self._handle_job_lookup(path[len("/jobs/") :], writer)
        elif path.startswith("/batch/") and method == "GET":
            rest = path[len("/batch/") :]
            if rest.endswith("/events"):
                await self._handle_batch_events(rest[: -len("/events")].rstrip("/"), writer)
            else:
                await self._handle_batch_status(rest, writer)
        elif path in ("/jobs", "/stats", "/healthz") or path.startswith(("/jobs/", "/batch/")):
            raise ApiError(405, "method-not-allowed", f"{method} not supported on {path}")
        else:
            raise ApiError(404, "not-found", f"unknown path {path}")

    def _parse_body(self, body: bytes) -> Any:
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ApiError(400, "invalid-json", f"request body is not valid JSON: {exc}") from exc

    async def _handle_jobs(self, body: bytes, writer: asyncio.StreamWriter) -> None:
        payload = self._parse_body(body)
        if isinstance(payload, Mapping) and "jobs" in payload:
            specs = payload["jobs"]
            if not isinstance(specs, list) or not specs:
                raise ApiError(400, "invalid-spec", '"jobs" must be a non-empty array')
            wait = payload.get("wait", True)
            if not isinstance(wait, bool):
                raise ApiError(400, "invalid-spec", '"wait" must be a boolean')
            jobs = [self.parse_job(spec, index) for index, spec in enumerate(specs)]
            record = self.new_batch(len(jobs))
            task = asyncio.get_running_loop().create_task(self.run_batch(record, jobs))
            # Keep a strong reference (the loop only holds weak ones) and
            # retrieve the exception of detached wait:false tasks.
            self._batch_tasks.add(task)
            task.add_done_callback(self._reap_batch_task)
            if wait:
                await self._send_json(writer, 200, await task)
            else:
                await self._send_json(
                    writer,
                    202,
                    {
                        "batch_id": record.batch_id,
                        "jobs": len(jobs),
                        "status": "accepted",
                        "status_url": f"/batch/{record.batch_id}",
                        "events_url": f"/batch/{record.batch_id}/events",
                    },
                )
        elif isinstance(payload, Mapping):
            job = self.parse_job(payload)
            resolved, _counters = await self.resolve_jobs([job])
            result, served_from = resolved[0]
            await self._send_json(
                writer,
                200,
                {
                    "served_from": served_from,
                    "fingerprint": result.fingerprint,
                    "result": result.as_dict(),
                },
            )
        else:
            raise ApiError(
                400, "invalid-spec", 'body must be a job spec object or {"jobs": [...]}'
            )

    def _reap_batch_task(self, task: "asyncio.Task") -> None:
        self._batch_tasks.discard(task)
        if not task.cancelled() and task.exception() is not None:
            # run_batch already finished the record with an error report;
            # retrieving the exception here silences the GC-time warning.
            exc = task.exception()
            print(
                f"repro serve: batch task failed: {type(exc).__name__}: {exc}",
                flush=True,
            )

    async def _handle_job_lookup(self, fingerprint: str, writer: asyncio.StreamWriter) -> None:
        cached = self._store.get(fingerprint) if self._store is not None else None
        if cached is None:
            raise ApiError(
                404,
                "not-found",
                f"no stored verdict for fingerprint {fingerprint[:16]!r}"
                + (" (currently in flight)" if fingerprint in self._inflight else ""),
            )
        await self._send_json(
            writer,
            200,
            {"served_from": "store", "fingerprint": fingerprint, "result": cached.as_dict()},
        )

    def _get_record(self, batch_id: str) -> BatchRecord:
        record = self._batches.get(batch_id)
        if record is None:
            raise ApiError(404, "not-found", f"unknown batch {batch_id!r}")
        return record

    async def _handle_batch_status(self, batch_id: str, writer: asyncio.StreamWriter) -> None:
        record = self._get_record(batch_id)
        payload: Dict[str, Any] = {
            "batch_id": record.batch_id,
            "jobs": record.size,
            "completed": record.completed,
            "events": len(record.events),
        }
        if record.report is not None:
            payload["report"] = record.report
        await self._send_json(writer, 200, payload)

    async def _handle_batch_events(self, batch_id: str, writer: asyncio.StreamWriter) -> None:
        """Stream a batch's progress as NDJSON: replay, then follow live."""
        record = self._get_record(batch_id)
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n"
            b"\r\n"
        )
        index = 0
        while True:
            while index < len(record.events):
                line = json.dumps(record.events[index], sort_keys=True) + "\n"
                writer.write(line.encode("utf-8"))
                index += 1
            await writer.drain()
            # Re-check the cursor after drain(): events (including the
            # final batch_done) may have landed while a slow client was
            # being drained, and they must be flushed before closing.
            if index < len(record.events):
                continue
            if record.completed:
                break
            await record.wait_change()

    async def _send_json(self, writer: asyncio.StreamWriter, status: int, payload: Any) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {HTTPStatus(status).phrase}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n"
            f"\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()


# -- entry points ----------------------------------------------------------------


def run_server(
    store: Optional[ResultStore] = None,
    workers: int = 1,
    timeout_seconds: Optional[float] = None,
    host: str = "127.0.0.1",
    port: int = 8080,
    port_file: Optional[Union[str, Path]] = None,
    execute_delay: float = 0.0,
) -> int:
    """Run the service until interrupted (the ``repro serve`` entry point).

    With ``port=0`` the OS picks a free port; the bound port is printed and,
    when ``port_file`` is given, written there so scripts (the CI smoke job)
    can discover it race-free.
    """
    service = VerificationService(
        store=store,
        workers=workers,
        timeout_seconds=timeout_seconds,
        execute_delay=execute_delay,
    )

    async def _serve() -> None:
        bound_host, bound_port = await service.start(host, port)
        print(f"repro serve: listening on http://{bound_host}:{bound_port}", flush=True)
        if port_file is not None:
            Path(port_file).write_text(f"{bound_port}\n")
        try:
            await service.serve_forever()
        finally:
            await service.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("repro serve: shutting down", flush=True)
    return 0


class ServerThread:
    """A server on a dedicated event-loop thread, for tests and embedding.

    ``start()`` blocks until the port is bound; ``stop()`` shuts the loop
    down and joins the thread.  Usable as a context manager.
    """

    def __init__(
        self,
        service: Optional[VerificationService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        **service_kwargs: Any,
    ) -> None:
        self.service = service if service is not None else VerificationService(**service_kwargs)
        self._host = host
        self._port = port
        self.address: Optional[Tuple[str, int]] = None
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run, name="repro-serve-loop", daemon=True)

    @property
    def base_url(self) -> str:
        assert self.address is not None, "server not started"
        return f"http://{self.address[0]}:{self.address[1]}"

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self.address = self._loop.run_until_complete(self.service.start(self._host, self._port))
        except BaseException as exc:  # surface bind errors to start()
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self.service.stop())
            self._loop.close()

    def start(self) -> "ServerThread":
        self._thread.start()
        self._started.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        if self.address is None:
            raise RuntimeError("server failed to start within 30s")
        return self

    def stop(self) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
