"""The production HTTP front door: ``repro serve``.

An ``asyncio`` HTTP/1.1 service (stdlib only, matching the repository's
zero-dependency rule) that turns the batch verification service into an
always-on endpoint hardened for sustained mixed cold/warm traffic:

* **Store-first.**  Every job is looked up in the
  :class:`~repro.service.store.ResultStore` before any work is scheduled;
  cached verdicts are served without touching a worker.
* **In-flight fingerprint dedup.**  Identical jobs submitted concurrently
  share one engine execution: the first submission registers an
  ``asyncio.Future`` per fingerprint, later submissions await that future
  instead of executing.  Combined with the store this guarantees each
  fingerprint runs the engine at most once per server lifetime (TTL expiry
  aside), no matter how many clients ask.
* **Non-blocking execution.**  Fresh jobs run through the existing
  :class:`~repro.service.runner.BatchRunner` worker pool, bridged off the
  event loop with ``run_in_executor``; per-job completions are marshalled
  back with ``call_soon_threadsafe``, so batch progress streams while the
  pool is still working.
* **Keep-alive connections.**  HTTP/1.1 persistent connections with request
  pipelining, an idle timeout between requests, a read budget per request
  (slowloris guard), and a connection cap (over-cap connects are answered
  ``503`` and closed).
* **Load-shedding.**  Work-bearing requests (``POST /v1/jobs``) pass a
  bounded admission gate; over-limit requests are shed with ``429`` +
  ``Retry-After`` instead of queueing without bound.  Queue depth and shed
  counts are tracked and exported.
* **Graceful drain.**  ``SIGTERM``/``SIGINT`` stop admission (new work gets
  ``503`` + ``Retry-After``, code ``draining``), let in-flight batches
  finish within ``--drain-timeout``, checkpoint the store and exit ``0``.
  Transient job failures (worker crashes, deadline kills) are retried per
  a configurable :class:`~repro.service.runner.RetryPolicy` and recorded as
  short-lived non-cacheable store rows, never as verdicts.
* **Auth.**  Optional shared-secret token auth (``Authorization: Bearer``
  or ``X-Auth-Token``, compared constant-time via :func:`hmac.compare_digest`)
  with distinct ``401`` (missing) / ``403`` (wrong) paths; ``/v1/healthz``
  stays open for probes.
* **Observability.**  ``GET /v1/stats`` reports queue depth, connection
  counts, per-endpoint latency percentiles (p50/p95/p99 over a sliding
  window), store counters and a cumulative engine search rollup;
  ``GET /v1/metrics`` exports the whole stack -- service counters, request
  latency, engine cache/plan/search families, store counters and
  worker-pool totals -- through one :class:`~repro.telemetry.MetricsRegistry`
  in Prometheus text exposition format.  Jobs submitted with
  ``"trace": true`` persist a solver trace served by
  ``GET /v1/jobs/{fingerprint}/trace``; structured JSON logs with
  request-id/fingerprint correlation are enabled via ``run_server``'s
  ``log_level``/``log_json``.

Wire format -- the canonical JSON job specs of :mod:`repro.service.jobs`,
mounted under the versioned ``/v1`` prefix:

* ``POST /v1/jobs`` with a single spec object decides one job and returns
  its result; with ``{"jobs": [spec, ...]}`` it runs a batch
  (``"wait": false`` returns ``202`` immediately with a batch id).  A spec
  may carry an optional client-computed ``"fingerprint"``, which the server
  verifies against its own canonical fingerprint (``409`` on mismatch).
* ``GET /v1/jobs/{fingerprint}`` serves a stored verdict (``404`` if absent);
  ``GET /v1/jobs/{fingerprint}/trace`` serves its recorded solver trace.
* ``GET /v1/batch/{id}`` reports batch status; ``GET /v1/batch/{id}/events``
  streams batch progress as NDJSON, replaying past events then following
  live until the batch completes.
* ``GET /v1/healthz``, ``GET /v1/stats`` and ``GET /v1/metrics`` are for
  probes and dashboards.

The pre-``/v1`` unversioned paths survive as deprecated aliases: they serve
identical responses plus a ``Deprecation: true`` header and a ``Link`` to
the ``/v1`` successor.  Unknown version prefixes (``/v2/...``) return
``404`` with a hint.  Every error response uses one envelope::

    {"error": {"code": "<machine code>", "message": "<human>", "detail": ...}}

with the machine codes documented in :data:`ERROR_CODES`.
"""

from __future__ import annotations

import asyncio
import dataclasses
import hmac
import json
import math
import re
import signal
import threading
import time
import uuid
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from http import HTTPStatus
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro import telemetry
from repro.errors import ReproError
from repro.service.jobs import JobResult, VerificationJob
from repro.service.runner import DEFAULT_GRACE_SECONDS, BatchReport, BatchRunner, RetryPolicy
from repro.service.store import DEFAULT_CLAIM_TTL_SECONDS, ResultStore

_log = telemetry.get_logger("serve")

#: Reject request bodies beyond this size (a light DoS guard; generated
#: batch specs run a few KB per job).
MAX_BODY_BYTES = 32 * 1024 * 1024

#: Completed batch records kept for /v1/batch/{id} lookups before eviction.
MAX_BATCH_RECORDS = 128

#: Budget for reading one request's header block and body once the request
#: line has arrived; connections that dribble or stall (slowloris) are
#: dropped when it elapses.
READ_TIMEOUT_SECONDS = 30.0

#: Keep-alive idle budget: how long a persistent connection may sit between
#: requests before the server closes it.
IDLE_TIMEOUT_SECONDS = 60.0

#: Requests served per connection before the server closes it (bounds the
#: lifetime of any single persistent connection).
MAX_REQUESTS_PER_CONNECTION = 1000

#: Default admission-gate size: work-bearing requests in flight beyond this
#: are shed with 429 + Retry-After.
DEFAULT_MAX_PENDING = 64

#: Default open-connection cap; over-cap connects get 503 and are closed.
DEFAULT_MAX_CONNECTIONS = 512

#: Sliding-window size (samples per endpoint) for latency percentiles.
LATENCY_WINDOW = 2048

#: The one API version this server speaks.
API_VERSION = "v1"

#: How often a node polls the shared keyspace for a verdict another node
#: is computing (the cluster analogue of an in-flight future await).
CLUSTER_POLL_SECONDS = 0.05

#: Machine error codes of the unified error envelope
#: ``{"error": {"code", "message", "detail"}}``, and when each is returned.
ERROR_CODES: Dict[str, str] = {
    "bad-request": "400: the HTTP request itself is malformed (request line, Content-Length)",
    "invalid-json": "400: the request body is not valid JSON",
    "invalid-spec": "400: the JSON body is not a valid job spec / batch envelope",
    "auth-required": "401: the server requires a token and the request carried none",
    "auth-invalid": "403: the request carried a token that does not match",
    "not-found": "404: unknown path, unknown fingerprint, or evicted batch id",
    "unknown-version": "404: the path names an API version this server does not speak",
    "method-not-allowed": "405: the path exists but not for this HTTP method",
    "fingerprint-mismatch": "409: a client-supplied fingerprint disagrees with the canonical one",
    "payload-too-large": "413: the request body exceeds MAX_BODY_BYTES",
    "overloaded": "429: the admission gate is full; retry after Retry-After seconds",
    "too-many-connections": "503: the connection cap is reached; retry after Retry-After seconds",
    "draining": (
        "503: the server is draining for shutdown and accepts no new work; "
        "retry against another instance after Retry-After seconds"
    ),
    "internal": "500: unexpected server-side failure",
    "runner-unavailable": (
        "502: the coordinator could not reach any runner for a job's shard; "
        "the job was not executed"
    ),
}

#: Routes of the job-serving API, advertised by ``GET /v1/`` discovery.
SERVICE_ROUTES = (
    "GET /",
    "GET /healthz",
    "GET /stats",
    "GET /metrics",
    "POST /jobs",
    "GET /jobs/{fingerprint}",
    "GET /jobs/{fingerprint}/trace",
    "GET /jobs/{fingerprint}/witness",
    "GET /batch/{id}",
    "GET /batch/{id}/events",
)


class ApiError(Exception):
    """An HTTP-mappable request failure (status, machine code, message).

    ``detail`` lands in the error envelope's ``detail`` field; ``headers``
    are extra response headers (``Retry-After``, ``WWW-Authenticate``);
    ``close`` forces the connection shut after the error is sent.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        detail: Optional[Any] = None,
        headers: Optional[Dict[str, str]] = None,
        close: bool = False,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.detail = detail
        self.headers = headers or {}
        self.close = close


def error_envelope(code: str, message: str, detail: Optional[Any] = None) -> Dict[str, Any]:
    """The unified error body every non-2xx response carries."""
    return {"error": {"code": code, "message": message, "detail": detail}}


#: Service counter attributes -> ``(metric name, help text)``.  Attribute
#: names are the historical ``ServiceStats`` dataclass fields (what
#: ``/v1/stats`` reports at top level); metric names are what
#: ``/v1/metrics`` has always exported for each.
SERVICE_COUNTERS: Dict[str, Tuple[str, str]] = {
    "jobs_received": ("repro_jobs_received_total", "Jobs received across all requests."),
    "executed": ("repro_jobs_executed_total", "Jobs run on the engine."),
    "store_hits": ("repro_store_hits_total", "Jobs served from the store."),
    "inflight_joins": (
        "repro_inflight_joins_total",
        "Jobs joined onto an in-flight execution.",
    ),
    "batch_dedup": (
        "repro_batch_dedup_total",
        "Duplicate jobs deduplicated within one batch.",
    ),
    "batches": ("repro_batches_total", "Batches accepted."),
    "rejected": (
        "repro_requests_rejected_total",
        "Requests refused (parse, auth, shed, size).",
    ),
    "shed": (
        "repro_requests_shed_total",
        "Work-bearing requests shed by the admission gate.",
    ),
    "auth_rejected": (
        "repro_auth_rejected_total",
        "Requests with missing or invalid auth tokens.",
    ),
    "connections_total": (
        "repro_connections_opened_total",
        "Connections accepted since start.",
    ),
    "connections_refused": (
        "repro_connections_refused_total",
        "Connections refused by the connection cap.",
    ),
    "drains_started": (
        "repro_drain_started_total",
        "Graceful-drain sequences started (SIGTERM/SIGINT or drain()).",
    ),
    "drain_rejected": (
        "repro_drain_rejected_total",
        "Work-bearing requests refused because the server was draining.",
    ),
    "cluster_joins": (
        "repro_cluster_joins_total",
        "Jobs served from another node's execution via the shared keyspace.",
    ),
    "forwarded": (
        "repro_jobs_forwarded_total",
        "Jobs forwarded to runner nodes by the coordinator.",
    ),
    "runner_failovers": (
        "repro_runner_failovers_total",
        "Job groups rerouted to a surviving runner after a runner failure.",
    ),
    "certificates_recorded": (
        "repro_certify_recorded_total",
        "Witness certificates built and stored for nonempty verdicts.",
    ),
    "certificates_served": (
        "repro_certify_served_total",
        "Witness certificates served by the witness endpoint.",
    ),
}


class ServiceStats:
    """Monotonic counters surfaced by ``GET /v1/stats`` and ``/v1/metrics``.

    Each field is backed by a :class:`~repro.telemetry.Counter` in the
    service's metrics registry, so the JSON stats endpoint and the
    Prometheus exposition read the same storage.  The attribute API of the
    old dataclass is preserved (``stats.executed += 1``, integer reads).
    """

    def __init__(self, registry: telemetry.MetricsRegistry) -> None:
        object.__setattr__(
            self,
            "_counters",
            {
                attr: registry.counter(metric_name, help_text)
                for attr, (metric_name, help_text) in SERVICE_COUNTERS.items()
            },
        )

    def __getattr__(self, name: str) -> int:
        counter = self.__dict__["_counters"].get(name)
        if counter is None:
            raise AttributeError(name)
        return int(counter.value())

    def __setattr__(self, name: str, value: int) -> None:
        counter = self.__dict__["_counters"].get(name)
        if counter is None:
            raise AttributeError(f"unknown service counter {name!r}")
        counter.inc(value - counter.value())  # monotonic: negative deltas raise

    def as_dict(self) -> Dict[str, int]:
        return {
            attr: int(counter.value()) for attr, counter in self.__dict__["_counters"].items()
        }


def _percentile(ordered: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted non-empty list."""
    rank = max(0, math.ceil(q * len(ordered)) - 1)
    return ordered[min(rank, len(ordered) - 1)]


class LatencyTracker:
    """Per-endpoint latency percentiles over a sliding sample window.

    Backed by a registry :class:`~repro.telemetry.Summary` (window
    quantiles plus lifetime ``_sum``/``_count``), which renders the
    ``repro_request_latency_seconds`` exposition; this wrapper adds the
    millisecond JSON report ``/v1/stats`` serves.
    """

    QUANTILES = (0.5, 0.95, 0.99)

    def __init__(self, registry: telemetry.MetricsRegistry, window: int = LATENCY_WINDOW) -> None:
        self._summary = registry.summary(
            "repro_request_latency_seconds",
            "Request latency by endpoint.",
            labelnames=("endpoint",),
            window=window,
            quantiles=self.QUANTILES,
        )

    def observe(self, endpoint: str, seconds: float) -> None:
        self._summary.observe(seconds, endpoint=endpoint)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """JSON-ready per-endpoint summary (milliseconds, for /v1/stats)."""
        report: Dict[str, Dict[str, float]] = {}
        for key, (window, count, total) in self._summary.snapshot().items():
            endpoint = dict(key)["endpoint"]
            ordered = sorted(window)
            report[endpoint] = {
                "count": count,
                "mean_ms": round(1000.0 * total / count, 3),
                "p50_ms": round(1000.0 * _percentile(ordered, 0.5), 3),
                "p95_ms": round(1000.0 * _percentile(ordered, 0.95), 3),
                "p99_ms": round(1000.0 * _percentile(ordered, 0.99), 3),
            }
        return report


@dataclass
class Request:
    """One parsed HTTP request off a (possibly persistent) connection."""

    method: str
    path: str
    query: str
    headers: Dict[str, str]
    body: bytes
    version: str

    def wants_keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return "keep-alive" in connection
        return "close" not in connection


class BatchRecord:
    """Progress state of one submitted batch: events, waiters, final report."""

    def __init__(self, batch_id: str, size: int) -> None:
        self.batch_id = batch_id
        self.size = size
        self.created_at = time.time()
        self.completed = False
        self.report: Optional[Dict[str, Any]] = None
        self.events: List[Dict[str, Any]] = []
        self._waiters: List[asyncio.Future] = []

    def emit(self, event: Dict[str, Any]) -> None:
        self.events.append({"ts": round(time.time(), 3), "batch_id": self.batch_id, **event})
        self._wake()

    def finish(self, report: Dict[str, Any]) -> None:
        self.report = report
        self.completed = True
        self.emit(
            {
                "event": "batch_done",
                **{
                    key: report[key]
                    for key in (
                        "jobs",
                        "executed",
                        "store_hits",
                        "inflight_joins",
                        "batch_dedup",
                        "elapsed_seconds",
                        "verdict_counts",
                    )
                },
            }
        )

    def _wake(self) -> None:
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            if not waiter.done():
                waiter.set_result(None)

    async def wait_change(self) -> None:
        """Block until the next event (or completion) lands."""
        waiter = asyncio.get_running_loop().create_future()
        self._waiters.append(waiter)
        await waiter

    async def wait_completed(self) -> None:
        while not self.completed:
            await self.wait_change()


class VerificationService:
    """The service core: dedup, store, executor bridge, HTTP handling.

    Parameters
    ----------
    store:
        Optional :class:`ResultStore` serving cached verdicts; written to
        only from the event-loop thread (the single-writer discipline the
        store's SQLite backend expects).
    workers:
        Worker processes of the backing :class:`BatchRunner` pool (spawned,
        not forked: the server forks off executor threads, where a forked
        child can inherit locks mid-flight).
    timeout_seconds:
        Per-job wall-clock budget, enforced inside pool workers (Unix only,
        and only when ``workers > 1`` -- single-worker execution runs on an
        executor thread where ``SIGALRM`` cannot fire).
    auth_token:
        Optional shared secret.  When set, every endpoint except
        ``/v1/healthz`` requires ``Authorization: Bearer <token>`` or
        ``X-Auth-Token: <token>``; comparison is constant-time.
    max_pending:
        Admission-gate size for work-bearing requests (``POST /v1/jobs``).
        Requests beyond it are shed with ``429`` + ``Retry-After``.
        ``None`` disables shedding; ``0`` sheds everything (a drain mode
        the CI smoke job uses for a deterministic 429 assertion).
    max_connections:
        Open-connection cap; over-cap connects get ``503`` and are closed.
    idle_timeout / read_timeout:
        Keep-alive idle budget between requests / read budget within one
        request (see the module constants for the defaults).
    retry_after:
        Integer seconds advertised in ``Retry-After`` on 429/503 responses.
    retry_policy:
        :class:`~repro.service.runner.RetryPolicy` for transient job
        failures (worker crashes, deadline kills, timeouts); the default
        never retries.
    grace_seconds:
        Parent-side margin over ``timeout_seconds`` before a pool worker is
        declared wedged and killed (see :class:`BatchRunner`).
    execute_delay:
        Artificial pre-execution delay in seconds.  A test/benchmark aid:
        it widens the in-flight window so concurrent duplicate submissions
        demonstrably share one execution.
    cluster_dedup:
        Extend the in-flight dedup domain fleet-wide through the store's
        claim rows (see :meth:`ResultStore.try_claim`), so concurrent
        identical submissions to *different* nodes sharing one keyspace
        still execute once.  ``None`` (default) auto-enables it exactly
        when the store is a shared remote keyspace; claims are pointless
        on a process-private store.
    node_id:
        Name this node signs its cluster claims with; defaults to a random
        tag.  Surfaced in discovery so operators can map claims to nodes.
    claim_ttl:
        Seconds a cluster claim blocks duplicate execution before other
        nodes may take it over (the damage bound of a node dying mid-job).
    """

    #: What this node answers for ``role`` in discovery; the coordinator
    #: subclass overrides it.
    role = "single"

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        workers: int = 1,
        timeout_seconds: Optional[float] = None,
        auth_token: Optional[str] = None,
        max_pending: Optional[int] = DEFAULT_MAX_PENDING,
        max_connections: int = DEFAULT_MAX_CONNECTIONS,
        idle_timeout: float = IDLE_TIMEOUT_SECONDS,
        read_timeout: float = READ_TIMEOUT_SECONDS,
        retry_after: int = 1,
        retry_policy: Optional[RetryPolicy] = None,
        grace_seconds: float = DEFAULT_GRACE_SECONDS,
        execute_delay: float = 0.0,
        cluster_dedup: Optional[bool] = None,
        node_id: Optional[str] = None,
        claim_ttl: float = DEFAULT_CLAIM_TTL_SECONDS,
    ) -> None:
        if max_pending is not None and max_pending < 0:
            raise ValueError("max_pending must be >= 0 (or None to disable shedding)")
        if max_connections < 1:
            raise ValueError("max_connections must be >= 1")
        self._store = store
        self._workers = workers
        if cluster_dedup is None:
            cluster_dedup = store is not None and store.is_shared
        self._cluster_dedup = bool(cluster_dedup) and store is not None
        self._node_id = node_id or f"node-{uuid.uuid4().hex[:8]}"
        self._claim_ttl = claim_ttl
        # The runner carries the store so settle() can delegate write-back to
        # BatchRunner.record (bounded retries + non-cacheable error rows);
        # the server itself only calls execute_indexed, which never touches
        # the store, so the single-writer discipline (loop thread) holds.
        self._runner = BatchRunner(
            store=store,
            workers=workers,
            timeout_seconds=timeout_seconds,
            retry_policy=retry_policy,
            grace_seconds=grace_seconds,
        )
        self._executor = ThreadPoolExecutor(
            max_workers=max(4, workers), thread_name_prefix="repro-serve"
        )
        self._auth_token = auth_token
        self._max_pending = max_pending
        self._max_connections = max_connections
        self._idle_timeout = idle_timeout
        self._read_timeout = read_timeout
        self._retry_after = retry_after
        self._execute_delay = execute_delay
        self._pending = 0
        self._open_connections = 0
        self._executing_jobs = 0
        self._draining = False
        self._inflight: Dict[str, asyncio.Future] = {}
        self._batches: "OrderedDict[str, BatchRecord]" = OrderedDict()
        self._batch_tasks: set = set()
        self._conn_tasks: set = set()
        self.registry = telemetry.MetricsRegistry()
        self.stats = ServiceStats(self.registry)
        self.latency = LatencyTracker(self.registry)
        self.engine_rollup = telemetry.EngineRollup()
        self._register_telemetry()
        self._server: Optional[asyncio.AbstractServer] = None

    def _register_telemetry(self) -> None:
        """Wire every non-counter metric family into the registry.

        Gauges and engine/store/worker counters are callback-driven: they
        read live service state (or the process-wide telemetry counters) at
        scrape time, so the hot paths carry no metrics bookkeeping at all.
        """
        registry = self.registry

        def engine_cache_field(field: str):
            def read() -> Dict[str, int]:
                caches = telemetry.engine_counters_snapshot()["caches"]
                return {name: counters[field] for name, counters in caches.items()}

            return read

        def worker_cache_field(field: str):
            def read() -> Dict[str, int]:
                caches = telemetry.worker_counters_snapshot()["caches"]
                return {name: counters[field] for name, counters in caches.items()}

            return read

        def worker_total(field: str):
            def read() -> int:
                return telemetry.worker_counters_snapshot()[field]

            return read

        def store_total(field: str):
            def read() -> int:
                return getattr(self._store.stats, field) if self._store is not None else 0

            return read

        def runner_total(field: str):
            def read() -> int:
                return getattr(self._runner.stats, field)

            return read

        def rollup_total(field: str):
            def read() -> float:
                rollup = self.engine_rollup
                if field in rollup.totals:
                    return rollup.totals[field]
                return getattr(rollup, field)  # jobs / engine_seconds / derived properties

            return read

        # -- live service gauges --------------------------------------------------
        registry.gauge(
            "repro_inflight_fingerprints",
            "Unique fingerprints currently executing.",
            callback=lambda: len(self._inflight),
        )
        registry.gauge(
            "repro_queue_depth",
            "Work-bearing requests in flight.",
            callback=lambda: self._pending,
        )
        registry.gauge(
            "repro_queue_limit",
            "Admission gate size (-1 = unbounded).",
            callback=lambda: self._max_pending if self._max_pending is not None else -1,
        )
        registry.gauge(
            "repro_connections_open", "Open connections.", callback=lambda: self._open_connections
        )
        registry.gauge(
            "repro_connections_limit", "Connection cap.", callback=lambda: self._max_connections
        )
        registry.gauge(
            "repro_store_size",
            "Entries in the verdict store.",
            callback=lambda: self._store.backend.count() if self._store is not None else 0,
        )
        registry.gauge(
            "repro_jobs_executing",
            "Jobs currently running on the engine.",
            callback=lambda: self._executing_jobs,
        )
        registry.gauge(
            "repro_worker_processes",
            "Configured worker pool size.",
            callback=lambda: self._workers,
        )
        registry.gauge(
            "repro_worker_utilization",
            "Executing jobs as a fraction of the worker pool (saturates at 1).",
            callback=lambda: min(1.0, self._executing_jobs / self._workers),
        )
        registry.gauge(
            "repro_draining",
            "1 while the server is draining for shutdown, else 0.",
            callback=lambda: 1 if self._draining else 0,
        )
        # -- fault-tolerance counters (the batch runner's supervision layer) ------
        registry.counter_callback(
            "repro_retries_total",
            "Job attempts re-executed after a transient failure.",
            (),
            runner_total("retries"),
        )
        registry.counter_callback(
            "repro_worker_crashes_total",
            "Pool worker processes that died mid-job.",
            (),
            runner_total("worker_crashes"),
        )
        registry.counter_callback(
            "repro_deadline_exceeded_total",
            "Jobs killed by the parent-side deadline (timeout + grace).",
            (),
            runner_total("deadline_exceeded"),
        )
        registry.counter_callback(
            "repro_worker_respawns_total",
            "Pool workers respawned by the supervisor.",
            (),
            runner_total("worker_respawns"),
        )
        registry.counter_callback(
            "repro_store_put_retries_total",
            "Store verdict writes retried after an IO failure.",
            (),
            runner_total("store_put_retries"),
        )
        # -- engine counters (this process) ---------------------------------------
        registry.counter_callback(
            "repro_engine_cache_hits_total",
            "Engine bounded-cache hits in this process, by cache.",
            ("cache",),
            engine_cache_field("hits"),
        )
        registry.counter_callback(
            "repro_engine_cache_misses_total",
            "Engine bounded-cache misses in this process, by cache.",
            ("cache",),
            engine_cache_field("misses"),
        )
        registry.counter_callback(
            "repro_engine_cache_evictions_total",
            "Engine bounded-cache evictions in this process, by cache.",
            ("cache",),
            engine_cache_field("evictions"),
        )
        registry.counter_callback(
            "repro_plan_compilations_total",
            "Transition guard plans compiled in this process.",
            (),
            telemetry.plan_compilation_count,
        )
        # -- worker-pool counters (marshalled back from worker processes) ---------
        registry.counter_callback(
            "repro_worker_jobs_total",
            "Jobs executed inside pool worker processes.",
            (),
            worker_total("jobs"),
        )
        registry.counter_callback(
            "repro_worker_plan_compilations_total",
            "Guard plans compiled inside pool worker processes.",
            (),
            worker_total("plan_compilations"),
        )
        registry.counter_callback(
            "repro_worker_cache_hits_total",
            "Engine cache hits inside pool worker processes, by cache.",
            ("cache",),
            worker_cache_field("hits"),
        )
        registry.counter_callback(
            "repro_worker_cache_misses_total",
            "Engine cache misses inside pool worker processes, by cache.",
            ("cache",),
            worker_cache_field("misses"),
        )
        # -- store counters -------------------------------------------------------
        registry.counter_callback(
            "repro_store_gets_total", "Store lookups.", (), store_total("gets")
        )
        registry.counter_callback(
            "repro_store_lookup_hits_total",
            "Store lookups that found a fresh row.",
            (),
            store_total("hits"),
        )
        registry.counter_callback(
            "repro_store_lookup_misses_total",
            "Store lookups that found nothing (or an expired row).",
            (),
            store_total("misses"),
        )
        registry.counter_callback(
            "repro_store_puts_total", "Verdicts written to the store.", (), store_total("puts")
        )
        registry.counter_callback(
            "repro_store_error_puts_total",
            "Transient failures recorded as non-cacheable store rows.",
            (),
            store_total("error_puts"),
        )
        registry.counter_callback(
            "repro_store_evictions_total",
            "Store rows evicted by the max_entries cap.",
            (),
            store_total("evictions"),
        )
        registry.counter_callback(
            "repro_store_ttl_expirations_total",
            "Store rows dropped by TTL expiry.",
            (),
            store_total("ttl_expirations"),
        )
        # -- engine search rollup (cumulative over completed jobs) ----------------
        registry.counter_callback(
            "repro_engine_jobs_total",
            "Completed engine runs folded into the search rollup.",
            (),
            rollup_total("jobs"),
        )
        registry.counter_callback(
            "repro_engine_seconds_total",
            "Cumulative engine search seconds across completed jobs.",
            (),
            rollup_total("engine_seconds"),
        )
        registry.counter_callback(
            "repro_engine_configurations_explored_total",
            "Configurations explored across completed jobs.",
            (),
            rollup_total("configurations_explored"),
        )
        registry.counter_callback(
            "repro_engine_candidates_generated_total",
            "Successor candidates generated across completed jobs.",
            (),
            rollup_total("candidates_generated"),
        )
        registry.counter_callback(
            "repro_engine_candidates_pruned_total",
            "Candidates discarded before expansion across completed jobs.",
            (),
            rollup_total("candidates_pruned"),
        )
        registry.counter_callback(
            "repro_engine_guard_rejections_total",
            "Guard evaluations that rejected a candidate across completed jobs.",
            (),
            rollup_total("guard_rejections"),
        )

    # -- job parsing -------------------------------------------------------------

    def parse_job(self, payload: Any, index: Optional[int] = None) -> VerificationJob:
        """Build a job from one wire spec, verifying any client fingerprint."""
        where = f"jobs[{index}]" if index is not None else "job"
        if not isinstance(payload, Mapping):
            raise ApiError(400, "invalid-spec", f"{where}: spec must be a JSON object")
        spec = dict(payload)
        claimed = spec.pop("fingerprint", None)
        try:
            job = VerificationJob.from_spec(spec)
            fingerprint = job.fingerprint
        except ReproError as exc:
            raise ApiError(400, "invalid-spec", f"{where}: {exc}") from exc
        except Exception as exc:  # malformed shapes: missing keys, wrong types
            raise ApiError(400, "invalid-spec", f"{where}: {type(exc).__name__}: {exc}") from exc
        if claimed is not None and claimed != fingerprint:
            raise ApiError(
                409,
                "fingerprint-mismatch",
                f"{where}: client fingerprint {str(claimed)[:12]} does not match "
                f"the server's canonical fingerprint {fingerprint[:12]}; the "
                "client's spec serialization is not canonical",
            )
        return job

    # -- resolution core ---------------------------------------------------------

    async def resolve_jobs(
        self, jobs: List[VerificationJob], record: Optional[BatchRecord] = None
    ) -> Tuple[List[Tuple[JobResult, str]], Dict[str, int]]:
        """Decide every job via store / in-flight join / fresh execution.

        Returns results aligned with ``jobs`` as ``(result, served_from)``
        pairs, ``served_from`` being ``"store"``, ``"inflight"``,
        ``"batch-dedup"`` or ``"engine"``, plus the request-level counters.
        """
        loop = asyncio.get_running_loop()
        counters = {
            "executed": 0,
            "store_hits": 0,
            "inflight_joins": 0,
            "batch_dedup": 0,
            "cluster_joins": 0,
        }
        slots: List[Optional[Tuple[JobResult, str]]] = [None] * len(jobs)
        joins: List[Tuple[int, asyncio.Future, str]] = []
        fresh: List[Tuple[int, VerificationJob, asyncio.Future]] = []
        fresh_fingerprints: Dict[str, int] = {}
        self.stats.jobs_received += len(jobs)

        def job_done(index: int, result: JobResult, served_from: str) -> None:
            slots[index] = (result, served_from)
            if record is not None:
                record.emit(
                    {
                        "event": "job_done",
                        "index": index,
                        "fingerprint": result.fingerprint,
                        "label": result.label,
                        "served_from": served_from,
                        "ok": result.ok,
                        "nonempty": result.nonempty,
                    }
                )

        for index, job in enumerate(jobs):
            fingerprint = job.fingerprint
            cached = self._store.get(fingerprint) if self._store is not None else None
            # A traced (or certified) submission of a verdict stored without
            # the requested artifact re-executes (the verdict is identical;
            # the run records the trace/certificate and the store row is
            # rewritten with it attached).
            if cached is not None and not (
                (job.trace and cached.trace is None)
                or (job.certificate and cached.nonempty and cached.certificate is None)
            ):
                cached.label = cached.label or job.label
                counters["store_hits"] += 1
                self.stats.store_hits += 1
                job_done(index, cached, "store")
                continue
            existing = self._inflight.get(fingerprint)
            if existing is not None:
                if fingerprint in fresh_fingerprints:
                    counters["batch_dedup"] += 1
                    self.stats.batch_dedup += 1
                    joins.append((index, existing, "batch-dedup"))
                else:
                    counters["inflight_joins"] += 1
                    self.stats.inflight_joins += 1
                    joins.append((index, existing, "inflight"))
                continue
            future = loop.create_future()
            self._inflight[fingerprint] = future
            fresh_fingerprints[fingerprint] = index
            fresh.append((index, job, future))

        if fresh:
            fresh_jobs = [job for _, job, _ in fresh]

            def settle(local_index: int, result: JobResult) -> None:
                # Runs on the event-loop thread: the only store writer.  The
                # future MUST resolve whatever happens here -- an unresolved
                # in-flight future hangs this request and every later
                # submission of the same fingerprint.
                index, job, future = fresh[local_index]
                # record() writes verdicts with bounded retries, records
                # transient failures as non-cacheable rows, and never raises
                # -- a cache write failure must not lose a computed verdict.
                self._runner.record(job, result)
                counters["executed"] += 1
                self.stats.executed += 1
                if result.certificate is not None:
                    self.stats.certificates_recorded += 1
                self._executing_jobs -= 1
                if result.ok:
                    self.engine_rollup.record(result.statistics)
                self._inflight.pop(job.fingerprint, None)
                if not future.done():
                    future.set_result(result)
                job_done(index, result, "engine")

            def settle_cluster(local_index: int, result: JobResult) -> None:
                # Another node sharing the keyspace executed the job; the
                # verdict arrived through the store, not the local engine.
                index, job, future = fresh[local_index]
                if job.label and job.label != result.label:
                    result = dataclasses.replace(result, label=job.label)
                counters["cluster_joins"] += 1
                self.stats.cluster_joins += 1
                self._executing_jobs -= 1
                self._inflight.pop(job.fingerprint, None)
                if not future.done():
                    future.set_result(result)
                job_done(index, result, "cluster")

            def settle_failure(exc: BaseException) -> None:
                for local_index, (index, job, future) in enumerate(fresh):
                    if future.done():
                        continue
                    result = JobResult(
                        fingerprint=job.fingerprint,
                        label=job.label,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    self._executing_jobs -= 1
                    self._inflight.pop(job.fingerprint, None)
                    future.set_result(result)
                    job_done(index, result, "engine")

            # Correlation fields (request id, fingerprint) must be captured
            # here: run_group executes on a plain executor thread, outside
            # this coroutine's contextvars.
            log_fields = telemetry.current_log_context()
            self._executing_jobs += len(fresh)

            def run_group() -> None:
                # Runs on an executor thread; the loop never blocks on the
                # engine.  Each completion is marshalled back to the loop.
                if self._execute_delay:
                    time.sleep(self._execute_delay)
                try:
                    with telemetry.log_context(**log_fields):
                        local, remote = self._claim_fresh(fresh_jobs)
                        if local:
                            group = [fresh_jobs[i] for i in local]
                            for group_index, result in self._execute_fresh(group):
                                loop.call_soon_threadsafe(settle, local[group_index], result)
                        for local_index, result, executed in self._await_cluster(
                            remote, fresh_jobs
                        ):
                            loop.call_soon_threadsafe(
                                settle if executed else settle_cluster, local_index, result
                            )
                except BaseException as exc:  # noqa: BLE001 - becomes errored results
                    loop.call_soon_threadsafe(settle_failure, exc)

            await loop.run_in_executor(self._executor, run_group)
            # The group thread has finished enqueueing settle callbacks;
            # awaiting the futures drains whatever is still queued.
            for _, _, future in fresh:
                await future

        for index, future, served_from in joins:
            result: JobResult = await future
            if jobs[index].label and jobs[index].label != result.label:
                result = dataclasses.replace(result, label=jobs[index].label)
            job_done(index, result, served_from)

        assert all(slot is not None for slot in slots)
        return [slot for slot in slots if slot is not None], counters

    # -- fresh-execution hooks (executor-thread side) ----------------------------

    def _execute_fresh(self, jobs: List[VerificationJob]):
        """Execute jobs missed by every cache layer; yields ``(index, result)``.

        Runs on an executor thread, streaming results as they complete.
        This is the override point for alternative execution backends: the
        base class runs the local engine pool, the coordinator forwards
        fingerprint shards to runner nodes.
        """
        return self._runner.execute_indexed(jobs)

    def _claim_fresh(
        self, jobs: List[VerificationJob]
    ) -> Tuple[List[int], Dict[int, VerificationJob]]:
        """Partition fresh jobs into locally-claimed and remotely-executing.

        With cluster dedup off, everything is local.  Otherwise each job's
        fingerprint is claimed in the shared keyspace; jobs whose claim is
        held by another node go to the remote-wait set.  Traced and
        certificate-requesting submissions always execute locally (the remote
        executor may store a verdict without the requested artifact, which
        such a run must not accept), and a failing claim layer degrades to
        local execution rather than blocking work.
        """
        if not self._cluster_dedup or self._store is None:
            return list(range(len(jobs))), {}
        local: List[int] = []
        remote: Dict[int, VerificationJob] = {}
        for index, job in enumerate(jobs):
            if job.trace or job.certificate:
                local.append(index)
                continue
            try:
                won = self._store.try_claim(
                    job, owner=self._node_id, ttl_seconds=self._claim_ttl
                )
            except Exception as exc:  # noqa: BLE001 - claims are best-effort
                _log.warning(
                    "cluster claim failed; executing locally",
                    extra={"fingerprint": job.fingerprint[:12], "error": str(exc)},
                )
                won = True
            if won:
                local.append(index)
            else:
                remote[index] = job
        return local, remote

    def _await_cluster(
        self, remote: Dict[int, VerificationJob], jobs: List[VerificationJob]
    ):
        """Wait out jobs another node claimed; yields ``(index, result, executed)``.

        Polls the shared store until each remote verdict lands (``executed``
        False) or the foreign claim expires -- a node died mid-job -- at
        which point the claim is taken over and the job runs locally after
        all (``executed`` True).  Termination is bounded by the claim TTL
        plus one local execution; a dead keyspace also falls back to local
        execution.
        """
        waiting = dict(remote)
        while waiting:
            for index, job in sorted(waiting.items()):
                run_local = False
                try:
                    cached = self._store.get(job.fingerprint)
                except Exception:  # noqa: BLE001 - keyspace down: run it here
                    cached = None
                    run_local = True
                if cached is not None:
                    cached.label = cached.label or job.label
                    del waiting[index]
                    yield index, cached, False
                    continue
                if not run_local:
                    try:
                        run_local = self._store.try_claim(
                            job, owner=self._node_id, ttl_seconds=self._claim_ttl
                        )
                    except Exception:  # noqa: BLE001
                        run_local = True
                if run_local:
                    del waiting[index]
                    for _, result in self._execute_fresh([job]):
                        yield index, result, True
            if waiting:
                time.sleep(CLUSTER_POLL_SECONDS)

    async def run_batch(self, record: BatchRecord, jobs: List[VerificationJob]) -> Dict[str, Any]:
        """Resolve a batch, emitting progress events and the final report.

        Never leaves the record incomplete: a failure finishes it with an
        error report so status lookups and event streams always terminate.
        """
        try:
            return await self._run_batch_inner(record, jobs)
        except BaseException as exc:
            if not record.completed:
                record.finish(
                    {
                        "batch_id": record.batch_id,
                        "jobs": record.size,
                        "workers": self._workers,
                        "executed": 0,
                        "store_hits": 0,
                        "inflight_joins": 0,
                        "batch_dedup": 0,
                        "cluster_joins": 0,
                        "elapsed_seconds": 0.0,
                        "verdict_counts": {},
                        "results": [],
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                )
            raise

    async def _run_batch_inner(
        self, record: BatchRecord, jobs: List[VerificationJob]
    ) -> Dict[str, Any]:
        start = time.perf_counter()
        record.emit({"event": "batch_accepted", "jobs": len(jobs)})
        resolved, counters = await self.resolve_jobs(jobs, record)
        report = BatchReport(
            results=[result for result, _ in resolved],
            elapsed_seconds=time.perf_counter() - start,
            workers=self._workers,
            cache_hits=counters["store_hits"],
            executed=counters["executed"],
        )
        payload = {
            "batch_id": record.batch_id,
            "jobs": len(jobs),
            "workers": self._workers,
            "executed": counters["executed"],
            "store_hits": counters["store_hits"],
            "inflight_joins": counters["inflight_joins"],
            "batch_dedup": counters["batch_dedup"],
            "cluster_joins": counters["cluster_joins"],
            "elapsed_seconds": round(report.elapsed_seconds, 6),
            "verdict_counts": report.verdict_counts(),
            "results": [
                {**result.as_dict(), "served_from": served_from}
                for result, served_from in resolved
            ],
        }
        record.finish(payload)
        return payload

    def new_batch(self, size: int) -> BatchRecord:
        record = BatchRecord(uuid.uuid4().hex[:12], size)
        self._batches[record.batch_id] = record
        self.stats.batches += 1
        while len(self._batches) > MAX_BATCH_RECORDS:
            # Evict oldest *completed* records only: an in-flight batch's
            # status/events URLs must stay valid until it finishes.
            victim = next((bid for bid, rec in self._batches.items() if rec.completed), None)
            if victim is None:
                break
            del self._batches[victim]
        return record

    # -- admission gate ----------------------------------------------------------

    def _admit(self) -> None:
        """Pass the admission gate, or refuse: 503 draining / 429 shed."""
        if self._draining:
            self.stats.drain_rejected += 1
            raise ApiError(
                503,
                "draining",
                "the server is draining for shutdown and accepts no new work",
                headers={"Retry-After": str(self._retry_after)},
            )
        if self._max_pending is not None and self._pending >= self._max_pending:
            self.stats.shed += 1
            raise ApiError(
                429,
                "overloaded",
                f"admission queue is full ({self._pending} of "
                f"{self._max_pending} work-bearing requests in flight)",
                detail={"queue_depth": self._pending, "queue_limit": self._max_pending},
                headers={"Retry-After": str(self._retry_after)},
            )
        self._pending += 1

    def _release(self) -> None:
        self._pending -= 1

    # -- HTTP layer --------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 8080) -> Tuple[str, int]:
        """Bind and start serving; returns the (host, port) actually bound."""
        self._server = await asyncio.start_server(self._handle_client, host, port)
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() must be called first"
        await self._server.serve_forever()

    @property
    def draining(self) -> bool:
        return self._draining

    async def drain(self, timeout: float = 30.0) -> bool:
        """Gracefully wind the service down; returns True on a clean drain.

        Drain mode (entered at most once; re-entry just reports the state):

        1. Stop accepting: the listening socket closes, and work-bearing
           requests on surviving keep-alive connections are refused with
           ``503`` + ``Retry-After`` (code ``draining``).
        2. Finish in-flight work: wait -- up to ``timeout`` seconds -- for
           running batches, in-flight fingerprints and admitted requests to
           complete.  Nothing is cancelled inside the budget, so clients
           already being served get their results.
        3. Checkpoint the store: buffered WAL pages are flushed to the main
           database so an immediate ``SIGKILL`` after a clean drain loses
           nothing.

        A False return means the budget elapsed with work still in flight
        (``stop()`` will then cancel it); the store is checkpointed either
        way.
        """
        if self._draining:
            return not (self._batch_tasks or self._inflight or self._pending)
        self._draining = True
        self.stats.drains_started += 1
        _log.info("drain started", extra={"timeout_seconds": timeout})
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        deadline = time.monotonic() + timeout
        while self._batch_tasks or self._inflight or self._pending:
            if time.monotonic() >= deadline:
                break
            await asyncio.sleep(0.05)
        clean = not (self._batch_tasks or self._inflight or self._pending)
        if self._store is not None:
            try:
                self._store.checkpoint()
            except Exception as exc:  # noqa: BLE001 - drain must still complete
                _log.error(
                    "store checkpoint failed during drain",
                    extra={"error": f"{type(exc).__name__}: {exc}"},
                )
        _log.info(
            "drain finished",
            extra={
                "clean": clean,
                "batches_in_flight": len(self._batch_tasks),
                "jobs_in_flight": len(self._inflight),
            },
        )
        return clean

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Open keep-alive connections are parked in _read_request waiting
        # for a next request that will never come; cancel them so shutdown
        # does not leak pending tasks.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._executor.shutdown(wait=False, cancel_futures=True)

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        self.stats.connections_total += 1
        if self._open_connections >= self._max_connections:
            self.stats.connections_refused += 1
            try:
                await self._send_json(
                    writer,
                    503,
                    error_envelope(
                        "too-many-connections",
                        f"connection cap of {self._max_connections} reached",
                    ),
                    headers={"Retry-After": str(self._retry_after)},
                    keep_alive=False,
                )
            except ConnectionError:
                pass
            finally:
                await self._close_writer(writer)
            return
        self._open_connections += 1
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.TimeoutError):
            pass
        except Exception as exc:  # noqa: BLE001 - a request must not kill the server
            try:
                await self._send_json(
                    writer,
                    500,
                    error_envelope("internal", f"{type(exc).__name__}: {exc}"),
                    keep_alive=False,
                )
            except ConnectionError:
                pass
        finally:
            self._open_connections -= 1
            await self._close_writer(writer)

    @staticmethod
    async def _close_writer(writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
            await writer.wait_closed()
        except ConnectionError:
            pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """The keep-alive loop: serve pipelined requests until close/idle."""
        served = 0
        while served < MAX_REQUESTS_PER_CONNECTION:
            try:
                request = await self._read_request(reader, writer)
            except asyncio.TimeoutError:
                # Idle keep-alive connection or a stalled (slowloris) read;
                # either way the connection is done.
                return
            except ApiError as error:
                # The request never parsed (bad request line, bad
                # Content-Length, oversized body): answer and close, since
                # the unread stream cannot be resynchronized.
                self.stats.rejected += 1
                await self._send_json(
                    writer,
                    error.status,
                    error_envelope(error.code, error.message, error.detail),
                    headers=error.headers,
                    keep_alive=False,
                )
                return
            if request is None:
                return
            served += 1
            if not await self._handle_one(request, writer):
                return

    async def _read_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Optional[Request]:
        # The wait for the *next* request line is bounded by the idle
        # budget; once a request has started, completing its header block
        # and body is bounded by the (shorter) read budget.
        request_line = await asyncio.wait_for(reader.readline(), timeout=self._idle_timeout)
        if not request_line:
            return None
        return await asyncio.wait_for(
            self._read_request_rest(request_line, reader, writer), timeout=self._read_timeout
        )

    async def _read_request_rest(
        self, request_line: bytes, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Request:
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise ApiError(400, "bad-request", "malformed HTTP request line", close=True)
        method, target, version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        raw_length = headers.get("content-length", "0") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            raise ApiError(
                400, "bad-request", f"bad Content-Length {raw_length!r}", close=True
            ) from None
        if length < 0:
            raise ApiError(400, "bad-request", f"bad Content-Length {raw_length!r}", close=True)
        if length > MAX_BODY_BYTES:
            # The unread body would desynchronize the connection, so close.
            raise ApiError(
                413, "payload-too-large", f"body exceeds {MAX_BODY_BYTES} bytes", close=True
            )
        if headers.get("expect", "").lower() == "100-continue":
            # curl sends this for bodies over ~1KB (every real batch spec)
            # and waits up to a second for the interim response.
            writer.write(b"HTTP/1.1 100 Continue\r\n\r\n")
            await writer.drain()
        body = await reader.readexactly(length) if length else b""
        path, _, query = target.partition("?")
        return Request(
            method=method, path=path, query=query, headers=headers, body=body, version=version
        )

    async def _handle_one(self, request: Request, writer: asyncio.StreamWriter) -> bool:
        """Dispatch one request; returns whether to keep the connection."""
        keep_alive = request.wants_keep_alive()
        started = time.perf_counter()
        label = "unrouted"
        status: Optional[int] = None
        request_id = uuid.uuid4().hex[:12]
        with telemetry.log_context(request_id=request_id):
            try:
                version_rest = self._strip_version(request.path)
                deprecated = version_rest is None
                rest = request.path if deprecated else version_rest
                extra = self._deprecation_headers(request.path) if deprecated else {}
                label, handler = self._route(request, rest)
                self._check_auth(request, rest)
                stream_open = await handler(request, writer, extra, keep_alive)
                if stream_open is False:
                    keep_alive = False
            except ApiError as error:
                # 404/405 are routine probe answers (cache-miss lookups, evicted
                # batches); "rejected" counts requests the server refused to parse.
                status = error.status
                if error.status not in (404, 405):
                    self.stats.rejected += 1
                if error.close:
                    keep_alive = False
                headers = dict(error.headers)
                if label == "unrouted":
                    label = "error"
                await self._send_json(
                    writer,
                    error.status,
                    error_envelope(error.code, error.message, error.detail),
                    headers=headers,
                    keep_alive=keep_alive,
                )
            finally:
                elapsed = time.perf_counter() - started
                self.latency.observe(label, elapsed)
                # Per-request access line; ``status`` is only known on the
                # error path (success handlers write their own codes).
                fields: Dict[str, Any] = {
                    "endpoint": label,
                    "method": request.method,
                    "path": request.path,
                    "ms": round(1000.0 * elapsed, 3),
                }
                if status is not None:
                    fields["status"] = status
                _log.info("request", extra=fields)
        return keep_alive

    @staticmethod
    def _strip_version(path: str) -> Optional[str]:
        """The path below ``/v1``, or None for a legacy (unversioned) path.

        Unknown version prefixes fail here with a 404 + hint rather than
        falling through to the legacy aliases.
        """
        if path == f"/{API_VERSION}" or path.startswith(f"/{API_VERSION}/"):
            return path[len(API_VERSION) + 1 :] or "/"
        match = re.match(r"^/(v\d+)(?:/|$)", path)
        if match is not None:
            raise ApiError(
                404,
                "unknown-version",
                f"unknown API version {match.group(1)!r}",
                detail=f"this server speaks /{API_VERSION} only; "
                f"try /{API_VERSION}{path[len(match.group(1)) + 1 :]}",
            )
        return None

    @staticmethod
    def _deprecation_headers(path: str) -> Dict[str, str]:
        return {
            "Deprecation": "true",
            "Link": f'</{API_VERSION}{path}>; rel="successor-version"',
        }

    def _route(self, request: Request, rest: str):
        """Resolve ``(label, handler)`` for a version-stripped path."""
        method = request.method
        if rest == "/":
            if method == "GET":
                return "discovery", self._handle_discovery
        elif rest == "/healthz":
            if method == "GET":
                return "healthz", self._handle_healthz
        elif rest == "/stats":
            if method == "GET":
                return "stats", self._handle_stats
        elif rest == "/metrics":
            if method == "GET":
                return "metrics", self._handle_metrics
        elif rest == "/jobs":
            if method == "POST":
                return "jobs_submit", self._handle_jobs
        elif rest.startswith("/jobs/"):
            if method == "GET":
                if rest.endswith("/trace"):
                    return "job_trace", self._handle_job_trace
                if rest.endswith("/witness"):
                    return "job_witness", self._handle_job_witness
                return "job_lookup", self._handle_job_lookup
        elif rest.startswith("/batch/"):
            if method == "GET":
                if rest.endswith("/events"):
                    return "batch_events", self._handle_batch_events
                return "batch_status", self._handle_batch_status
        else:
            raise ApiError(
                404,
                "not-found",
                f"unknown path {request.path}",
                detail=f"endpoints live under /{API_VERSION}: jobs, jobs/{{fingerprint}}, "
                "jobs/{fingerprint}/trace, jobs/{fingerprint}/witness, "
                "batch/{id}, batch/{id}/events, "
                f"healthz, stats, metrics; GET /{API_VERSION}/ lists them all",
            )
        raise ApiError(405, "method-not-allowed", f"{method} not supported on {request.path}")

    def _check_auth(self, request: Request, rest: str) -> None:
        """Enforce the shared-secret token, when one is configured.

        ``/v1/healthz`` (and its legacy alias) stays open so liveness
        probes need no secret, and ``GET /v1/`` discovery stays open
        because it is API documentation, not data.  Missing credentials
        are 401; present but wrong credentials are 403.  Comparison is
        constant-time.
        """
        if self._auth_token is None or rest in ("/healthz", "/"):
            return
        supplied: Optional[str] = None
        authorization = request.headers.get("authorization")
        if authorization is not None:
            scheme, _, value = authorization.partition(" ")
            if scheme.lower() == "bearer" and value.strip():
                supplied = value.strip()
        if supplied is None:
            supplied = request.headers.get("x-auth-token")
        if supplied is None:
            self.stats.auth_rejected += 1
            raise ApiError(
                401,
                "auth-required",
                "this server requires an auth token",
                detail="send 'Authorization: Bearer <token>' or 'X-Auth-Token: <token>'",
                headers={"WWW-Authenticate": 'Bearer realm="repro"'},
            )
        if not hmac.compare_digest(supplied.encode("utf-8"), self._auth_token.encode("utf-8")):
            self.stats.auth_rejected += 1
            raise ApiError(403, "auth-invalid", "the supplied auth token does not match")

    # -- endpoint handlers -------------------------------------------------------

    def _discovery_document(self) -> Dict[str, Any]:
        """The ``GET /v1/`` body: who this node is and how to talk to it.

        Role, API version, store schema version, the route list and the
        full error-code catalogue in one machine-readable place; the
        coordinator subclass extends it with the runner fleet.
        """
        from repro import __version__  # deferred: repro imports this package
        from repro.service.backends import ROW_SCHEMA_VERSION

        return {
            "service": "repro",
            "version": __version__,
            "api_version": API_VERSION,
            "role": self.role,
            "node_id": self._node_id,
            "store": {
                "backend": self._store.backend.name if self._store is not None else None,
                "schema_version": ROW_SCHEMA_VERSION,
                "shared": self._store.is_shared if self._store is not None else False,
                "cluster_dedup": self._cluster_dedup,
            },
            "routes": list(SERVICE_ROUTES),
            "error_codes": dict(ERROR_CODES),
        }

    async def _handle_discovery(
        self, request: Request, writer: asyncio.StreamWriter, extra: Dict[str, str], keep: bool
    ) -> None:
        await self._send_json(
            writer, 200, self._discovery_document(), headers=extra, keep_alive=keep
        )

    async def _handle_healthz(
        self, request: Request, writer: asyncio.StreamWriter, extra: Dict[str, str], keep: bool
    ) -> None:
        from repro import __version__  # deferred: repro imports this package

        await self._send_json(
            writer,
            200,
            {
                "status": "draining" if self._draining else "ok",
                "version": __version__,
                "api_version": API_VERSION,
                "role": self.role,
                "workers": self._workers,
                "store": self._store.path if self._store is not None else None,
                "inflight": len(self._inflight),
                "auth": self._auth_token is not None,
            },
            headers=extra,
            keep_alive=keep,
        )

    def _stats_payload(self) -> Dict[str, Any]:
        return {
            **self.stats.as_dict(),
            "role": self.role,
            "node_id": self._node_id,
            "inflight": len(self._inflight),
            # Raw backend count: len(store) would run a TTL purge scan
            # per poll, too heavy for a monitoring endpoint.
            "store_size": self._store.backend.count() if self._store is not None else None,
            "queue": {
                "depth": self._pending,
                "limit": self._max_pending,
                "shed_total": self.stats.shed,
            },
            "connections": {
                "open": self._open_connections,
                "limit": self._max_connections,
                "total": self.stats.connections_total,
                "refused": self.stats.connections_refused,
            },
            "workers": {
                "configured": self._workers,
                "executing": self._executing_jobs,
            },
            # Cumulative engine search rollup over every job this server
            # actually executed (store hits excluded -- their search work
            # was already counted when the verdict was first computed).
            "engine": self.engine_rollup.as_dict(),
            "store": self._store.stats.as_dict() if self._store is not None else None,
            "latency": self.latency.summary(),
        }

    async def _handle_stats(
        self, request: Request, writer: asyncio.StreamWriter, extra: Dict[str, str], keep: bool
    ) -> None:
        await self._send_json(writer, 200, self._stats_payload(), headers=extra, keep_alive=keep)

    async def _handle_metrics(
        self, request: Request, writer: asyncio.StreamWriter, extra: Dict[str, str], keep: bool
    ) -> None:
        body = self._render_metrics().encode("utf-8")
        await self._send_raw(
            writer,
            200,
            body,
            content_type="text/plain; version=0.0.4; charset=utf-8",
            headers=extra,
            keep_alive=keep,
        )

    def _render_metrics(self) -> str:
        """The Prometheus text exposition of the whole stack.

        Everything lives in the registry: service counters (via
        :class:`ServiceStats`), request latency (via :class:`LatencyTracker`),
        and the callback-driven engine/store/worker families registered in
        :meth:`_register_telemetry`.
        """
        return self.registry.render()

    def _parse_body(self, body: bytes) -> Any:
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ApiError(400, "invalid-json", f"request body is not valid JSON: {exc}") from exc

    async def _handle_jobs(
        self, request: Request, writer: asyncio.StreamWriter, extra: Dict[str, str], keep: bool
    ) -> None:
        self._admit()
        release = True
        try:
            payload = self._parse_body(request.body)
            if isinstance(payload, Mapping) and "jobs" in payload:
                specs = payload["jobs"]
                if not isinstance(specs, list) or not specs:
                    raise ApiError(400, "invalid-spec", '"jobs" must be a non-empty array')
                wait = payload.get("wait", True)
                if not isinstance(wait, bool):
                    raise ApiError(400, "invalid-spec", '"wait" must be a boolean')
                jobs = [self.parse_job(spec, index) for index, spec in enumerate(specs)]
                record = self.new_batch(len(jobs))
                task = asyncio.get_running_loop().create_task(self.run_batch(record, jobs))
                # Keep a strong reference (the loop only holds weak ones) and
                # retrieve the exception of detached wait:false tasks.
                self._batch_tasks.add(task)
                task.add_done_callback(self._reap_batch_task)
                if wait:
                    await self._send_json(writer, 200, await task, headers=extra, keep_alive=keep)
                else:
                    # The detached batch keeps its admission slot until it
                    # completes, so queue depth reflects background work too.
                    release = False
                    task.add_done_callback(lambda _task: self._release())
                    await self._send_json(
                        writer,
                        202,
                        {
                            "batch_id": record.batch_id,
                            "jobs": len(jobs),
                            "status": "accepted",
                            "status_url": f"/{API_VERSION}/batch/{record.batch_id}",
                            "events_url": f"/{API_VERSION}/batch/{record.batch_id}/events",
                        },
                        headers=extra,
                        keep_alive=keep,
                    )
            elif isinstance(payload, Mapping):
                job = self.parse_job(payload)
                resolved, _counters = await self.resolve_jobs([job])
                result, served_from = resolved[0]
                await self._send_json(
                    writer,
                    200,
                    {
                        "served_from": served_from,
                        "fingerprint": result.fingerprint,
                        "result": result.as_dict(),
                    },
                    headers=extra,
                    keep_alive=keep,
                )
            else:
                raise ApiError(
                    400, "invalid-spec", 'body must be a job spec object or {"jobs": [...]}'
                )
        finally:
            if release:
                self._release()

    def _reap_batch_task(self, task: "asyncio.Task") -> None:
        self._batch_tasks.discard(task)
        if not task.cancelled() and task.exception() is not None:
            # run_batch already finished the record with an error report;
            # retrieving the exception here silences the GC-time warning.
            exc = task.exception()
            _log.error("batch task failed", extra={"error": f"{type(exc).__name__}: {exc}"})

    async def _handle_job_lookup(
        self, request: Request, writer: asyncio.StreamWriter, extra: Dict[str, str], keep: bool
    ) -> None:
        rest = self._strip_version(request.path) or request.path
        fingerprint = rest[len("/jobs/") :]
        cached = self._store.get(fingerprint) if self._store is not None else None
        if cached is None:
            raise ApiError(
                404,
                "not-found",
                f"no stored verdict for fingerprint {fingerprint[:16]!r}"
                + (" (currently in flight)" if fingerprint in self._inflight else ""),
            )
        await self._send_json(
            writer,
            200,
            {"served_from": "store", "fingerprint": fingerprint, "result": cached.as_dict()},
            headers=extra,
            keep_alive=keep,
        )

    async def _handle_job_trace(
        self, request: Request, writer: asyncio.StreamWriter, extra: Dict[str, str], keep: bool
    ) -> None:
        """Serve the recorded solver trace of a stored verdict.

        Traces only exist for jobs submitted with ``"trace": true``; the
        payload is the stored :meth:`TraceRecorder.as_dict` form (seconds),
        which ``repro trace`` converts to Chrome trace-event JSON.
        """
        rest = self._strip_version(request.path) or request.path
        fingerprint = rest[len("/jobs/") : -len("/trace")].rstrip("/")
        cached = self._store.get(fingerprint) if self._store is not None else None
        if cached is None:
            raise ApiError(
                404,
                "not-found",
                f"no stored verdict for fingerprint {fingerprint[:16]!r}"
                + (" (currently in flight)" if fingerprint in self._inflight else ""),
            )
        if cached.trace is None:
            raise ApiError(
                404,
                "not-found",
                f"no trace recorded for fingerprint {fingerprint[:16]!r}",
                detail='re-submit the job with "trace": true to record one',
            )
        await self._send_json(
            writer,
            200,
            {"fingerprint": fingerprint, "trace": cached.trace},
            headers=extra,
            keep_alive=keep,
        )

    def _witness_of(self, request: Request) -> str:
        rest = self._strip_version(request.path) or request.path
        return rest[len("/jobs/") : -len("/witness")].rstrip("/")

    async def _handle_job_witness(
        self, request: Request, writer: asyncio.StreamWriter, extra: Dict[str, str], keep: bool
    ) -> None:
        """Serve the stored witness certificate of a nonempty verdict.

        Certificates only exist for jobs submitted with ``"certificate":
        true`` whose verdict is nonempty; the payload carries the encoded
        (zlib+base64) certificate, which ``repro verify`` decodes and
        re-checks without the engine (:mod:`repro.certify`).
        """
        fingerprint = self._witness_of(request)
        cached = self._store.get(fingerprint) if self._store is not None else None
        if cached is None:
            raise ApiError(
                404,
                "not-found",
                f"no stored verdict for fingerprint {fingerprint[:16]!r}"
                + (" (currently in flight)" if fingerprint in self._inflight else ""),
            )
        if cached.certificate is None:
            raise ApiError(
                404,
                "not-found",
                f"no witness certificate stored for fingerprint {fingerprint[:16]!r}",
                detail=(
                    're-submit the job with "certificate": true to record one '
                    "(only nonempty verdicts carry a witness)"
                ),
            )
        self.stats.certificates_served += 1
        await self._send_json(
            writer,
            200,
            {
                "served_from": "store",
                "fingerprint": fingerprint,
                "nonempty": cached.nonempty,
                "certificate": cached.certificate,
            },
            headers=extra,
            keep_alive=keep,
        )

    def _get_record(self, batch_id: str) -> BatchRecord:
        record = self._batches.get(batch_id)
        if record is None:
            raise ApiError(404, "not-found", f"unknown batch {batch_id!r}")
        return record

    def _batch_id_of(self, request: Request, suffix: str = "") -> str:
        rest = self._strip_version(request.path) or request.path
        batch_id = rest[len("/batch/") :]
        if suffix and batch_id.endswith(suffix):
            batch_id = batch_id[: -len(suffix)].rstrip("/")
        return batch_id

    async def _handle_batch_status(
        self, request: Request, writer: asyncio.StreamWriter, extra: Dict[str, str], keep: bool
    ) -> None:
        record = self._get_record(self._batch_id_of(request))
        payload: Dict[str, Any] = {
            "batch_id": record.batch_id,
            "jobs": record.size,
            "completed": record.completed,
            "events": len(record.events),
        }
        if record.report is not None:
            payload["report"] = record.report
        await self._send_json(writer, 200, payload, headers=extra, keep_alive=keep)

    async def _handle_batch_events(
        self, request: Request, writer: asyncio.StreamWriter, extra: Dict[str, str], keep: bool
    ) -> bool:
        """Stream a batch's progress as NDJSON: replay, then follow live.

        The stream has no Content-Length, so it always terminates the
        connection (returns False to the keep-alive loop).
        """
        record = self._get_record(self._batch_id_of(request, suffix="/events"))
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Cache-Control: no-store\r\n"
            "Connection: close\r\n"
        )
        for name, value in extra.items():
            head += f"{name}: {value}\r\n"
        writer.write(head.encode("latin-1") + b"\r\n")
        index = 0
        while True:
            while index < len(record.events):
                line = json.dumps(record.events[index], sort_keys=True) + "\n"
                writer.write(line.encode("utf-8"))
                index += 1
            await writer.drain()
            # Re-check the cursor after drain(): events (including the
            # final batch_done) may have landed while a slow client was
            # being drained, and they must be flushed before closing.
            if index < len(record.events):
                continue
            if record.completed:
                break
            await record.wait_change()
        return False

    # -- response writers --------------------------------------------------------

    async def _send_raw(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str,
        headers: Optional[Dict[str, str]] = None,
        keep_alive: bool = True,
    ) -> None:
        head = (
            f"HTTP/1.1 {status} {HTTPStatus(status).phrase}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        )
        for name, value in (headers or {}).items():
            head += f"{name}: {value}\r\n"
        writer.write(head.encode("latin-1") + b"\r\n" + body)
        await writer.drain()

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        headers: Optional[Dict[str, str]] = None,
        keep_alive: bool = True,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        await self._send_raw(
            writer,
            status,
            body,
            content_type="application/json",
            headers=headers,
            keep_alive=keep_alive,
        )


# -- entry points ----------------------------------------------------------------


def run_server(
    store: Optional[ResultStore] = None,
    workers: int = 1,
    timeout_seconds: Optional[float] = None,
    host: str = "127.0.0.1",
    port: int = 8080,
    port_file: Optional[Union[str, Path]] = None,
    auth_token: Optional[str] = None,
    max_pending: Optional[int] = DEFAULT_MAX_PENDING,
    max_connections: int = DEFAULT_MAX_CONNECTIONS,
    retry_policy: Optional[RetryPolicy] = None,
    drain_timeout: float = 30.0,
    execute_delay: float = 0.0,
    log_level: Optional[str] = None,
    log_json: bool = False,
    service: Optional[VerificationService] = None,
) -> int:
    """Run the service until interrupted (the ``repro serve`` entry point).

    ``service`` injects a pre-built service instance -- how the CLI runs a
    :class:`~repro.service.coordinator.CoordinatorService` under the same
    signal handling, drain sequence and port-file plumbing; the other
    service-construction parameters are then ignored.

    With ``port=0`` the OS picks a free port; the bound port is printed and,
    when ``port_file`` is given, written there so scripts (the CI smoke job)
    can discover it race-free.  ``log_level``/``log_json`` switch on the
    structured request/batch/worker log stream (stderr; JSON lines when
    ``log_json`` is set); with neither given, logging stays unconfigured and
    only warnings surface through Python's last-resort handler.

    ``SIGTERM``/``SIGINT`` trigger a graceful drain (see
    :meth:`VerificationService.drain`): new work is refused with ``503``,
    in-flight batches get up to ``drain_timeout`` seconds to finish, the
    store is checkpointed, and the process exits ``0`` on a clean drain
    (``1`` when the budget elapsed with work still in flight).  A second
    signal skips the remaining budget and exits immediately.
    """
    if log_level is not None or log_json:
        telemetry.configure_logging(level=log_level or "info", json_lines=log_json)
    if service is None:
        service = VerificationService(
            store=store,
            workers=workers,
            timeout_seconds=timeout_seconds,
            auth_token=auth_token,
            max_pending=max_pending,
            max_connections=max_connections,
            retry_policy=retry_policy,
            execute_delay=execute_delay,
        )

    async def _serve() -> int:
        loop = asyncio.get_running_loop()
        drain_task: Optional[asyncio.Task] = None

        def _on_signal(signame: str) -> None:
            nonlocal drain_task
            if drain_task is None:
                print(
                    f"repro serve: {signame} received, draining "
                    f"(budget {drain_timeout}s)",
                    flush=True,
                )
                drain_task = loop.create_task(service.drain(drain_timeout))
            else:
                # Second signal: the operator wants out now.
                print(f"repro serve: second {signame}, exiting immediately", flush=True)
                drain_task.cancel()

        for signame in ("SIGTERM", "SIGINT"):
            signum = getattr(signal, signame, None)
            if signum is None:
                continue
            try:
                loop.add_signal_handler(signum, _on_signal, signame)
            except (NotImplementedError, RuntimeError):
                pass  # platforms/loops without signal support fall back to Ctrl-C

        bound_host, bound_port = await service.start(host, port)
        print(
            f"repro serve: listening on http://{bound_host}:{bound_port} "
            f"(api /{API_VERSION}, auth {'on' if auth_token else 'off'}, "
            f"max_pending {max_pending}, max_connections {max_connections}, "
            f"drain_timeout {drain_timeout}s)",
            flush=True,
        )
        if port_file is not None:
            Path(port_file).write_text(f"{bound_port}\n")
        clean = True
        try:
            await service.serve_forever()
        except asyncio.CancelledError:
            pass  # the drain closed the listener out from under serve_forever
        finally:
            if drain_task is not None:
                try:
                    clean = await drain_task
                except asyncio.CancelledError:
                    clean = False
            await service.stop()
        print(f"repro serve: drained {'cleanly' if clean else 'with work in flight'}", flush=True)
        return 0 if clean else 1

    try:
        return asyncio.run(_serve())
    except KeyboardInterrupt:
        # Loops without add_signal_handler (e.g. Windows Proactor quirks)
        # land here: no graceful drain, but still an orderly exit.
        print("repro serve: shutting down", flush=True)
    return 0


class ServerThread:
    """A server on a dedicated event-loop thread, for tests and embedding.

    ``start()`` blocks until the port is bound; ``stop()`` shuts the loop
    down and joins the thread.  Usable as a context manager.
    """

    def __init__(
        self,
        service: Optional[VerificationService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        **service_kwargs: Any,
    ) -> None:
        self.service = service if service is not None else VerificationService(**service_kwargs)
        self._host = host
        self._port = port
        self.address: Optional[Tuple[str, int]] = None
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run, name="repro-serve-loop", daemon=True)

    @property
    def base_url(self) -> str:
        assert self.address is not None, "server not started"
        return f"http://{self.address[0]}:{self.address[1]}"

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self.address = self._loop.run_until_complete(self.service.start(self._host, self._port))
        except BaseException as exc:  # surface bind errors to start()
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self.service.stop())
            self._loop.close()

    def start(self) -> "ServerThread":
        self._thread.start()
        self._started.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        if self.address is None:
            raise RuntimeError("server failed to start within 30s")
        return self

    def drain(self, timeout: float = 5.0) -> bool:
        """Run a graceful drain on the server's loop; returns its verdict."""
        future = asyncio.run_coroutine_threadsafe(self.service.drain(timeout), self._loop)
        return future.result(timeout=timeout + 30)

    def stop(self) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
