"""Pluggable keyspace backends for the fingerprinted result store.

:class:`~repro.service.store.ResultStore` used to talk to SQLite directly;
this module puts a :class:`StoreBackend` protocol between the store and its
persistence so many deployments can share one verdict cache:

* :class:`SQLiteBackend` -- the durable single-host default (what PR 2's
  monolithic store was);
* :class:`MemoryBackend` -- process-local, zero-setup; what tests and the
  HTTP server's default configuration use.

The protocol is deliberately *keyspace-shaped*: string keys mapped to flat
dictionaries of JSON-able primitives, plus ``oldest_keys``/``expired_keys``
scans for eviction.  A future Redis or HTTP backend maps onto it directly
(``GET``/``SET``/``DEL`` of a serialized row, a sorted set on ``created_at``
for the scans) without the store layer changing.

TTL and eviction *policy* live in :class:`ResultStore`; backends only supply
the mechanisms (timestamp scans and deletes).  Schema versioning is a
backend concern: :class:`SQLiteBackend` records its schema version in
SQLite's ``user_version`` pragma and upgrades older ``results`` tables in
place through ordered migration hooks (see :data:`SQLITE_MIGRATIONS`).

Multi-writer deployments (several ``repro serve`` runners sharing one
remote keyspace) additionally need two conditional-write primitives --
:meth:`StoreBackend.put_if_absent` and :meth:`StoreBackend.compare_and_put`
-- so fleet-wide in-flight claims can be taken atomically.  Plain ``put``
stays last-write-wins, which is safe for verdict rows because verdicts are
deterministic per fingerprint: two writers racing on the same fingerprint
write the same verdict.

Backends are addressed uniformly by URL through :func:`backend_from_url`:
``memory:``, ``sqlite:PATH`` (a bare path means sqlite), or ``http(s)://``
for the networked :class:`~repro.service.client.HTTPBackend` talking to a
``repro store serve`` keyspace server.
"""

from __future__ import annotations

import heapq
import sqlite3
import threading
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Protocol, Union

from repro.errors import StoreError

#: Column order of a result row; every backend stores exactly these fields.
#: ``wall_seconds`` (worker wall clock) and ``trace`` (serialized solver
#: trace, JSON or NULL) arrived with schema v3 and are nullable.  Schema v4
#: added the transient-failure bookkeeping: ``error``/``error_code`` (NULL
#: for verdicts), ``cacheable`` (0 marks an observability-only error row
#: that must never serve as a warm verdict) and ``expires_at`` (per-row
#: expiry for short-lived error rows, NULL = store TTL policy only).
#: Schema v5 added ``certificate``: the zlib+base64-encoded replayable
#: witness certificate of a nonempty verdict (see :mod:`repro.certify`),
#: NULL when the job did not opt in or the verdict is empty.
ROW_FIELDS = (
    "fingerprint",
    "created_at",
    "label",
    "nonempty",
    "exhausted",
    "elapsed_seconds",
    "witness_size",
    "run_length",
    "statistics",
    "job_spec",
    "wall_seconds",
    "trace",
    "error",
    "error_code",
    "cacheable",
    "expires_at",
    "certificate",
)

#: Values assumed for row fields absent from a ``put`` (rows written by
#: pre-v4 callers are cacheable verdicts).
ROW_DEFAULTS = {"cacheable": 1}

#: Version of the row shape above.  Tracks :data:`SQLITE_SCHEMA_VERSION`:
#: every schema migration that changes what a row carries bumps both.  The
#: keyspace wire protocol advertises it in discovery so a networked client
#: can refuse rows from a newer server instead of silently dropping fields.
ROW_SCHEMA_VERSION = 5


class StoreBackend(Protocol):
    """Keyspace contract the result store programs against.

    Rows are flat mappings of JSON-able primitives (``statistics`` and
    ``job_spec`` arrive pre-serialized as JSON strings), so a backend never
    needs to understand the verdict domain -- it moves opaque rows keyed by
    fingerprint, which is what makes a remote keyspace implementation
    straightforward.
    """

    #: Human-readable backend tag, surfaced by ``ResultStore.export``.
    name: str

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored row for ``key``, or None."""
        ...

    def put(self, key: str, row: Mapping[str, Any]) -> None:
        """Insert or replace the row for ``key`` (last write wins)."""
        ...

    def put_if_absent(self, key: str, row: Mapping[str, Any]) -> bool:
        """Atomically insert ``row`` only when ``key`` has no row yet.

        Returns True when the row was written, False when another writer
        got there first.  This is the claim primitive for fleet-wide
        in-flight dedup.
        """
        ...

    def compare_and_put(
        self, key: str, row: Mapping[str, Any], expected_created_at: float
    ) -> bool:
        """Atomically replace ``key``'s row only if its current
        ``created_at`` equals ``expected_created_at``.

        Returns True on success, False when the row is missing or was
        rewritten since the caller read it (optimistic concurrency).
        """
        ...

    def delete(self, key: str) -> bool:
        """Remove ``key``; True when a row was actually deleted."""
        ...

    def keys(self) -> List[str]:
        """All keys, sorted."""
        ...

    def count(self) -> int:
        """Number of stored rows."""
        ...

    def clear(self) -> int:
        """Delete everything; returns the number of rows removed."""
        ...

    def oldest_keys(self, limit: int) -> List[str]:
        """Up to ``limit`` keys, oldest ``created_at`` first (for eviction)."""
        ...

    def expired_keys(self, cutoff: float) -> List[str]:
        """Keys whose ``created_at`` is strictly below ``cutoff`` (for TTL)."""
        ...

    def rows(self) -> Iterator[Dict[str, Any]]:
        """Every row, ordered by key (for export)."""
        ...

    def checkpoint(self) -> None:
        """Flush any buffered writes to durable storage (may be a no-op)."""
        ...

    def close(self) -> None:
        """Release any underlying resources."""
        ...


class MemoryBackend:
    """An in-process dictionary keyspace; thread-safe, nothing persisted."""

    name = "memory"
    #: Memory rows always carry the current row shape.
    schema_version = ROW_SCHEMA_VERSION

    def __init__(self) -> None:
        self._rows: Dict[str, Dict[str, Any]] = {}
        self._lock = threading.RLock()

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            row = self._rows.get(key)
            return dict(row) if row is not None else None

    def put(self, key: str, row: Mapping[str, Any]) -> None:
        with self._lock:
            self._rows[key] = dict(row)

    def put_if_absent(self, key: str, row: Mapping[str, Any]) -> bool:
        with self._lock:
            if key in self._rows:
                return False
            self._rows[key] = dict(row)
            return True

    def compare_and_put(
        self, key: str, row: Mapping[str, Any], expected_created_at: float
    ) -> bool:
        with self._lock:
            current = self._rows.get(key)
            if current is None or current.get("created_at") != expected_created_at:
                return False
            self._rows[key] = dict(row)
            return True

    def delete(self, key: str) -> bool:
        with self._lock:
            return self._rows.pop(key, None) is not None

    def keys(self) -> List[str]:
        with self._lock:
            return sorted(self._rows)

    def count(self) -> int:
        with self._lock:
            return len(self._rows)

    def clear(self) -> int:
        with self._lock:
            removed = len(self._rows)
            self._rows.clear()
            return removed

    def oldest_keys(self, limit: int) -> List[str]:
        with self._lock:
            # Eviction asks for a handful of keys out of a large keyspace:
            # a bounded heap beats sorting everything on every store write.
            return heapq.nsmallest(
                limit, self._rows, key=lambda k: (self._rows[k]["created_at"], k)
            )

    def expired_keys(self, cutoff: float) -> List[str]:
        with self._lock:
            return sorted(k for k, row in self._rows.items() if row["created_at"] < cutoff)

    def rows(self) -> Iterator[Dict[str, Any]]:
        with self._lock:
            snapshot = [dict(self._rows[key]) for key in sorted(self._rows)]
        yield from snapshot

    def checkpoint(self) -> None:
        pass

    def close(self) -> None:
        pass


#: Current on-disk schema version of :class:`SQLiteBackend`.
SQLITE_SCHEMA_VERSION = 5

_SQLITE_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    fingerprint TEXT PRIMARY KEY,
    created_at REAL NOT NULL,
    label TEXT NOT NULL DEFAULT '',
    nonempty INTEGER NOT NULL,
    exhausted INTEGER NOT NULL,
    elapsed_seconds REAL NOT NULL,
    witness_size INTEGER,
    run_length INTEGER,
    statistics TEXT NOT NULL,
    job_spec TEXT NOT NULL,
    wall_seconds REAL,
    trace TEXT,
    error TEXT,
    error_code TEXT,
    cacheable INTEGER NOT NULL DEFAULT 1,
    expires_at REAL,
    certificate TEXT
)
"""


def _migrate_v2(connection: sqlite3.Connection) -> None:
    """v1 -> v2: index ``created_at`` so TTL/eviction scans stay O(log n)."""
    connection.execute("CREATE INDEX IF NOT EXISTS idx_results_created_at ON results (created_at)")


def _migrate_v3(connection: sqlite3.Connection) -> None:
    """v2 -> v3: worker wall clock and the opt-in solver trace per verdict."""
    columns = {name for (_, name, *_rest) in connection.execute("PRAGMA table_info(results)")}
    if "wall_seconds" not in columns:
        connection.execute("ALTER TABLE results ADD COLUMN wall_seconds REAL")
    if "trace" not in columns:
        connection.execute("ALTER TABLE results ADD COLUMN trace TEXT")


def _migrate_v4(connection: sqlite3.Connection) -> None:
    """v3 -> v4: transient-failure rows (error, error_code, cacheable, expiry)."""
    columns = {name for (_, name, *_rest) in connection.execute("PRAGMA table_info(results)")}
    if "error" not in columns:
        connection.execute("ALTER TABLE results ADD COLUMN error TEXT")
    if "error_code" not in columns:
        connection.execute("ALTER TABLE results ADD COLUMN error_code TEXT")
    if "cacheable" not in columns:
        connection.execute(
            "ALTER TABLE results ADD COLUMN cacheable INTEGER NOT NULL DEFAULT 1"
        )
    if "expires_at" not in columns:
        connection.execute("ALTER TABLE results ADD COLUMN expires_at REAL")


def _migrate_v5(connection: sqlite3.Connection) -> None:
    """v4 -> v5: the compressed replayable witness certificate per verdict."""
    columns = {name for (_, name, *_rest) in connection.execute("PRAGMA table_info(results)")}
    if "certificate" not in columns:
        connection.execute("ALTER TABLE results ADD COLUMN certificate TEXT")


#: Ordered migration hooks: target version -> migration applying the step
#: from the previous version.  Extend (never edit) when the schema evolves.
SQLITE_MIGRATIONS = {2: _migrate_v2, 3: _migrate_v3, 4: _migrate_v4, 5: _migrate_v5}


class SQLiteBackend:
    """The durable single-host keyspace: one SQLite file (or ``:memory:``).

    The schema version is tracked in ``PRAGMA user_version``.  Databases
    written before versioning existed (PR 2's stores carry ``user_version
    0`` with a ``results`` table) are treated as version 1 and migrated
    forward in place; a database from a *newer* code line raises
    :class:`~repro.errors.StoreError` rather than guessing.
    """

    def __init__(self, path: Union[str, Path] = ":memory:") -> None:
        self._path = str(path)
        # The HTTP server calls into the store from the event-loop thread
        # while tests drive it from the main thread; a single lock around a
        # single connection keeps SQLite happy.
        self._lock = threading.RLock()
        self._connection = sqlite3.connect(self._path, check_same_thread=False)
        self._wal = False
        if self._path != ":memory:":
            # WAL keeps the main database file consistent under a hard kill
            # (a crash loses at most the tail of the log, never corrupts
            # committed rows) and lets readers proceed during commits.
            # synchronous=NORMAL is the standard WAL pairing: commits are
            # atomic across process kills; only an OS/power failure can drop
            # the very last commits, which for a verdict cache means
            # re-execution, not corruption.
            mode = self._connection.execute("PRAGMA journal_mode=WAL").fetchone()[0]
            self._wal = str(mode).lower() == "wal"
            self._connection.execute("PRAGMA synchronous=NORMAL")
        self._migrate()

    @property
    def name(self) -> str:
        return f"sqlite:{self._path}"

    @property
    def path(self) -> str:
        return self._path

    @property
    def schema_version(self) -> int:
        with self._lock:
            (version,) = self._connection.execute("PRAGMA user_version").fetchone()
            return version

    def _migrate(self) -> None:
        with self._lock:
            (version,) = self._connection.execute("PRAGMA user_version").fetchone()
            if version == 0:
                has_results = self._connection.execute(
                    "SELECT 1 FROM sqlite_master WHERE type = 'table' AND name = 'results'"
                ).fetchone()
                if has_results is None:
                    # Fresh database: create the current schema outright.
                    self._connection.execute(_SQLITE_SCHEMA)
                    for target in sorted(SQLITE_MIGRATIONS):
                        SQLITE_MIGRATIONS[target](self._connection)
                    version = SQLITE_SCHEMA_VERSION
                else:
                    version = 1  # pre-versioning store from PR 2
            if version > SQLITE_SCHEMA_VERSION:
                raise StoreError(
                    f"store at {self._path} has schema version {version}, newer than "
                    f"this build's {SQLITE_SCHEMA_VERSION}; refusing to touch it"
                )
            for target in sorted(SQLITE_MIGRATIONS):
                if target > version:
                    SQLITE_MIGRATIONS[target](self._connection)
            self._connection.execute(f"PRAGMA user_version = {SQLITE_SCHEMA_VERSION}")
            self._connection.commit()

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            row = self._connection.execute(
                f"SELECT {', '.join(ROW_FIELDS)} FROM results WHERE fingerprint = ?",
                (key,),
            ).fetchone()
        return dict(zip(ROW_FIELDS, row)) if row is not None else None

    @property
    def wal_enabled(self) -> bool:
        return self._wal

    @staticmethod
    def _row_values(row: Mapping[str, Any]) -> tuple:
        # Nullable late-schema fields may be absent from rows written by
        # older callers; missing keys store as NULL (or the v4 defaults).
        return tuple(row.get(field, ROW_DEFAULTS.get(field)) for field in ROW_FIELDS)

    def put(self, key: str, row: Mapping[str, Any]) -> None:
        with self._lock:
            self._connection.execute(
                f"INSERT OR REPLACE INTO results ({', '.join(ROW_FIELDS)}) "
                f"VALUES ({', '.join('?' * len(ROW_FIELDS))})",
                self._row_values(row),
            )
            self._connection.commit()

    def put_if_absent(self, key: str, row: Mapping[str, Any]) -> bool:
        with self._lock:
            cursor = self._connection.execute(
                f"INSERT OR IGNORE INTO results ({', '.join(ROW_FIELDS)}) "
                f"VALUES ({', '.join('?' * len(ROW_FIELDS))})",
                self._row_values(row),
            )
            self._connection.commit()
            return cursor.rowcount > 0

    def compare_and_put(
        self, key: str, row: Mapping[str, Any], expected_created_at: float
    ) -> bool:
        assignments = ", ".join(f"{field} = ?" for field in ROW_FIELDS)
        with self._lock:
            cursor = self._connection.execute(
                f"UPDATE results SET {assignments} "
                "WHERE fingerprint = ? AND created_at = ?",
                (*self._row_values(row), key, expected_created_at),
            )
            self._connection.commit()
            return cursor.rowcount > 0

    def delete(self, key: str) -> bool:
        with self._lock:
            cursor = self._connection.execute(
                "DELETE FROM results WHERE fingerprint = ?",
                (key,),
            )
            self._connection.commit()
            return cursor.rowcount > 0

    def keys(self) -> List[str]:
        with self._lock:
            return [
                fingerprint
                for (fingerprint,) in self._connection.execute(
                    "SELECT fingerprint FROM results ORDER BY fingerprint"
                )
            ]

    def count(self) -> int:
        with self._lock:
            (count,) = self._connection.execute("SELECT COUNT(*) FROM results").fetchone()
            return count

    def clear(self) -> int:
        with self._lock:
            removed = self.count()
            self._connection.execute("DELETE FROM results")
            self._connection.commit()
            return removed

    def oldest_keys(self, limit: int) -> List[str]:
        with self._lock:
            return [
                fingerprint
                for (fingerprint,) in self._connection.execute(
                    "SELECT fingerprint FROM results ORDER BY created_at, fingerprint LIMIT ?",
                    (limit,),
                )
            ]

    def expired_keys(self, cutoff: float) -> List[str]:
        with self._lock:
            return [
                fingerprint
                for (fingerprint,) in self._connection.execute(
                    "SELECT fingerprint FROM results WHERE created_at < ? "
                    "ORDER BY fingerprint",
                    (cutoff,),
                )
            ]

    def rows(self) -> Iterator[Dict[str, Any]]:
        with self._lock:
            fetched = self._connection.execute(
                f"SELECT {', '.join(ROW_FIELDS)} FROM results ORDER BY fingerprint"
            ).fetchall()
        for row in fetched:
            yield dict(zip(ROW_FIELDS, row))

    def checkpoint(self) -> None:
        """Flush the write-ahead log into the main database file.

        Called by the server's graceful drain so a subsequent hard kill has
        nothing left in flight; a no-op outside WAL mode.
        """
        with self._lock:
            self._connection.commit()
            if self._wal:
                self._connection.execute("PRAGMA wal_checkpoint(TRUNCATE)")

    def close(self) -> None:
        with self._lock:
            try:
                self.checkpoint()
            except sqlite3.Error:
                pass
            self._connection.close()


def backend_from_url(
    spec: Union[str, Path],
    *,
    token: Optional[str] = None,
    timeout: float = 30.0,
) -> StoreBackend:
    """Build a backend from a URL-style spec; the one addressing scheme.

    Accepted forms:

    * ``memory:`` (or plain ``memory``) -- process-local
      :class:`MemoryBackend`;
    * ``sqlite:PATH`` / ``sqlite:///PATH`` -- durable
      :class:`SQLiteBackend` at ``PATH`` (``sqlite::memory:`` works);
    * ``http://HOST:PORT`` / ``https://...`` -- networked
      :class:`~repro.service.client.HTTPBackend` against a ``repro store
      serve`` keyspace server (``token``/``timeout`` apply only here);
    * anything else -- treated as a bare SQLite path, which is what every
      pre-URL caller passed.
    """
    text = str(spec)
    if text in ("memory", "memory:", "memory://"):
        return MemoryBackend()
    if text.startswith(("http://", "https://")):
        # Deferred import: client.py imports from this module at load time.
        from repro.service.client import HTTPBackend

        return HTTPBackend(text, token=token, timeout=timeout)
    if text.startswith("sqlite:"):
        path = text[len("sqlite:"):]
        if path.startswith("//"):  # sqlite:///relative or sqlite:////abs
            path = path[2:]
        if not path:
            raise StoreError(f"sqlite backend spec {text!r} is missing a path")
        return SQLiteBackend(path)
    return SQLiteBackend(text)
