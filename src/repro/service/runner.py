"""The batch runner: fan verification jobs out over worker processes.

The decision procedure is deterministic in the job spec, so parallelism is
embarrassing: each job ships to a worker as its JSON spec, the worker
rebuilds it (``VerificationJob.from_spec``), runs the engine, and returns a
:class:`~repro.service.jobs.JobResult`.  The runner guarantees

* **serial equivalence** -- verdicts are identical to a one-worker run (each
  job is independent and the engine is deterministic; a test and the
  benchmark pipeline cross-check this),
* **fingerprint stability** -- every worker recomputes the fingerprint from
  the shipped spec and the parent verifies it matches, catching any
  non-canonical serialization before it can poison the store,
* **graceful failure** -- a worker error or timeout yields an errored
  :class:`JobResult` for that job only; the rest of the batch proceeds.

Results are written to the :class:`~repro.service.store.ResultStore` by the
parent only (SQLite single-writer), and jobs whose fingerprint is already
stored are served from it without spawning any work -- the warm-cache path
the service exists for.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.fraisse.plans import prime_plans
from repro.service.jobs import JobResult, VerificationJob, execute_job
from repro.service.store import ResultStore

_log = telemetry.get_logger("runner")

#: Worker payload: ``(spec, timeout, correlation fields for log lines)``.
WorkerPayload = Tuple[Dict[str, Any], Optional[float], Dict[str, str]]


def _execute_payload(payload: WorkerPayload) -> JobResult:
    """Worker entry point (top-level so it pickles under any start method)."""
    spec, timeout_seconds, log_fields = payload
    began = time.perf_counter()
    with telemetry.log_context(**log_fields):
        job = VerificationJob.from_spec(spec)
        # Warm the process-wide compiled-plan cache before the timed run: guards
        # are keyed by the theory's stable plan key, so same-theory jobs later in
        # the batch (the common shape of generated batches) reuse the compiled
        # evaluators instead of recompiling per job.
        prime_plans(job.system, job.theory)
        result = execute_job(job, timeout_seconds=timeout_seconds)
    result.wall_seconds = time.perf_counter() - began
    return result


def _execute_indexed_payload(
    payload: Tuple[int, Dict[str, Any], Optional[float], Dict[str, str]],
) -> Tuple[int, JobResult]:
    """Index-carrying worker entry point for unordered completion streams.

    This only ever runs inside a pool worker process, so it also measures
    the engine counter movement (cache hits/misses, plan compilations) the
    job caused there; the parent folds the delta into its own telemetry --
    counters in a child process are otherwise invisible to ``/v1/metrics``.
    """
    index, spec, timeout_seconds, log_fields = payload
    before = telemetry.engine_counters_snapshot()
    result = _execute_payload((spec, timeout_seconds, log_fields))
    result.worker_counters = telemetry.engine_counters_delta(
        before, telemetry.engine_counters_snapshot()
    )
    return index, result


@dataclass
class BatchReport:
    """Outcome of one batch run; ``results`` is aligned with the input jobs."""

    results: List[JobResult] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    workers: int = 1
    cache_hits: int = 0
    executed: int = 0

    @property
    def verdicts(self) -> List[Optional[bool]]:
        return [result.nonempty for result in self.results]

    @property
    def errors(self) -> List[JobResult]:
        return [result for result in self.results if not result.ok]

    def verdict_counts(self) -> Dict[str, int]:
        """Verdict histogram; "empty" means *definitively* empty.

        A negative answer with ``exhausted=False`` only says the engine hit
        its configuration cap before finding a run -- that is
        "inconclusive", never "empty" (mirroring the "not definitive" note
        ``repro check`` prints for the same situation).
        """
        counts = {"nonempty": 0, "empty": 0, "inconclusive": 0, "error": 0}
        for result in self.results:
            if not result.ok:
                counts["error"] += 1
            elif result.nonempty:
                counts["nonempty"] += 1
            elif result.exhausted:
                counts["empty"] += 1
            else:
                counts["inconclusive"] += 1
        return counts

    def as_dict(self) -> Dict[str, Any]:
        return {
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "workers": self.workers,
            "jobs": len(self.results),
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "verdict_counts": self.verdict_counts(),
            "results": [result.as_dict() for result in self.results],
        }


class FingerprintMismatch(RuntimeError):
    """A worker computed a different fingerprint from the shipped spec."""


class BatchRunner:
    """Run batches of verification jobs, optionally in parallel.

    Parameters
    ----------
    store:
        Optional :class:`ResultStore`; when given, jobs already decided are
        served from it and fresh verdicts are written back.
    workers:
        Number of worker processes.  ``1`` (the default) runs everything in
        the calling process -- the reference behaviour parallel runs must
        reproduce verdict-for-verdict.
    timeout_seconds:
        Per-job wall-clock budget enforced inside workers (Unix only); jobs
        over budget come back as errored results, never as verdicts.
    start_method:
        ``multiprocessing`` start method for the pool.  The default is
        ``"spawn"``: the HTTP server runs batches off executor threads, and
        forking a multi-threaded process can inherit locks mid-acquisition
        (the classic fork-from-a-thread deadlock).  Spawned workers import
        the job spec from scratch -- slower to start (~0.5s on this
        codebase) but safe under any threading, and the worker entry points
        are module-level precisely so they pickle under spawn.  Pass
        ``"fork"`` to recover the old behaviour in single-threaded batch
        scripts where startup latency dominates.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        workers: int = 1,
        timeout_seconds: Optional[float] = None,
        start_method: str = "spawn",
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if start_method not in multiprocessing.get_all_start_methods():
            raise ValueError(
                f"unknown start method {start_method!r}; this platform supports "
                f"{multiprocessing.get_all_start_methods()}"
            )
        self._store = store
        self._workers = workers
        self._timeout_seconds = timeout_seconds
        self._start_method = start_method

    @property
    def store(self) -> Optional[ResultStore]:
        return self._store

    def run(self, jobs: Sequence[VerificationJob]) -> BatchReport:
        """Execute a batch; the report's results align with ``jobs``."""
        start = time.perf_counter()
        report = BatchReport(workers=self._workers)
        results: List[Optional[JobResult]] = [None] * len(jobs)

        pending: List[Tuple[int, VerificationJob]] = []
        for index, job in enumerate(jobs):
            cached = self._store.get(job.fingerprint) if self._store is not None else None
            # A traced job whose stored verdict has no trace re-executes so
            # the requested trace actually gets recorded (same verdict; the
            # store row is rewritten with the trace attached).
            if cached is not None and not (job.trace and cached.trace is None):
                cached.label = cached.label or job.label
                results[index] = cached
                report.cache_hits += 1
            else:
                pending.append((index, job))

        if pending:
            pending_jobs = [job for _, job in pending]
            for local_index, result in self.execute_indexed(pending_jobs):
                index, job = pending[local_index]
                results[index] = result
                report.executed += 1
                if self._store is not None and result.ok:
                    self._store.put(job, result)

        report.results = [result for result in results if result is not None]
        report.elapsed_seconds = time.perf_counter() - start
        _log.info(
            "batch finished",
            extra={
                "jobs": len(jobs),
                "cache_hits": report.cache_hits,
                "executed": report.executed,
                "workers": self._workers,
                "batch_seconds": round(report.elapsed_seconds, 3),
            },
        )
        return report

    # -- execution ---------------------------------------------------------------

    def execute_indexed(self, jobs: Sequence[VerificationJob]) -> Iterator[Tuple[int, JobResult]]:
        """Execute ``jobs`` (no store involvement), yielding as each completes.

        Yields ``(index, result)`` pairs in completion order -- input order
        for one worker, nondeterministic for a parallel pool -- so callers
        like the HTTP server can stream per-job progress while the rest of
        the batch is still running.  Every result's fingerprint is verified
        against its job before it is yielded (see :class:`FingerprintMismatch`).

        A single job only stays in the calling thread when no timeout is
        set: the SIGALRM budget needs a worker process's main thread, and
        callers like the HTTP server invoke this off the main thread where
        the alarm would be silently skipped.
        """
        log_fields = telemetry.current_log_context()
        if self._workers == 1 or len(jobs) == 1 and self._timeout_seconds is None:
            for index, job in enumerate(jobs):
                payload = (job.to_spec(), self._timeout_seconds, log_fields)
                yield index, self._verified(job, index, _execute_payload(payload))
            return
        payloads = [
            (index, job.to_spec(), self._timeout_seconds, log_fields)
            for index, job in enumerate(jobs)
        ]
        context = multiprocessing.get_context(self._start_method)
        processes = min(self._workers, len(jobs))
        _log.debug("starting worker pool", extra={"workers": processes, "jobs": len(jobs)})
        with context.Pool(processes=processes) as pool:
            for index, result in pool.imap_unordered(
                _execute_indexed_payload, payloads, chunksize=1
            ):
                telemetry.merge_worker_counters(result.worker_counters)
                result.worker_counters = None
                yield index, self._verified(jobs[index], index, result)

    def _verified(self, job: VerificationJob, index: int, result: JobResult) -> JobResult:
        if result.fingerprint != job.fingerprint:
            raise FingerprintMismatch(
                f"job {job.label or index}: parent fingerprint "
                f"{job.fingerprint[:12]} != worker fingerprint "
                f"{result.fingerprint[:12]}; spec serialization is "
                "not canonical"
            )
        if result.error is not None:
            _log.warning(
                "job failed",
                extra={"fingerprint": result.fingerprint[:12], "error": result.error},
            )
        return result


def run_batch(
    jobs: Sequence[VerificationJob],
    store: Optional[ResultStore] = None,
    workers: int = 1,
    timeout_seconds: Optional[float] = None,
) -> BatchReport:
    """One-shot convenience wrapper around :class:`BatchRunner`."""
    return BatchRunner(store=store, workers=workers, timeout_seconds=timeout_seconds).run(jobs)
