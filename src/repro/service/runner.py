"""The batch runner: fan verification jobs out over supervised workers.

The decision procedure is deterministic in the job spec, so parallelism is
embarrassing: each job ships to a worker as its JSON spec, the worker
rebuilds it (``VerificationJob.from_spec``), runs the engine, and returns a
:class:`~repro.service.jobs.JobResult`.  The runner guarantees

* **serial equivalence** -- verdicts are identical to a one-worker run (each
  job is independent and the engine is deterministic; a test and the
  benchmark pipeline cross-check this),
* **fingerprint stability** -- every worker recomputes the fingerprint from
  the shipped spec and the parent verifies it matches, catching any
  non-canonical serialization before it can poison the store,
* **graceful failure** -- a worker error, crash, or timeout yields an
  errored :class:`JobResult` for that job only; the rest of the batch
  proceeds.  Parallel execution runs on a
  :class:`~repro.service.supervisor.SupervisedPool`: dead workers surface
  as ``worker-crashed`` results, wedged workers are killed at a parent-side
  deadline (``timeout + grace``) and surface as ``deadline-exceeded`` --
  the batch never hangs on a lost worker,
* **bounded retries** -- a :class:`RetryPolicy` re-executes transiently
  failed jobs (crash/timeout/store-IO) with exponential backoff and jitter;
  deterministic failures (bad specs, engine errors) are never retried.

Results are written to the :class:`~repro.service.store.ResultStore` by the
parent only (SQLite single-writer), and jobs whose fingerprint is already
stored are served from it without spawning any work -- the warm-cache path
the service exists for.  Transient failures are recorded in the store as
non-cacheable rows (observability only) and re-execute on resubmission.
"""

from __future__ import annotations

import multiprocessing
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro import faults, telemetry
from repro.fraisse.plans import prime_plans
from repro.service.jobs import (
    RETRYABLE_ERROR_CODES,
    JobResult,
    VerificationJob,
    execute_job,
)
from repro.service.store import ResultStore
from repro.service.supervisor import PoolEvent, SupervisedPool

_log = telemetry.get_logger("runner")

#: Worker payload: ``(spec, fingerprint, timeout, correlation log fields)``.
#: The fingerprint rides along so a worker that cannot even rebuild the spec
#: can still report a structured error for the right job.
WorkerPayload = Tuple[Dict[str, Any], str, Optional[float], Dict[str, str]]

#: Parent-side grace margin added to the per-job timeout before a worker is
#: declared wedged and killed (the in-worker alarm gets first shot).
DEFAULT_GRACE_SECONDS = 5.0


def _execute_payload(payload: WorkerPayload) -> JobResult:
    """Worker entry point (top-level so it pickles under any start method)."""
    spec, fingerprint, timeout_seconds, log_fields = payload
    began = time.perf_counter()
    with telemetry.log_context(**log_fields):
        try:
            job = VerificationJob.from_spec(spec)
        except Exception as exc:  # noqa: BLE001 - a bad spec must not kill the worker
            return JobResult(
                fingerprint=fingerprint,
                label=str(spec.get("label", "")),
                wall_seconds=time.perf_counter() - began,
                error=f"{type(exc).__name__}: {exc}",
                error_code="spec-error",
            )
        # Warm the process-wide compiled-plan cache before the timed run: guards
        # are keyed by the theory's stable plan key, so same-theory jobs later in
        # the batch (the common shape of generated batches) reuse the compiled
        # evaluators instead of recompiling per job.
        prime_plans(job.system, job.theory)
        result = execute_job(job, timeout_seconds=timeout_seconds)
    result.wall_seconds = time.perf_counter() - began
    return result


def _supervised_entry(payload: WorkerPayload, attempt: int) -> JobResult:
    """Pool-worker entry point: fault hooks + engine-counter measurement.

    This only ever runs inside a supervised worker process, so it hosts the
    destructive fault points (``worker.crash`` hard-kills the process,
    ``worker.hang`` wedges it past its deadline) and measures the engine
    counter movement the job caused there; the parent folds the delta into
    its own telemetry -- counters in a child process are otherwise invisible
    to ``/v1/metrics``.
    """
    fingerprint = payload[1]
    faults.crash_point("worker.crash", key=fingerprint, attempt=attempt)
    faults.hang_point("worker.hang", key=fingerprint, attempt=attempt)
    before = telemetry.engine_counters_snapshot()
    result = _execute_payload(payload)
    result.worker_counters = telemetry.engine_counters_delta(
        before, telemetry.engine_counters_snapshot()
    )
    result.attempts = attempt
    return result


@dataclass(frozen=True)
class RetryPolicy:
    """How transiently failed jobs are re-executed.

    ``max_attempts`` counts total executions (1 = never retry, the
    default).  Backoff for attempt *n* (1-based) is
    ``min(backoff_max_seconds, backoff_base_seconds * backoff_factor**(n-1))``
    randomized down by up to ``jitter`` (a fraction in [0, 1]) so retry
    storms decorrelate.  Only error codes in ``retryable_codes`` are
    retried: crashes, deadline kills, timeouts and store IO are transient;
    spec and engine errors are deterministic in the job and would only
    reproduce.
    """

    max_attempts: int = 1
    backoff_base_seconds: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_seconds: float = 2.0
    jitter: float = 0.5
    retryable_codes: frozenset = RETRYABLE_ERROR_CODES

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_seconds < 0 or self.backoff_max_seconds < 0:
            raise ValueError("backoff seconds must be >= 0")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be >= 1")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be within [0, 1]")

    @classmethod
    def with_retries(cls, retries: int, **overrides: Any) -> "RetryPolicy":
        """Policy granting ``retries`` extra attempts (the CLI's ``--retries``)."""
        return cls(max_attempts=retries + 1, **overrides)

    def attempts_for(self, job: VerificationJob) -> int:
        """Total attempts for one job; the job's own budget wins when set."""
        if job.retries is not None:
            return job.retries + 1
        return self.max_attempts

    def should_retry(self, result: JobResult, attempt: int, job: VerificationJob) -> bool:
        return (
            result.error is not None
            and result.error_code in self.retryable_codes
            and attempt < self.attempts_for(job)
        )

    def delay_seconds(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Backoff before the attempt *after* ``attempt`` (1-based) runs."""
        delay = min(
            self.backoff_max_seconds,
            self.backoff_base_seconds * self.backoff_factor ** (attempt - 1),
        )
        draw = (rng or random).random()
        return delay * (1 - self.jitter * draw)


class RunnerStats:
    """Monotonic fault-tolerance counters, exposed as ``repro_*_total`` metrics."""

    __slots__ = (
        "retries",
        "worker_crashes",
        "deadline_exceeded",
        "worker_respawns",
        "store_put_retries",
        "store_put_failures",
    )

    def __init__(self) -> None:
        self.retries = 0
        self.worker_crashes = 0
        self.deadline_exceeded = 0
        self.worker_respawns = 0
        self.store_put_retries = 0
        self.store_put_failures = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


@dataclass
class BatchReport:
    """Outcome of one batch run; ``results`` is aligned with the input jobs."""

    results: List[JobResult] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    workers: int = 1
    cache_hits: int = 0
    executed: int = 0
    #: Fault-tolerance counter movement this batch caused (retries, crashes,
    #: deadline kills, respawns) -- the CLI surfaces it in ``--json`` output.
    fault_tolerance: Dict[str, int] = field(default_factory=dict)

    @property
    def verdicts(self) -> List[Optional[bool]]:
        return [result.nonempty for result in self.results]

    @property
    def errors(self) -> List[JobResult]:
        return [result for result in self.results if not result.ok]

    def verdict_counts(self) -> Dict[str, int]:
        """Verdict histogram; "empty" means *definitively* empty.

        A negative answer with ``exhausted=False`` only says the engine hit
        its configuration cap before finding a run -- that is
        "inconclusive", never "empty" (mirroring the "not definitive" note
        ``repro check`` prints for the same situation).
        """
        counts = {"nonempty": 0, "empty": 0, "inconclusive": 0, "error": 0}
        for result in self.results:
            if not result.ok:
                counts["error"] += 1
            elif result.nonempty:
                counts["nonempty"] += 1
            elif result.exhausted:
                counts["empty"] += 1
            else:
                counts["inconclusive"] += 1
        return counts

    def as_dict(self) -> Dict[str, Any]:
        return {
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "workers": self.workers,
            "jobs": len(self.results),
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "verdict_counts": self.verdict_counts(),
            "fault_tolerance": dict(self.fault_tolerance),
            "results": [result.as_dict() for result in self.results],
        }


class FingerprintMismatch(RuntimeError):
    """A worker computed a different fingerprint from the shipped spec."""


class BatchRunner:
    """Run batches of verification jobs, optionally in parallel.

    Parameters
    ----------
    store:
        Optional :class:`ResultStore`; when given, jobs already decided are
        served from it and fresh verdicts are written back.
    workers:
        Number of worker processes.  ``1`` (the default) runs everything in
        the calling process -- the reference behaviour parallel runs must
        reproduce verdict-for-verdict.
    timeout_seconds:
        Per-job wall-clock budget enforced inside workers (Unix only) and,
        in pool mode, by a parent-side deadline of ``timeout + grace`` that
        kills wedged workers the in-worker alarm cannot reach.
    start_method:
        ``multiprocessing`` start method for the pool.  The default is
        ``"spawn"``: the HTTP server runs batches off executor threads, and
        forking a multi-threaded process can inherit locks mid-acquisition
        (the classic fork-from-a-thread deadlock).  Spawned workers import
        the job spec from scratch -- slower to start (~0.5s on this
        codebase) but safe under any threading, and the worker entry points
        are module-level precisely so they pickle under spawn.  Pass
        ``"fork"`` to recover the old behaviour in single-threaded batch
        scripts where startup latency dominates.
    retry_policy:
        :class:`RetryPolicy` for transient failures; the default never
        retries, preserving strict one-shot semantics.
    grace_seconds:
        Parent-side margin over ``timeout_seconds`` before a worker is
        declared wedged.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        workers: int = 1,
        timeout_seconds: Optional[float] = None,
        start_method: str = "spawn",
        retry_policy: Optional[RetryPolicy] = None,
        grace_seconds: float = DEFAULT_GRACE_SECONDS,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if start_method not in multiprocessing.get_all_start_methods():
            raise ValueError(
                f"unknown start method {start_method!r}; this platform supports "
                f"{multiprocessing.get_all_start_methods()}"
            )
        if grace_seconds <= 0:
            raise ValueError("grace_seconds must be positive")
        self._store = store
        self._workers = workers
        self._timeout_seconds = timeout_seconds
        self._start_method = start_method
        self._retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self._grace_seconds = grace_seconds
        self.stats = RunnerStats()

    @property
    def store(self) -> Optional[ResultStore]:
        return self._store

    @property
    def retry_policy(self) -> RetryPolicy:
        return self._retry_policy

    def run(self, jobs: Sequence[VerificationJob]) -> BatchReport:
        """Execute a batch; the report's results align with ``jobs``."""
        start = time.perf_counter()
        stats_before = self.stats.as_dict()
        report = BatchReport(workers=self._workers)
        results: List[Optional[JobResult]] = [None] * len(jobs)

        pending: List[Tuple[int, VerificationJob]] = []
        for index, job in enumerate(jobs):
            cached = self._store.get(job.fingerprint) if self._store is not None else None
            # A traced (or certified) job whose stored verdict lacks the
            # requested artifact re-executes so it actually gets recorded
            # (same verdict; the store row is rewritten with the artifact
            # attached).  A cached empty verdict satisfies a certificate
            # request -- only nonempty results carry a witness.
            if cached is not None and not (
                (job.trace and cached.trace is None)
                or (job.certificate and cached.nonempty and cached.certificate is None)
            ):
                cached.label = cached.label or job.label
                results[index] = cached
                report.cache_hits += 1
            else:
                pending.append((index, job))

        if pending:
            pending_jobs = [job for _, job in pending]
            for local_index, result in self.execute_indexed(pending_jobs):
                index, job = pending[local_index]
                results[index] = result
                report.executed += 1
                self.record(job, result)

        report.results = [result for result in results if result is not None]
        report.elapsed_seconds = time.perf_counter() - start
        stats_after = self.stats.as_dict()
        report.fault_tolerance = {
            key: stats_after[key] - stats_before[key] for key in stats_after
        }
        _log.info(
            "batch finished",
            extra={
                "jobs": len(jobs),
                "cache_hits": report.cache_hits,
                "executed": report.executed,
                "workers": self._workers,
                "batch_seconds": round(report.elapsed_seconds, 3),
                "retries": report.fault_tolerance.get("retries", 0),
                "worker_crashes": report.fault_tolerance.get("worker_crashes", 0),
            },
        )
        return report

    # -- store write-back --------------------------------------------------------

    def record(self, job: VerificationJob, result: JobResult) -> None:
        """Write one executed result back to the store (when one is attached).

        Verdicts are written with bounded retries (store IO is a transient,
        retryable failure class -- an injected or real write error must not
        discard a computed verdict).  Transient execution failures are
        recorded as non-cacheable error rows for observability; permanent
        failures are not stored at all.  Store problems never propagate: the
        caller still holds the result.
        """
        if self._store is None:
            return
        if result.ok:
            attempts = max(3, self._retry_policy.max_attempts)
            for attempt in range(1, attempts + 1):
                try:
                    self._store.put(job, result)
                    return
                except Exception as exc:  # noqa: BLE001 - store IO must not kill the batch
                    if attempt == attempts:
                        self.stats.store_put_failures += 1
                        _log.error(
                            "store write failed; verdict not persisted",
                            extra={"fingerprint": result.fingerprint[:12], "error": str(exc)},
                        )
                        return
                    self.stats.store_put_retries += 1
                    time.sleep(self._retry_policy.delay_seconds(attempt))
        elif result.error_code in RETRYABLE_ERROR_CODES:
            try:
                self._store.put_error(job, result)
            except Exception:  # noqa: BLE001 - best-effort observability row
                pass

    # -- execution ---------------------------------------------------------------

    def execute_indexed(self, jobs: Sequence[VerificationJob]) -> Iterator[Tuple[int, JobResult]]:
        """Execute ``jobs`` (no store involvement), yielding as each completes.

        Yields ``(index, result)`` pairs in completion order -- input order
        for one worker, nondeterministic for a parallel pool -- so callers
        like the HTTP server can stream per-job progress while the rest of
        the batch is still running.  Every result's fingerprint is verified
        against its job before it is yielded (see :class:`FingerprintMismatch`).

        A single job only stays in the calling thread when no timeout is
        set: the SIGALRM budget needs a worker process's main thread, and
        callers like the HTTP server invoke this off the main thread where
        the alarm would be silently skipped.
        """
        log_fields = telemetry.current_log_context()
        if self._workers == 1 or len(jobs) == 1 and self._timeout_seconds is None:
            yield from self._execute_serial(jobs, log_fields)
            return
        yield from self._execute_supervised(jobs, log_fields)

    def _payload(self, job: VerificationJob, log_fields: Dict[str, str]) -> WorkerPayload:
        return (job.to_spec(), job.fingerprint, self._timeout_seconds, log_fields)

    def _execute_serial(
        self, jobs: Sequence[VerificationJob], log_fields: Dict[str, str]
    ) -> Iterator[Tuple[int, JobResult]]:
        policy = self._retry_policy
        for index, job in enumerate(jobs):
            payload = self._payload(job, log_fields)
            attempt = 1
            while True:
                result = _execute_payload(payload)
                result.attempts = attempt
                if policy.should_retry(result, attempt, job):
                    self.stats.retries += 1
                    time.sleep(policy.delay_seconds(attempt))
                    attempt += 1
                    continue
                yield index, self._verified(job, index, result)
                break

    def _execute_supervised(
        self, jobs: Sequence[VerificationJob], log_fields: Dict[str, str]
    ) -> Iterator[Tuple[int, JobResult]]:
        policy = self._retry_policy
        context = multiprocessing.get_context(self._start_method)
        processes = min(self._workers, len(jobs))
        # Every job may crash a worker on every allowed attempt; anything
        # past that budget is a crash loop the pool should refuse to feed.
        respawn_budget = processes + sum(policy.attempts_for(job) for job in jobs)
        _log.debug(
            "starting supervised pool",
            extra={"workers": processes, "jobs": len(jobs)},
        )
        pool = SupervisedPool(
            context,
            processes,
            _supervised_entry,
            grace_seconds=self._grace_seconds,
            max_respawns=respawn_budget,
        )
        payloads = [self._payload(job, log_fields) for job in jobs]
        try:
            for index in range(len(jobs)):
                pool.submit(index, 1, payloads[index], self._timeout_seconds)
            for event in pool.events():
                index, job = event.index, jobs[event.index]
                result = self._event_result(event, job)
                if policy.should_retry(result, event.attempt, job):
                    self.stats.retries += 1
                    pool.submit_later(
                        policy.delay_seconds(event.attempt),
                        index,
                        event.attempt + 1,
                        payloads[index],
                        self._timeout_seconds,
                    )
                    continue
                yield index, self._verified(job, index, result)
        finally:
            pool.close()
            self.stats.worker_respawns += pool.respawns

    def _event_result(self, event: PoolEvent, job: VerificationJob) -> JobResult:
        """Convert one supervision event into a (possibly errored) result."""
        if event.kind == "done":
            result = event.result
            telemetry.merge_worker_counters(result.worker_counters)
            result.worker_counters = None
            return result
        if event.kind == "crashed":
            self.stats.worker_crashes += 1
            return JobResult(
                fingerprint=job.fingerprint,
                label=job.label,
                wall_seconds=event.elapsed_seconds,
                attempts=event.attempt,
                error=(
                    f"worker-crashed: worker process died mid-job "
                    f"(exit code {event.exitcode})"
                ),
                error_code="worker-crashed",
            )
        self.stats.deadline_exceeded += 1
        return JobResult(
            fingerprint=job.fingerprint,
            label=job.label,
            wall_seconds=event.elapsed_seconds,
            attempts=event.attempt,
            error=(
                f"deadline-exceeded: no result within {self._timeout_seconds}s "
                f"+ {self._grace_seconds}s grace; worker killed"
            ),
            error_code="deadline-exceeded",
        )

    def _verified(self, job: VerificationJob, index: int, result: JobResult) -> JobResult:
        if result.fingerprint != job.fingerprint:
            raise FingerprintMismatch(
                f"job {job.label or index}: parent fingerprint "
                f"{job.fingerprint[:12]} != worker fingerprint "
                f"{result.fingerprint[:12]}; spec serialization is "
                "not canonical"
            )
        if result.error is not None:
            _log.warning(
                "job failed",
                extra={
                    "fingerprint": result.fingerprint[:12],
                    "error": result.error,
                    "error_code": result.error_code,
                    "attempts": result.attempts,
                },
            )
        return result


def run_batch(
    jobs: Sequence[VerificationJob],
    store: Optional[ResultStore] = None,
    workers: int = 1,
    timeout_seconds: Optional[float] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> BatchReport:
    """One-shot convenience wrapper around :class:`BatchRunner`."""
    return BatchRunner(
        store=store,
        workers=workers,
        timeout_seconds=timeout_seconds,
        retry_policy=retry_policy,
    ).run(jobs)
