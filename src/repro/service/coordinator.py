"""Fingerprint-sharded coordinator: one front door over a fleet of runners.

A :class:`CoordinatorService` speaks the exact same ``/v1`` API as a single
node -- clients cannot tell the difference -- but executes nothing itself.
Fresh jobs (after the coordinator's own store and in-flight dedup layers)
are partitioned by *rendezvous hashing* over their fingerprints and
forwarded to runner nodes as ordinary ``POST /v1/jobs`` batches, so the
wire format is the one public protocol at every hop.

Rendezvous (highest-random-weight) hashing gives each fingerprint a total
preference order over runners: ``sha256(fingerprint "@" runner_url)``
scores every runner and the job goes to the highest score.  Two properties
matter here:

* **Stability** -- identical fingerprints land on identical runners from
  every coordinator, so a runner's warm store and in-flight dedup see all
  duplicates of a job no matter which front door received them.
* **Minimal disruption** -- when a runner drops out, only the jobs it
  owned move (each to its second choice); the rest of the keyspace does
  not reshuffle.

Failover reuses the retry/backoff machinery of :class:`ServiceClient`
(429/503 shedding) and adds a layer above it: a runner that fails a
forward is put in a cooldown window and its group re-sharded across the
survivors.  Only when every runner has been tried does a job come back
with the ``runner-unavailable`` error code.

Verdict determinism makes all of this safe: any runner computes the same
verdict for a fingerprint, so rerouting never changes results, only which
node pays the compute.

The coordinator never takes cluster claims itself -- it holds no engine,
so a coordinator-held claim would deadlock the runner actually executing
the job until the claim TTL expired.  Fleet-wide execute-once semantics
come from the runners' claims in the shared keyspace plus the stable
sharding above.
"""

from __future__ import annotations

import hashlib
import logging
import queue
import threading
import time
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

import asyncio

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JobResult, VerificationJob
from repro.service.server import (
    SERVICE_COUNTERS,
    ApiError,
    Request,
    VerificationService,
)

_log = logging.getLogger("repro.service.coordinator")

#: How long a runner sits out after a failed forward before new shards are
#: routed to it again (seconds).  Short on purpose: a restarting runner
#: should rejoin quickly, and a still-dead one just fails over again.
DEFAULT_UNHEALTHY_COOLDOWN_SECONDS = 5.0

#: Per-forward client timeout.  Forwards carry whole shard groups and wait
#: for execution, so this bounds a runner batch, not a single HTTP hop.
DEFAULT_FORWARD_TIMEOUT_SECONDS = 600.0

#: Counter families re-exported per runner (with a ``runner`` label) by the
#: coordinator's aggregated ``/v1/metrics`` exposition.
_FLEET_COUNTER_ATTRS = ("jobs_received", "executed", "store_hits", "inflight_joins")


class _ForwardError(RuntimeError):
    """A forward produced an unusable response (treated as runner failure)."""


class CoordinatorService(VerificationService):
    """A :class:`VerificationService` that shards execution across runners.

    Every layer above execution is inherited unchanged -- admission
    control, store-first serving, per-node in-flight dedup, batch dedup,
    tracing endpoints, drain sequence.  Only :meth:`_execute_fresh` is
    replaced: instead of the local engine pool, fresh jobs are forwarded
    to runner nodes by fingerprint shard.
    """

    role = "coordinator"

    def __init__(
        self,
        runners: Sequence[str],
        runner_token: Optional[str] = None,
        forward_timeout: float = DEFAULT_FORWARD_TIMEOUT_SECONDS,
        forward_retries: int = 2,
        unhealthy_cooldown: float = DEFAULT_UNHEALTHY_COOLDOWN_SECONDS,
        **kwargs: Any,
    ) -> None:
        urls = []
        for url in runners:
            url = url.rstrip("/")
            if url and url not in urls:
                urls.append(url)
        if not urls:
            raise ValueError("a coordinator needs at least one runner URL")
        # Claims are the runners' job; a coordinator-held claim would make
        # the executing runner wait on the coordinator (see module docstring).
        kwargs["cluster_dedup"] = False
        super().__init__(**kwargs)
        self._runner_urls: List[str] = urls
        self._runner_token = runner_token
        self._forward_timeout = forward_timeout
        self._forward_retries = forward_retries
        self._unhealthy_cooldown = unhealthy_cooldown
        self._health_lock = threading.Lock()
        self._cooldown_until: Dict[str, float] = {}
        # Forwarding threads touch these counters concurrently; ServiceStats
        # increments are read-modify-write, so they need a lock off the loop.
        self._fleet_stats_lock = threading.Lock()
        self.registry.gauge(
            "repro_fleet_runners",
            "Runner nodes configured on this coordinator.",
            callback=lambda: float(len(self._runner_urls)),
        )
        self.registry.gauge(
            "repro_fleet_runner_in_cooldown",
            "1 while the runner is sitting out a failover cooldown.",
            labelnames=("runner",),
            callback=self._cooldown_snapshot,
        )

    # -- sharding ----------------------------------------------------------------

    def _shard_preference(self, fingerprint: str) -> List[str]:
        """Runners ordered by rendezvous score for ``fingerprint`` (best first)."""
        return sorted(
            self._runner_urls,
            key=lambda url: hashlib.sha256(f"{fingerprint}@{url}".encode("utf-8")).digest(),
            reverse=True,
        )

    def _choose_runner(self, fingerprint: str, excluded: FrozenSet[str]) -> Optional[str]:
        """The best not-yet-failed runner for ``fingerprint``.

        Runners in cooldown are skipped while an alternative exists, but a
        job is never refused just because its whole preference list is
        cooling down -- trying a suspect runner beats not running at all.
        """
        candidates = [url for url in self._shard_preference(fingerprint) if url not in excluded]
        if not candidates:
            return None
        for url in candidates:
            if not self._in_cooldown(url):
                return url
        return candidates[0]

    # -- runner health -----------------------------------------------------------

    def _in_cooldown(self, url: str) -> bool:
        with self._health_lock:
            until = self._cooldown_until.get(url)
            return until is not None and time.monotonic() < until

    def _mark_failed(self, url: str, error: Exception) -> None:
        with self._health_lock:
            self._cooldown_until[url] = time.monotonic() + self._unhealthy_cooldown
        with self._fleet_stats_lock:
            self.stats.runner_failovers += 1
        _log.warning(
            "runner failed; failing over",
            extra={"runner": url, "error": f"{type(error).__name__}: {error}"},
        )

    def _mark_ok(self, url: str) -> None:
        with self._health_lock:
            self._cooldown_until.pop(url, None)

    def _cooldown_snapshot(self) -> Dict[Tuple[str, ...], float]:
        return {(url,): (1.0 if self._in_cooldown(url) else 0.0) for url in self._runner_urls}

    # -- execution override ------------------------------------------------------

    def _execute_fresh(
        self, jobs: List[VerificationJob]
    ) -> Iterator[Tuple[int, JobResult]]:
        """Forward fresh jobs to their shard runners, yielding as shards land.

        Shard groups run concurrently (one thread per runner group), each
        streaming its completed group back through a queue, so a slow shard
        never blocks another runner's results from settling.
        """
        pairs = list(enumerate(jobs))
        if not pairs:
            return
        with self._fleet_stats_lock:
            self.stats.forwarded += len(pairs)
        groups: Dict[str, List[Tuple[int, VerificationJob]]] = {}
        unrouteable: List[Tuple[int, VerificationJob]] = []
        for index, job in pairs:
            url = self._choose_runner(job.fingerprint, frozenset())
            if url is None:
                unrouteable.append((index, job))
            else:
                groups.setdefault(url, []).append((index, job))
        for index, job in unrouteable:
            yield index, self._unavailable_result(job, "no runner configured for shard")
        if len(groups) == 1:
            (url, group), = groups.items()
            yield from self._forward_with_failover(url, group, frozenset())
            return
        out: "queue.Queue[Optional[Tuple[int, JobResult]]]" = queue.Queue()
        threads = []
        for url, group in groups.items():
            thread = threading.Thread(
                target=self._forward_worker,
                args=(url, group, out),
                name=f"repro-forward-{len(threads)}",
                daemon=True,
            )
            thread.start()
            threads.append(thread)
        finished = 0
        while finished < len(threads):
            item = out.get()
            if item is None:
                finished += 1
                continue
            yield item
        for thread in threads:
            thread.join()

    def _forward_worker(
        self,
        url: str,
        group: List[Tuple[int, VerificationJob]],
        out: "queue.Queue[Optional[Tuple[int, JobResult]]]",
    ) -> None:
        emitted = set()
        try:
            for index, result in self._forward_with_failover(url, group, frozenset()):
                emitted.add(index)
                out.put((index, result))
        except Exception as exc:  # noqa: BLE001 - a shard failure must not hang the batch
            _log.error("shard forward failed", extra={"runner": url, "error": str(exc)})
            for index, job in group:
                if index not in emitted:
                    out.put((index, self._unavailable_result(job, str(exc))))
        finally:
            out.put(None)

    def _forward_with_failover(
        self,
        url: str,
        group: List[Tuple[int, VerificationJob]],
        excluded: FrozenSet[str],
    ) -> Iterator[Tuple[int, JobResult]]:
        """Forward ``group`` to ``url``; on failure re-shard over survivors.

        Each failover excludes the failed runner and regroups the pending
        jobs by their next preference, so recursion depth is bounded by the
        fleet size.  Jobs that run out of runners come back as
        ``runner-unavailable`` errors instead of raising.
        """
        try:
            yield from self._forward(url, group)
            self._mark_ok(url)
            return
        except (ServiceError, OSError, _ForwardError) as exc:
            self._mark_failed(url, exc)
            excluded = excluded | {url}
        regrouped: Dict[str, List[Tuple[int, VerificationJob]]] = {}
        for index, job in group:
            next_url = self._choose_runner(job.fingerprint, excluded)
            if next_url is None:
                yield index, self._unavailable_result(job, "every runner failed for shard")
            else:
                regrouped.setdefault(next_url, []).append((index, job))
        for next_url, subgroup in regrouped.items():
            yield from self._forward_with_failover(next_url, subgroup, excluded)

    def _forward(
        self, url: str, group: List[Tuple[int, VerificationJob]]
    ) -> List[Tuple[int, JobResult]]:
        """One ``POST /v1/jobs`` forward of a shard group to one runner.

        A fresh client per forward keeps connection state thread-local;
        group-level batching amortises the handshake over the whole shard.
        The runner re-verifies every client-computed fingerprint, and each
        returned result is matched against its job here -- the same
        end-to-end canonicalization guard as direct submissions.
        """
        jobs = [job for _, job in group]
        client = ServiceClient(
            url,
            auth_token=self._runner_token,
            timeout=self._forward_timeout,
            retries=self._forward_retries,
        )
        try:
            report = client.submit_batch(jobs, wait=True, include_fingerprints=True)
        finally:
            client.close()
        entries = report.get("results") if isinstance(report, dict) else None
        if not isinstance(entries, list) or len(entries) != len(jobs):
            raise _ForwardError(f"runner returned {0 if not entries else len(entries)} "
                                f"results for {len(jobs)} jobs")
        forwarded: List[Tuple[int, JobResult]] = []
        for (index, job), entry in zip(group, entries):
            result = JobResult.from_dict(entry)
            if result.fingerprint != job.fingerprint:
                raise _ForwardError(
                    f"runner answered fingerprint {result.fingerprint[:12]} "
                    f"for job {job.fingerprint[:12]}"
                )
            forwarded.append((index, result))
        return forwarded

    def _unavailable_result(self, job: VerificationJob, detail: str) -> JobResult:
        return JobResult(
            fingerprint=job.fingerprint,
            label=job.label,
            error=f"runner-unavailable: {detail}",
            error_code="runner-unavailable",
        )

    # -- fleet observability -----------------------------------------------------

    def _fleet_snapshot(self) -> Dict[str, Any]:
        """Poll every runner's ``/v1/stats`` (short timeout, no retries).

        Returns per-runner health + stats and a summed ``aggregate`` over
        the counter families every node exports, so one scrape of the
        coordinator answers "what has the whole fleet done".
        """
        runners: List[Dict[str, Any]] = []
        aggregate: Dict[str, int] = {attr: 0 for attr in SERVICE_COUNTERS}
        reachable = 0
        for url in self._runner_urls:
            entry: Dict[str, Any] = {
                "url": url,
                "in_cooldown": self._in_cooldown(url),
            }
            client = ServiceClient(
                url,
                auth_token=self._runner_token,
                timeout=min(self._forward_timeout, 5.0),
                retries=0,
            )
            try:
                stats = client.stats()
            except (ServiceError, OSError) as exc:
                entry["up"] = False
                entry["error"] = f"{type(exc).__name__}: {exc}"
            else:
                entry["up"] = True
                entry["stats"] = stats
                reachable += 1
                for attr in aggregate:
                    value = stats.get(attr)
                    if isinstance(value, (int, float)):
                        aggregate[attr] += int(value)
            finally:
                client.close()
            runners.append(entry)
        return {
            "runners": runners,
            "reachable": reachable,
            "configured": len(self._runner_urls),
            "aggregate": aggregate,
        }

    def _render_fleet_metrics(self) -> str:
        """The coordinator exposition plus fleet families scraped live.

        Runner counters are re-exported as ``repro_fleet_*`` with a
        ``runner`` label rather than merged into the coordinator's own
        families -- merging raw expositions would collide every shared
        metric name.  A runner that does not answer shows up only as
        ``repro_fleet_runner_up 0``; its last values are not repeated
        (Prometheus staleness handling does the right thing).
        """
        fleet = self._fleet_snapshot()
        lines = [self._render_metrics().rstrip("\n")]
        lines.append("# HELP repro_fleet_runner_up 1 when the runner answered this scrape.")
        lines.append("# TYPE repro_fleet_runner_up gauge")
        by_url = {entry["url"]: entry for entry in fleet["runners"]}
        for url in self._runner_urls:
            up = 1 if by_url[url].get("up") else 0
            lines.append(f'repro_fleet_runner_up{{runner="{url}"}} {up}')
        for attr in _FLEET_COUNTER_ATTRS:
            metric_name, help_text = SERVICE_COUNTERS[attr]
            fleet_name = metric_name.replace("repro_", "repro_fleet_", 1)
            lines.append(f"# HELP {fleet_name} {help_text} (per runner)")
            lines.append(f"# TYPE {fleet_name} counter")
            for url in self._runner_urls:
                stats = by_url[url].get("stats")
                if stats is None:
                    continue
                value = stats.get(attr)
                if isinstance(value, (int, float)):
                    lines.append(f'{fleet_name}{{runner="{url}"}} {int(value)}')
        return "\n".join(lines) + "\n"

    # -- handler overrides -------------------------------------------------------

    def _discovery_document(self) -> Dict[str, Any]:
        document = super()._discovery_document()
        document["fleet"] = {
            "sharding": "rendezvous-sha256",
            "runners": [
                {"url": url, "in_cooldown": self._in_cooldown(url)}
                for url in self._runner_urls
            ],
        }
        return document

    def _fetch_witness(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """Ask the fingerprint's shard-preferred runners for the certificate.

        Tries runners in rendezvous order (the executing runner is first
        unless it failed over), skipping nodes in cooldown; a 404 or a dead
        runner just moves on to the next candidate.
        """
        for url in self._shard_preference(fingerprint):
            if self._in_cooldown(url):
                continue
            client = ServiceClient(
                url,
                auth_token=self._runner_token,
                timeout=self._forward_timeout,
                retries=0,
            )
            try:
                payload = client.witness(fingerprint)
            except (ServiceError, OSError):
                continue
            finally:
                client.close()
            if isinstance(payload, dict) and payload.get("certificate"):
                return payload
        return None

    async def _handle_job_witness(
        self, request: Request, writer: asyncio.StreamWriter, extra: Dict[str, str], keep: bool
    ) -> None:
        """Serve a witness certificate, forwarding to the fleet when needed.

        The coordinator's own store is checked first (shared-store
        deployments land here); otherwise the certificate is fetched from
        the runner that executed the job -- its shard-preferred node --
        and relayed unchanged, so coordinator- and runner-served payloads
        carry the identical encoded certificate.
        """
        fingerprint = self._witness_of(request)
        cached = self._store.get(fingerprint) if self._store is not None else None
        if cached is not None and cached.certificate is not None:
            await super()._handle_job_witness(request, writer, extra, keep)
            return
        loop = asyncio.get_running_loop()
        # Fleet polling blocks on HTTP calls; keep it off the loop.
        payload = await loop.run_in_executor(self._executor, self._fetch_witness, fingerprint)
        if payload is None:
            raise ApiError(
                404,
                "not-found",
                f"no witness certificate stored for fingerprint {fingerprint[:16]!r}",
                detail=(
                    're-submit the job with "certificate": true to record one '
                    "(only nonempty verdicts carry a witness)"
                ),
            )
        self.stats.certificates_served += 1
        await self._send_json(
            writer,
            200,
            {**payload, "served_from": "runner"},
            headers=extra,
            keep_alive=keep,
        )

    async def _handle_stats(
        self, request: Request, writer: asyncio.StreamWriter, extra: Dict[str, str], keep: bool
    ) -> None:
        loop = asyncio.get_running_loop()
        # Polling the fleet blocks on N HTTP calls; keep it off the loop.
        fleet = await loop.run_in_executor(self._executor, self._fleet_snapshot)
        payload = {**self._stats_payload(), "fleet": fleet}
        await self._send_json(writer, 200, payload, headers=extra, keep_alive=keep)

    async def _handle_metrics(
        self, request: Request, writer: asyncio.StreamWriter, extra: Dict[str, str], keep: bool
    ) -> None:
        loop = asyncio.get_running_loop()
        body = (await loop.run_in_executor(self._executor, self._render_fleet_metrics)).encode(
            "utf-8"
        )
        await self._send_raw(
            writer,
            200,
            body,
            content_type="text/plain; version=0.0.4; charset=utf-8",
            headers=extra,
            keep_alive=keep,
        )
