"""Emptiness of database-driven systems over regular word languages (Theorem 10).

:class:`WordRunTheory` plugs a regular language ``L`` (given by an NFA) into
the generic engine of Theorem 5.  Its witnesses are *run fragments*: ordered
sequences of positions, each labelled by a state of the position automaton,
that satisfy the Lemma 12 chain condition (consecutive states related by
``->+`` on the trimmed automaton).  A fragment is exactly a finite database
that embeds into ``Rundb(rho)`` for some accepting run ``rho``, so the
invariant "the witness is completable into a word of ``L``" is maintained by
construction at every step.

* Guards only see the ``WordSchema`` view of a fragment (labels and the
  position order), as in the statement of Theorem 10.
* The abstraction key is the register-generated substructure of the *run
  database* of the fragment -- including the per-component leftmost/rightmost
  pointers of Section 5.1, which is what makes revisits prunable (closure
  under amalgamation of the pointer-enriched class, Proposition 2).
* :meth:`finalize` expands the final fragment into a genuine accepted word by
  stitching the fragment states together with explicit ``->`` paths and
  adding an initial prefix and accepting suffix; the engine replays the run
  on the expanded ``Worddb`` to certify the answer.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import TheoryError
from repro.fraisse.base import (
    DatabaseTheory,
    TheoryConfiguration,
    generic_abstraction_key,
    set_partitions,
)
from repro.logic.schema import Schema
from repro.logic.structures import Element, Structure
from repro.perf import BoundedCache, caches_enabled
from repro.systems.dds import DatabaseDrivenSystem, Transition
from repro.words.nfa import NFA, PositionAutomaton
from repro.words.rundb import run_schema, rundb
from repro.words.worddb import BEFORE, label_predicate, word_schema


@dataclass(frozen=True)
class _WordFragment:
    """A completable run fragment: (position id, state) pairs in word order."""

    positions: Tuple[Tuple[int, str], ...]

    @property
    def ids(self) -> Tuple[int, ...]:
        return tuple(p for p, _ in self.positions)

    @property
    def states(self) -> Tuple[str, ...]:
        return tuple(s for _, s in self.positions)

    def index_of(self, position: int) -> int:
        for index, (p, _) in enumerate(self.positions):
            if p == position:
                return index
        raise TheoryError(f"position {position} not in the fragment")

    def next_id(self) -> int:
        return max(self.ids, default=-1) + 1


class WordRunTheory(DatabaseTheory):
    """Worddb(L) for the regular language of an NFA, as a database theory."""

    def __init__(self, nfa: NFA, max_fresh_per_step: Optional[int] = None) -> None:
        self._nfa = nfa
        self._automaton = PositionAutomaton.from_nfa(nfa, trim=True)
        self._schema = word_schema(self._automaton.alphabet)
        self._max_fresh_per_step = max_fresh_per_step
        # Canonical-form caches (see repro.perf): the pointer-enriched run
        # database of a fragment is a pure function of the fragment, and the
        # abstraction key additionally of the register valuation; both are
        # recomputed per candidate on the legacy path.
        self._run_schema = run_schema(self._automaton)
        self._rundb_cache = BoundedCache("words_rundb")
        self._key_cache = BoundedCache("words_abstraction_key")

    # -- accessors ---------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def automaton(self) -> PositionAutomaton:
        return self._automaton

    @property
    def nfa(self) -> NFA:
        return self._nfa

    def blowup(self, n: int) -> int:
        # Two pointer functions per component (Section 5.1): blowup <= 2|Q| n.
        return max(n, 2 * self._automaton.component_count() * n)

    # -- serialization -------------------------------------------------------------

    SPEC_KIND = "word_run"

    def to_spec(self) -> Dict[str, object]:
        return {
            "kind": self.SPEC_KIND,
            "nfa": self._nfa.to_spec(),
            "max_fresh_per_step": self._max_fresh_per_step,
        }

    @classmethod
    def from_spec(cls, spec: Dict[str, object]) -> "WordRunTheory":
        return cls(
            NFA.from_spec(spec["nfa"]),
            max_fresh_per_step=spec.get("max_fresh_per_step"),
        )

    def membership(self, database: Structure) -> bool:
        """Is a database over WordSchema of the form Worddb(w) for some w in L?

        The database must be a strict linear order with exactly one label per
        position, and the induced word must be accepted by the NFA.
        """
        word = _database_to_word(database, self._automaton.alphabet)
        if word is None:
            return False
        return self._nfa.accepts(word)

    # -- seeds ---------------------------------------------------------------------

    def initial_configurations(self, system: DatabaseDrivenSystem) -> Iterator[TheoryConfiguration]:
        registers = list(system.registers)
        for partition in set_partitions(registers):
            blocks = list(partition)
            for ordering in itertools.permutations(range(len(blocks))):
                for states in itertools.product(self._automaton.states, repeat=len(blocks)):
                    positions = tuple((index, states[index]) for index in range(len(blocks)))
                    # ordering[i] is the rank of block i in word order.
                    ordered_positions = tuple(
                        sorted(positions, key=lambda item: ordering[item[0]]),
                    )
                    # Re-number ids so that word order is increasing ids.
                    renumber = {old_id: rank for rank, (old_id, _) in enumerate(ordered_positions)}
                    fragment = _WordFragment(
                        tuple((renumber[old_id], state) for old_id, state in ordered_positions)
                    )
                    if not self._automaton.chain_condition(fragment.states):
                        continue
                    valuation = {}
                    for block_index, block in enumerate(blocks):
                        for register in block:
                            valuation[register] = renumber[block_index]
                    yield TheoryConfiguration.make(fragment, valuation, fresh_elements=fragment.ids)

    # -- successors -------------------------------------------------------------------

    def successor_configurations(
        self,
        system: DatabaseDrivenSystem,
        config: TheoryConfiguration,
        transition: Transition,
    ) -> Iterator[TheoryConfiguration]:
        registers = list(system.registers)
        fragment: _WordFragment = config.witness
        valuation_old = config.valuation
        existing_ids = list(fragment.ids)
        max_fresh = self._max_fresh_per_step
        if max_fresh is None:
            max_fresh = len(registers)

        for targets in itertools.product(
            list(existing_ids) + [("fresh", slot) for slot in range(max_fresh)],
            repeat=len(registers),
        ):
            fresh_slots = sorted({target[1] for target in targets if isinstance(target, tuple)})
            # Canonical form: fresh slots must be used densely from 0.
            if fresh_slots != list(range(len(fresh_slots))):
                continue
            yield from self._place_fresh(fragment, registers, valuation_old, targets, fresh_slots)

    def _place_fresh(
        self,
        fragment: _WordFragment,
        registers: List[str],
        valuation_old: Dict[str, Element],
        targets: Tuple[object, ...],
        fresh_slots: List[int],
    ) -> Iterator[TheoryConfiguration]:
        n = len(fragment.positions)
        next_id = fragment.next_id()
        if not fresh_slots:
            valuation_new = dict(zip(registers, targets))
            yield TheoryConfiguration.make(fragment, valuation_new, ())
            return

        gap_count = n + 1
        for gaps in itertools.product(range(gap_count), repeat=len(fresh_slots)):
            for states in itertools.product(self._automaton.states, repeat=len(fresh_slots)):
                new_positions = self._insert(fragment, fresh_slots, gaps, states, next_id)
                if new_positions is None:
                    continue
                new_fragment, slot_ids = new_positions
                valuation_new = {}
                for register, target in zip(registers, targets):
                    if isinstance(target, tuple):
                        valuation_new[register] = slot_ids[target[1]]
                    else:
                        valuation_new[register] = target
                yield TheoryConfiguration.make(
                    new_fragment, valuation_new, tuple(slot_ids.values())
                )

    def _insert(
        self,
        fragment: _WordFragment,
        fresh_slots: List[int],
        gaps: Tuple[int, ...],
        states: Tuple[str, ...],
        next_id: int,
    ) -> Optional[Tuple[_WordFragment, Dict[int, int]]]:
        """Insert fresh positions into the fragment; None if the chain breaks."""
        per_gap: Dict[int, List[Tuple[int, str]]] = {}
        slot_ids: Dict[int, int] = {}
        for offset, (slot, gap, state) in enumerate(zip(fresh_slots, gaps, states)):
            slot_ids[slot] = next_id + offset
            per_gap.setdefault(gap, []).append((slot_ids[slot], state))
        new_sequence: List[Tuple[int, str]] = []
        for gap in range(len(fragment.positions) + 1):
            new_sequence.extend(per_gap.get(gap, []))
            if gap < len(fragment.positions):
                new_sequence.append(fragment.positions[gap])
        new_fragment = _WordFragment(tuple(new_sequence))
        if not self._automaton.chain_condition(new_fragment.states):
            return None
        return new_fragment, slot_ids

    # -- rendering ------------------------------------------------------------------------

    def database(self, config: TheoryConfiguration) -> Structure:
        fragment: _WordFragment = config.witness
        return _fragment_to_word_structure(fragment, self._schema, self._automaton)

    def abstraction_key(self, config: TheoryConfiguration) -> Hashable:
        fragment: _WordFragment = config.witness
        if not caches_enabled():
            run_view = rundb(self._automaton, fragment.positions)
            return generic_abstraction_key(run_view, config.valuation)
        run_view = self._rundb_cache.get_or_compute(
            fragment,
            lambda: rundb(
                self._automaton, fragment.positions, schema=self._run_schema
            ).ensure_tuple_index(),
        )
        return self._key_cache.get_or_compute(
            (fragment, config.valuation_items),
            lambda: generic_abstraction_key(run_view, config.valuation),
        )

    def certify(
        self, config: TheoryConfiguration
    ) -> Tuple[Structure, Dict[Element, Element], Dict[str, object]]:
        """Expand the fragment into a full accepted word (the actual witness).

        The evidence payload carries the expanded word itself, so an
        engine-independent validator can decode the witness database back into
        a word, compare it with the evidence, and re-check NFA acceptance from
        the automaton spec alone.
        """
        fragment: _WordFragment = config.witness
        states = list(fragment.states)
        full_states: List[str] = []
        fragment_index_to_full: Dict[int, int] = {}
        prefix = self._automaton._path_from_initial(states[0])
        full_states.extend(prefix[:-1])
        for position_index, state in enumerate(states):
            if position_index == 0:
                full_states.append(state)
            else:
                path = self._automaton._shortest_path(full_states[-1], state)
                if path is None:  # pragma: no cover - chain condition guarantees a path
                    raise TheoryError("fragment chain cannot be completed")
                full_states.extend(path[1:])
            fragment_index_to_full[position_index] = len(full_states) - 1
        suffix = self._automaton._path_to_accepting(full_states[-1])
        full_states.extend(suffix[1:])

        word = [self._automaton.letter[s] for s in full_states]
        database = _word_to_structure(word, self._schema)
        mapping = {
            fragment.ids[fragment_index]: full_index
            for fragment_index, full_index in fragment_index_to_full.items()
        }
        return database, mapping, {"word": list(word)}

    def describe(self) -> str:
        return (
            f"Worddb(L) for an NFA with {len(self._nfa.states)} states over "
            f"alphabet {self._automaton.alphabet}"
        )


# -- helpers ------------------------------------------------------------------------


def _fragment_to_word_structure(
    fragment: _WordFragment, schema: Schema, automaton: PositionAutomaton
) -> Structure:
    ids = list(fragment.ids)
    index_of = {p: i for i, p in enumerate(ids)}
    relations: Dict[str, set] = {
        BEFORE: {(a, b) for a in ids for b in ids if index_of[a] < index_of[b]}
    }
    for letter in automaton.alphabet:
        relations[label_predicate(letter)] = set()
    for position, state in fragment.positions:
        relations[label_predicate(automaton.letter[state])].add((position,))
    return Structure(schema, ids, relations=relations, validate=False)


def _word_to_structure(word: Sequence[str], schema: Schema) -> Structure:
    positions = list(range(len(word)))
    relations: Dict[str, set] = {BEFORE: {(i, j) for i in positions for j in positions if i < j}}
    for name in schema.relation_names:
        if name.startswith("label_"):
            relations.setdefault(name, set())
    for index, letter in enumerate(word):
        relations[label_predicate(letter)].add((index,))
    return Structure(schema, positions, relations=relations, validate=False)


def _database_to_word(database: Structure, alphabet: Sequence[str]) -> Optional[List[str]]:
    """Decode a WordSchema database back into a word (None if it is not one)."""
    elements = list(database.domain)
    before = database.relation(BEFORE)

    def less(a: object, b: object) -> bool:
        return (a, b) in before

    # Must be a strict linear order.
    for a in elements:
        if less(a, a):
            return None
        for b in elements:
            if a != b and less(a, b) == less(b, a):
                return None
    ordered = sorted(elements, key=lambda e: sum(1 for b in elements if less(b, e)))
    word: List[str] = []
    for element in ordered:
        letters = [
            letter for letter in alphabet if database.holds(label_predicate(letter), element)
        ]
        if len(letters) != 1:
            return None
        word.append(letters[0])
    return word
