"""Regular word languages: NFAs, word/run databases, Theorem 10."""

from repro.words.nfa import NFA, PositionAutomaton
from repro.words.worddb import (
    BEFORE,
    all_words,
    label_predicate,
    word_schema,
    worddb,
    worddb_language,
)
from repro.words.rundb import (
    in_class_c,
    leftmost_function,
    pre_run_of_word,
    rightmost_function,
    run_schema,
    rundb,
    state_predicate,
)
from repro.words.theory import WordRunTheory

__all__ = [
    "NFA",
    "PositionAutomaton",
    "WordRunTheory",
    "word_schema",
    "worddb",
    "worddb_language",
    "all_words",
    "label_predicate",
    "BEFORE",
    "run_schema",
    "rundb",
    "in_class_c",
    "pre_run_of_word",
    "state_predicate",
    "leftmost_function",
    "rightmost_function",
]
