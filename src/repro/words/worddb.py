"""Word databases: ``Worddb(w)`` and the schema ``WordSchema(A)`` (Section 5.1).

A word is modelled as a database whose domain is its set of positions, with a
unary label predicate per letter and the binary order ``before`` on
positions.  Guards of database-driven systems over words use exactly these
symbols (Theorem 10); the extended *run* schema with state predicates and the
leftmost/rightmost component pointers lives in :mod:`repro.words.rundb`.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, Sequence, Tuple

from repro.logic.schema import Schema
from repro.logic.structures import Structure

BEFORE = "before"
LABEL_PREFIX = "label_"


def label_predicate(letter: str) -> str:
    """The unary predicate naming a letter, e.g. ``label_a``."""
    return f"{LABEL_PREFIX}{letter}"


def word_schema(alphabet: Iterable[str]) -> Schema:
    """``WordSchema(A)``: label predicates plus the position order ``before``."""
    relations: Dict[str, int] = {BEFORE: 2}
    for letter in alphabet:
        relations[label_predicate(letter)] = 1
    return Schema(relations=relations)


def worddb(word: Sequence[str], alphabet: Iterable[str] = ()) -> Structure:
    """``Worddb(w)``: the database of a concrete word.

    Positions are numbered from 0; ``before`` is the strict order on positions.
    The alphabet defaults to the set of letters occurring in the word but may
    be passed explicitly so different words share a schema.
    """
    letters = set(alphabet) | set(word)
    schema = word_schema(sorted(letters))
    positions = list(range(len(word)))
    relations: Dict[str, set] = {
        BEFORE: {(i, j) for i, j in itertools.product(positions, repeat=2) if i < j}
    }
    for letter in letters:
        relations[label_predicate(letter)] = {(i,) for i, a in enumerate(word) if a == letter}
    return Structure(schema, positions, relations=relations, validate=False)


def worddb_language(words: Iterable[Sequence[str]], alphabet: Iterable[str]) -> Iterator[Structure]:
    """``Worddb(L)`` restricted to an explicit finite sample of ``L``."""
    letters = sorted(set(alphabet))
    for word in words:
        yield worddb(word, letters)


def all_words(alphabet: Sequence[str], max_length: int) -> Iterator[Tuple[str, ...]]:
    """Every word over the alphabet up to a length bound (baseline enumeration)."""
    for length in range(max_length + 1):
        yield from itertools.product(sorted(alphabet), repeat=length)
