"""Run databases for words: ``Rundb(pi)`` with component pointers (Section 5.1).

A *pre-run* is a word whose positions are additionally labelled with states
of the position automaton.  Its run database extends ``Worddb`` with

* a unary predicate per state,
* for every strongly connected component Γ of the one-step relation, unary
  functions ``leftmost_Γ`` / ``rightmost_Γ`` mapping a position ``x`` to the
  left-most / right-most position before / after ``x`` whose state lies in Γ
  (or to ``x`` itself when there is none -- the paper's encoding of
  "undefined").

The class ``C`` of Section 5.1 is the closure under (induced, pointer-closed)
substructures of the run databases of runs; Lemma 12 characterises its
members by the ``->+`` chain condition.  These constructions are used for the
abstraction keys of :class:`repro.words.theory.WordRunTheory` and by the
property-based tests of Proposition 2 (closure under amalgamation).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.logic.schema import Schema
from repro.logic.structures import Structure
from repro.words.nfa import PositionAutomaton
from repro.words.worddb import BEFORE, label_predicate

STATE_PREFIX = "state_"
LEFTMOST_PREFIX = "leftmost_"
RIGHTMOST_PREFIX = "rightmost_"


def state_predicate(state: str) -> str:
    """The unary predicate naming an automaton state."""
    return f"{STATE_PREFIX}{state}"


def leftmost_function(component: int) -> str:
    return f"{LEFTMOST_PREFIX}{component}"


def rightmost_function(component: int) -> str:
    return f"{RIGHTMOST_PREFIX}{component}"


def run_schema(automaton: PositionAutomaton) -> Schema:
    """The extended schema of run databases for a position automaton."""
    relations: Dict[str, int] = {BEFORE: 2}
    for letter in automaton.alphabet:
        relations[label_predicate(letter)] = 1
    for state in automaton.states:
        relations[state_predicate(state)] = 1
    functions: Dict[str, int] = {}
    for component in range(automaton.component_count()):
        functions[leftmost_function(component)] = 1
        functions[rightmost_function(component)] = 1
    return Schema(relations=relations, functions=functions)


def rundb(
    automaton: PositionAutomaton,
    positions: Sequence[Tuple[object, str]],
    schema: Optional[Schema] = None,
) -> Structure:
    """The run database of a pre-run given as ``(position, state)`` pairs in order.

    Positions may be arbitrary hashable identifiers; their order in the
    sequence is the word order.  Pointer functions are computed exactly as in
    the paper: ``leftmost_Γ(x)`` is the left-most position *before* ``x``
    carrying a state in Γ, defaulting to ``x``.  Callers rendering many
    fragments of the same automaton (the word theory's abstraction keys) may
    pass the precomputed ``run_schema`` to skip rebuilding it per fragment.
    """
    if schema is None:
        schema = run_schema(automaton)
    ids = [p for p, _ in positions]
    states = [s for _, s in positions]
    index_of = {p: i for i, (p, _) in enumerate(positions)}

    relations: Dict[str, set] = {
        BEFORE: {
            (a, b)
            for a in ids
            for b in ids
            if index_of[a] < index_of[b]
        }
    }
    for letter in automaton.alphabet:
        relations[label_predicate(letter)] = set()
    for state in automaton.states:
        relations[state_predicate(state)] = set()
    for position, state in positions:
        relations[label_predicate(automaton.letter[state])].add((position,))
        relations[state_predicate(state)].add((position,))

    functions: Dict[str, Dict[Tuple[object, ...], object]] = {}
    for component in range(automaton.component_count()):
        left_table: Dict[Tuple[object, ...], object] = {}
        right_table: Dict[Tuple[object, ...], object] = {}
        members = [
            i for i, state in enumerate(states) if automaton.component_of.get(state) == component
        ]
        for i, position in enumerate(ids):
            before_members = [m for m in members if m < i]
            after_members = [m for m in members if m > i]
            left_table[(position,)] = ids[min(before_members)] if before_members else position
            right_table[(position,)] = ids[max(after_members)] if after_members else position
        functions[leftmost_function(component)] = left_table
        functions[rightmost_function(component)] = right_table

    return Structure(schema, ids, relations=relations, functions=functions, validate=False)


def in_class_c(automaton: PositionAutomaton, positions: Sequence[Tuple[object, str]]) -> bool:
    """Lemma 12: is the run database of this pre-run in the class C?"""
    states = [s for _, s in positions]
    return automaton.chain_condition(states)


def pre_run_of_word(automaton: PositionAutomaton, word: Sequence[str]) -> List[Tuple[int, str]]:
    """An accepting pre-run of a word (positions numbered 0..n-1), if any."""
    run = automaton.accepts_with_run(word)
    if run is None:
        raise ValueError("the word is not accepted by the automaton")
    return list(enumerate(run))
