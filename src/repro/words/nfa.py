"""Nondeterministic finite automata and their run-position normal form.

Section 5.1 of the paper works with NFAs in a particular normal form: runs
label word *positions* with states (the state reached after reading the
position) and every state can read a unique letter.  :class:`NFA` is the
ordinary textbook model; :class:`PositionAutomaton` is the normal form, with

* ``letter(state)`` -- the unique input letter read in a state,
* the one-step relation ``->`` between consecutive position states,
* *initial followers* (states allowed on the first position) and accepting
  states (allowed on the last position),
* trimming (every state lies on some accepting run), and
* the strongly connected *components* of ``->+`` together with reachability,
  which drive both the Lemma 12 chain condition and the pointer functions of
  the run databases.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import AutomatonError

State = str
Letter = str


@dataclass(frozen=True)
class NFA:
    """A classical NFA over a finite alphabet."""

    states: FrozenSet[State]
    alphabet: FrozenSet[Letter]
    transitions: FrozenSet[Tuple[State, Letter, State]]
    initial: FrozenSet[State]
    accepting: FrozenSet[State]

    @classmethod
    def make(
        cls,
        states: Iterable[State],
        alphabet: Iterable[Letter],
        transitions: Iterable[Tuple[State, Letter, State]],
        initial: Iterable[State],
        accepting: Iterable[State],
    ) -> "NFA":
        states = frozenset(states)
        alphabet = frozenset(alphabet)
        transitions = frozenset(transitions)
        initial = frozenset(initial)
        accepting = frozenset(accepting)
        for p, a, q in transitions:
            if p not in states or q not in states:
                raise AutomatonError(f"transition ({p}, {a}, {q}) uses unknown states")
            if a not in alphabet:
                raise AutomatonError(f"transition letter {a!r} not in the alphabet")
        if not initial <= states or not accepting <= states:
            raise AutomatonError("initial/accepting states must be states")
        return cls(states, alphabet, transitions, initial, accepting)

    def to_spec(self) -> Dict[str, list]:
        """A JSON-safe, canonically ordered description of the NFA."""
        return {
            "states": sorted(self.states),
            "alphabet": sorted(self.alphabet),
            "transitions": [list(t) for t in sorted(self.transitions)],
            "initial": sorted(self.initial),
            "accepting": sorted(self.accepting),
        }

    @classmethod
    def from_spec(cls, spec: Dict[str, list]) -> "NFA":
        """Rebuild an NFA from :meth:`to_spec` output."""
        return cls.make(
            states=spec["states"],
            alphabet=spec["alphabet"],
            transitions=[tuple(t) for t in spec["transitions"]],
            initial=spec["initial"],
            accepting=spec["accepting"],
        )

    def accepts(self, word: Sequence[Letter]) -> bool:
        """Membership of a word in the language (subset construction on the fly)."""
        current = set(self.initial)
        for letter in word:
            current = {q for p, a, q in self.transitions if p in current and a == letter}
            if not current:
                return False
        return bool(current & self.accepting)

    def language_sample(self, max_length: int) -> Iterator[Tuple[Letter, ...]]:
        """All accepted words up to a length bound (used by the baselines)."""
        alphabet = sorted(self.alphabet)
        for length in range(max_length + 1):
            for word in itertools.product(alphabet, repeat=length):
                if self.accepts(word):
                    yield word


@dataclass
class PositionAutomaton:
    """The position-labelling normal form of an NFA (Section 5.1).

    States are pairs ``(q, a)`` of an NFA state and the letter read to reach
    it, collapsed into strings ``"q|a"`` for readability.  Position ``x`` of a
    word carries the state reached *after* reading ``x``.
    """

    states: List[State]
    letter: Dict[State, Letter]
    step: Dict[State, Set[State]]
    initial_followers: Set[State]
    accepting: Set[State]
    alphabet: List[Letter]

    # Populated by _analyse().
    reach_plus: Dict[State, Set[State]] = field(default_factory=dict)
    component_of: Dict[State, int] = field(default_factory=dict)
    components: List[FrozenSet[State]] = field(default_factory=list)

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_nfa(cls, nfa: NFA, trim: bool = True) -> "PositionAutomaton":
        states: List[State] = []
        letter: Dict[State, Letter] = {}
        origin: Dict[State, Set[State]] = {}
        for p, a, q in sorted(nfa.transitions):
            name = f"{q}|{a}"
            if name not in letter:
                states.append(name)
                letter[name] = a
                origin[name] = set()
            origin[name].add(q)
        step: Dict[State, Set[State]] = {s: set() for s in states}
        for s in states:
            nfa_state = s.rsplit("|", 1)[0]
            for p, a, q in nfa.transitions:
                if p == nfa_state:
                    step[s].add(f"{q}|{a}")
        initial_followers = {f"{q}|{a}" for p, a, q in nfa.transitions if p in nfa.initial}
        accepting = {s for s in states if s.rsplit("|", 1)[0] in nfa.accepting}
        automaton = cls(
            states=states,
            letter=letter,
            step=step,
            initial_followers=initial_followers,
            accepting=accepting,
            alphabet=sorted(nfa.alphabet),
        )
        if trim:
            automaton = automaton.trimmed()
        automaton._analyse()
        return automaton

    def trimmed(self) -> "PositionAutomaton":
        """Keep only states reachable from an initial follower and co-reachable
        to an accepting state (useless states would break the completability
        arguments of Section 5.1)."""
        forward = _closure(self.initial_followers, self.step)
        reverse_step: Dict[State, Set[State]] = {s: set() for s in self.states}
        for s, targets in self.step.items():
            for t in targets:
                reverse_step.setdefault(t, set()).add(s)
        backward = _closure(self.accepting, reverse_step)
        keep = forward & backward
        states = [s for s in self.states if s in keep]
        return PositionAutomaton(
            states=states,
            letter={s: self.letter[s] for s in states},
            step={s: {t for t in self.step[s] if t in keep} for s in states},
            initial_followers=self.initial_followers & keep,
            accepting=self.accepting & keep,
            alphabet=self.alphabet,
        )

    # -- analysis -----------------------------------------------------------------

    def _analyse(self) -> None:
        self.reach_plus = {s: _reachable_from(s, self.step) for s in self.states}
        self.components, self.component_of = _strongly_connected_components(self.states, self.step)

    def reaches_plus(self, source: State, target: State) -> bool:
        """``source ->+ target`` (one or more steps)."""
        return target in self.reach_plus.get(source, set())

    def reaches_star(self, source: State, target: State) -> bool:
        """``source ->* target`` (zero or more steps)."""
        return source == target or self.reaches_plus(source, target)

    def chain_condition(self, states: Sequence[State]) -> bool:
        """Lemma 12: consecutive position states must satisfy ``->+``."""
        return all(self.reaches_plus(left, right) for left, right in zip(states, states[1:]))

    def component_count(self) -> int:
        return len(self.components)

    # -- runs and words ------------------------------------------------------------

    def accepts_with_run(self, word: Sequence[Letter]) -> Optional[List[State]]:
        """A position run for the word, or ``None`` if the word is rejected."""
        if not word:
            return None
        layers: List[Set[State]] = []
        current = {s for s in self.initial_followers if self.letter[s] == word[0]}
        layers.append(set(current))
        for a in word[1:]:
            current = {t for s in current for t in self.step[s] if self.letter[t] == a}
            layers.append(set(current))
            if not current:
                return None
        final = [s for s in layers[-1] if s in self.accepting]
        if not final:
            return None
        run = [final[0]]
        for index in range(len(word) - 2, -1, -1):
            previous = next(s for s in layers[index] if run[0] in self.step[s])
            run.insert(0, previous)
        return run

    def chain_to_word(
        self, states: Sequence[State], complete: bool = True
    ) -> Tuple[List[Letter], List[State]]:
        """Expand a ``->+`` chain into a concrete accepted word with its run.

        Consecutive chain states are joined by explicit shortest ``->`` paths;
        with ``complete=True`` the word is additionally prefixed so it starts
        at an initial follower and suffixed so it ends in an accepting state.
        This is the witness-expansion step used when reconstructing concrete
        word databases from abstract run fragments.
        """
        if not states:
            raise AutomatonError("cannot expand an empty chain")
        full: List[State] = [states[0]]
        for target in states[1:]:
            path = self._shortest_path(full[-1], target)
            if path is None:
                raise AutomatonError(f"no ->+ path from {full[-1]} to {target}")
            full.extend(path[1:])
        if complete:
            prefix = self._path_from_initial(full[0])
            suffix = self._path_to_accepting(full[-1])
            full = prefix[:-1] + full + suffix[1:]
        return [self.letter[s] for s in full], full

    def _shortest_path(self, source: State, target: State) -> Optional[List[State]]:
        if target in self.step.get(source, set()):
            return [source, target]
        frontier = [[source, t] for t in sorted(self.step.get(source, set()))]
        seen = {source}
        while frontier:
            path = frontier.pop(0)
            last = path[-1]
            if last == target:
                return path
            if last in seen and len(path) > 2:
                continue
            seen.add(last)
            for nxt in sorted(self.step.get(last, set())):
                if nxt == target:
                    return path + [nxt]
                if nxt not in seen:
                    frontier.append(path + [nxt])
        return None

    def _path_from_initial(self, state: State) -> List[State]:
        if state in self.initial_followers:
            return [state]
        for start in sorted(self.initial_followers):
            path = self._shortest_path(start, state)
            if path is not None:
                return path
        raise AutomatonError(f"state {state} unreachable from initial followers")

    def _path_to_accepting(self, state: State) -> List[State]:
        if state in self.accepting:
            return [state]
        for end in sorted(self.accepting):
            path = self._shortest_path(state, end)
            if path is not None:
                return path
        raise AutomatonError(f"no accepting state reachable from {state}")


def _closure(seeds: Set[State], step: Dict[State, Set[State]]) -> Set[State]:
    seen = set(seeds)
    frontier = list(seeds)
    while frontier:
        state = frontier.pop()
        for nxt in step.get(state, set()):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return seen


def _reachable_from(state: State, step: Dict[State, Set[State]]) -> Set[State]:
    """States reachable in one or more steps."""
    seen: Set[State] = set()
    frontier = list(step.get(state, set()))
    seen.update(frontier)
    while frontier:
        current = frontier.pop()
        for nxt in step.get(current, set()):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return seen


def _strongly_connected_components(
    states: List[State], step: Dict[State, Set[State]]
) -> Tuple[List[FrozenSet[State]], Dict[State, int]]:
    """Tarjan's algorithm; singleton non-self-reachable states form their own
    component, matching the paper's convention."""
    index_counter = itertools.count()
    stack: List[State] = []
    lowlink: Dict[State, int] = {}
    index: Dict[State, int] = {}
    on_stack: Dict[State, bool] = {}
    components: List[FrozenSet[State]] = []
    component_of: Dict[State, int] = {}

    def strongconnect(node: State) -> None:
        work = [(node, iter(sorted(step.get(node, set()))))]
        index[node] = lowlink[node] = next(index_counter)
        stack.append(node)
        on_stack[node] = True
        while work:
            current, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index:
                    index[successor] = lowlink[successor] = next(index_counter)
                    stack.append(successor)
                    on_stack[successor] = True
                    work.append((successor, iter(sorted(step.get(successor, set())))))
                    advanced = True
                    break
                if on_stack.get(successor):
                    lowlink[current] = min(lowlink[current], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[current])
            if lowlink[current] == index[current]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == current:
                        break
                identifier = len(components)
                components.append(frozenset(component))
                for member in component:
                    component_of[member] = identifier

    for state in states:
        if state not in index:
            strongconnect(state)
    return components, component_of
