"""Quickstart: Example 1 / Example 2 of the paper, end to end.

We build the odd-red-cycle database-driven system of Example 1, ask whether
*any* database drives an accepting run (it does -- the solver returns a
concrete witness graph and the run), and then ask the same question relative
to the HOM template of Example 2 (it does not -- databases that map
homomorphically into the template have no odd red cycle).

Run with::

    python examples/quickstart.py
"""

from repro import AllDatabasesTheory, EmptinessSolver, HomTheory, odd_red_cycle_free_template
from repro.library import odd_red_cycle_system
from repro.relational.csp import COLORED_GRAPH_SCHEMA, example_graph_g
from repro.systems.simulate import find_accepting_run


def main() -> None:
    system = odd_red_cycle_system()
    print("The database-driven system of Example 1:")
    print(system.describe())
    print()

    # -- Example 1: emptiness over all databases ------------------------------------
    solver = EmptinessSolver(AllDatabasesTheory(COLORED_GRAPH_SCHEMA))
    result = solver.check(system)
    print(f"Over ALL databases the system is {'non' if result.nonempty else ''}empty.")
    print("Witness database found by the solver:")
    print(result.run.database.describe())
    print("Accepting run driven by it:")
    print(result.run)
    print()

    # -- The paper's concrete graph G also drives an accepting run -------------------
    graph = example_graph_g()
    run = find_accepting_run(system, graph)
    print("The five-node graph G from the paper's figure drives the run:")
    print(run)
    print()

    # -- Example 2: emptiness over HOM(H) ----------------------------------------------
    template = odd_red_cycle_free_template()
    hom_solver = EmptinessSolver(HomTheory(template))
    hom_result = hom_solver.check(system)
    print(
        "Over HOM(H) for the template of Example 2 the system is "
        f"{'nonempty' if hom_result.nonempty else 'empty'} "
        f"(expected: empty -- such databases have no odd red cycle)."
    )
    stats = hom_result.statistics
    print(
        f"The solver explored {stats.configurations_explored} small configurations "
        f"and generated {stats.candidates_generated} candidates in "
        f"{stats.elapsed_seconds:.3f}s."
    )


if __name__ == "__main__":
    main()
