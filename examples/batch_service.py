#!/usr/bin/env python
"""The batch verification service end to end.

Generates a seeded batch of random verification jobs, runs it twice against
a persistent result store -- once cold (engine work), once warm (served
entirely by fingerprint lookup) -- and prints what happened.  Equivalent CLI:

    repro batch --count 20 --seed 7 --workers 2 --store /tmp/verdicts.sqlite
    repro store stats --db /tmp/verdicts.sqlite

Run with ``PYTHONPATH=src python examples/batch_service.py`` from a checkout.
"""

import tempfile
from pathlib import Path

from repro import BatchRunner, ResultStore, VerificationJob, generate_jobs
from repro.library import triangle_system
from repro.relational import GRAPH_SCHEMA, AllDatabasesTheory


def main() -> None:
    # A single job, by hand: the triangle system over all finite graphs.
    job = VerificationJob(
        system=triangle_system(),
        theory=AllDatabasesTheory(GRAPH_SCHEMA),
        strategy="bfs",
        label="triangle",
    )
    print(f"one job, fingerprint {job.fingerprint[:16]}...")

    # A heterogeneous batch from the workload generator: relational, HOM,
    # word, tree and data-value jobs, interleaved, fully seeded.
    jobs = generate_jobs(count=20, seed=7)
    print(f"generated {len(jobs)} jobs: {jobs[0].label} .. {jobs[-1].label}")

    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(Path(tmp) / "verdicts.sqlite")
        runner = BatchRunner(store=store, workers=2, timeout_seconds=60)

        cold = runner.run(jobs)
        counts = cold.verdict_counts()
        print(
            f"cold run : {counts['nonempty']} nonempty, {counts['empty']} empty, "
            f"{counts['error']} errors in {cold.elapsed_seconds:.3f}s "
            f"({cold.executed} executed)"
        )

        warm = runner.run(jobs)
        print(
            f"warm run : identical verdicts={warm.verdicts == cold.verdicts} "
            f"in {warm.elapsed_seconds:.4f}s "
            f"({warm.cache_hits} served from the store)"
        )

        speedup = cold.elapsed_seconds / max(warm.elapsed_seconds, 1e-9)
        print(f"cold/warm speedup: {speedup:.0f}x")
        store.close()


if __name__ == "__main__":
    main()
