"""The introduction's XML example: navigating a data tree by attribute value.

The toy system of Section 1 stores one XML node in a register; each
transition moves the register to a *descendant* whose attribute ``a`` carries
the same data value.  The run starts at the root-most node it picked and must
end at a node with no further same-attribute descendant available -- here we
simply require two hops.

This exercises Theorem 9: regular tree languages combined with data values
from the homogeneous structure ⟨N, ~⟩.

Run with::

    python examples/xml_navigation.py
"""

from repro import DatabaseDrivenSystem, EmptinessSolver
from repro.datavalues import NATURALS_WITH_EQUALITY, with_data_values
from repro.trees import TreeRunTheory, root_label_automaton, tree_schema


def main() -> None:
    # XML documents: trees whose root element is <doc> with <item> elements below.
    automaton = root_label_automaton("doc", ["item"])
    labels = automaton.alphabet
    schema = tree_schema(labels).union(NATURALS_WITH_EQUALITY.schema)

    descend_same_attribute = (
        "anc(x_old, x_new) & !(x_old = x_new) & sim(x_old, x_new)"
    )
    system = DatabaseDrivenSystem.build(
        schema=schema,
        registers=["x"],
        states=["at_root", "descended_once", "descended_twice"],
        initial="at_root",
        accepting="descended_twice",
        transitions=[
            ("at_root", "label_doc(x_new)", "descended_once"),
            ("descended_once", descend_same_attribute, "descended_twice"),
        ],
    )
    print("System: start at the <doc> element, move to a descendant with the")
    print("same attribute value (attribute equality is the sim relation).")
    print()

    # With arbitrary attribute values (the ⊗ product) a witness document exists.
    tensor = with_data_values(TreeRunTheory(automaton), NATURALS_WITH_EQUALITY)
    result = EmptinessSolver(tensor).check(system)
    print(f"With shared attribute values allowed: {'nonempty' if result.nonempty else 'empty'}")
    print("Witness data tree (node ids are document order, sim links equal attributes):")
    print(result.run.database.describe())
    print("Run:", result.run)
    print()

    # With pairwise distinct attribute values (the ⊙ product) it is impossible.
    odot = with_data_values(TreeRunTheory(automaton), NATURALS_WITH_EQUALITY, injective=True)
    odot_result = EmptinessSolver(odot).check(system)
    print(
        "With pairwise distinct attribute values: "
        f"{'nonempty' if odot_result.nonempty else 'empty'} (expected: empty)"
    )


if __name__ == "__main__":
    main()
