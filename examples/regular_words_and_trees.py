"""Theorem 10 and Theorem 3 in action: systems over regular word and tree languages.

The system queries a word database (positions, labels, the order ``before``)
or a tree database (labels, ancestor order, document order, closest common
ancestor), and the class of databases is a regular language given by an
automaton -- the word/tree analogue of an XML schema.

Run with::

    python examples/regular_words_and_trees.py
"""

from repro import DatabaseDrivenSystem, EmptinessSolver
from repro.trees import TreeRunTheory, caterpillar_automaton, tree_schema, universal_automaton
from repro.words import NFA, WordRunTheory, word_schema


def word_case() -> None:
    print("=== Words (Theorem 10) ===")
    # L = a* b a*   (exactly one b)
    nfa = NFA.make(
        states=["s0", "s1"],
        alphabet=["a", "b"],
        transitions=[("s0", "a", "s0"), ("s0", "b", "s1"), ("s1", "a", "s1")],
        initial=["s0"],
        accepting=["s1"],
    )
    theory = WordRunTheory(nfa)
    schema = word_schema(["a", "b"])

    possible = DatabaseDrivenSystem.build(
        schema=schema, registers=["x"],
        states=["scanning", "found"], initial="scanning", accepting="found",
        transitions=[
            ("scanning", "label_a(x_old) & before(x_old, x_new) & label_b(x_new)", "found"),
        ],
    )
    impossible = DatabaseDrivenSystem.build(
        schema=schema, registers=["x", "y"],
        states=["scanning", "found"], initial="scanning", accepting="found",
        transitions=[
            ("scanning", "label_b(x_new) & label_b(y_new) & !(x_new = y_new)", "found"),
        ],
    )
    for name, system, expectation in [
        ("an 'a' position before the 'b' position", possible, "nonempty"),
        ("two distinct 'b' positions", impossible, "empty"),
    ]:
        result = EmptinessSolver(theory).check(system)
        status = "nonempty" if result.nonempty else "empty"
        print(f"  find {name}: {status} (expected {expectation})")
        if result.nonempty:
            labels = [
                "b" if result.run.database.holds("label_b", position) else "a"
                for position in sorted(result.run.database.domain)
            ]
            print(f"    witness word: {''.join(labels)}")
    print()


def tree_case() -> None:
    print("=== Trees (Theorem 3) ===")
    schema = tree_schema(["a"])
    three_incomparable = DatabaseDrivenSystem.build(
        schema=schema, registers=["x", "y", "z"],
        states=["searching", "found"], initial="searching", accepting="found",
        transitions=[(
            "searching",
            "!(anc(x_new, y_new)) & !(anc(y_new, x_new)) & "
            "!(anc(x_new, z_new)) & !(anc(z_new, x_new)) & "
            "!(anc(y_new, z_new)) & !(anc(z_new, y_new))",
            "found",
        )],
    )
    print("  find three pairwise incomparable nodes:")
    for name, automaton in [
        ("all trees", universal_automaton(["a"])),
        ("caterpillar trees (Fact 16's language)", caterpillar_automaton()),
    ]:
        result = EmptinessSolver(TreeRunTheory(automaton)).check(three_incomparable)
        status = "nonempty" if result.nonempty else "empty"
        print(f"    over {name}: {status}; "
              f"witness tree size {result.run.database.size if result.nonempty else '-'}")
    print()

    deep_pair = DatabaseDrivenSystem.build(
        schema=schema, registers=["x", "y"],
        states=["searching", "midway", "found"], initial="searching", accepting="found",
        transitions=[
            ("searching", "anc(x_new, y_new) & !(x_new = y_new)", "midway"),
            ("midway", "x_old = x_new & anc(y_old, y_new) & !(y_old = y_new)", "found"),
        ],
    )
    result = EmptinessSolver(TreeRunTheory(caterpillar_automaton())).check(deep_pair)
    print("  walk two strict descendant steps over caterpillar trees: "
          f"{'nonempty' if result.nonempty else 'empty'}; "
          f"expanded witness tree has {result.run.database.size} nodes")


def main() -> None:
    word_case()
    tree_case()


if __name__ == "__main__":
    main()
