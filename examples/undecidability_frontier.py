"""The decidability frontier: what happens when the model is extended (Section 6).

Adding the successor relation on word positions (Fact 15), or the sibling
relation together with the closest common ancestor on trees (Fact 16), lets a
database-driven system simulate a two-counter machine -- so emptiness becomes
undecidable.  The library demonstrates the reductions on *bounded* databases:
the encoded system accepts over a database of size n exactly when the machine
halts without its counters exceeding (roughly) n.

Run with::

    python examples/undecidability_frontier.py
"""

from repro.analysis import format_table
from repro.undecidable import (
    counting_machine,
    demonstrate_fact15,
    demonstrate_fact16,
    demonstrate_theorem17,
    diverging_machine,
)


def main() -> None:
    rows = []
    for n in (1, 2, 3):
        machine = counting_machine(n)
        rows.append(
            [
                f"count to {n} then halt",
                "halts",
                demonstrate_fact15(machine, word_length=n + 2),
                demonstrate_fact16(machine, height=n + 1),
                demonstrate_theorem17(machine, chain_length=n + 2),
            ]
        )
    rows.append(
        [
            "increment forever",
            "diverges",
            demonstrate_fact15(diverging_machine(), word_length=4),
            demonstrate_fact16(diverging_machine(), height=3),
            demonstrate_theorem17(diverging_machine(), chain_length=3),
        ]
    )
    print("Counter machines encoded as database-driven systems over the")
    print("undecidable schema extensions, checked on bounded databases:")
    print()
    print(
        format_table(
            ["machine", "behaviour", "Fact 15 (succ)", "Fact 16 (sibling+cca)", "Thm 17 (patterns)"],
            rows,
        )
    )
    print()
    print("The encoded system accepts exactly when the machine halts within the")
    print("bound -- so an unbounded decision procedure would solve the halting problem.")


if __name__ == "__main__":
    main()
